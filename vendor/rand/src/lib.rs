//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`rngs::SmallRng`] backed by xoshiro256++ — the same
//! algorithm family the real `SmallRng` uses on 64-bit targets.
//!
//! Statistical quality matters here (the simulator's tests assert
//! uniformity and independence), value-compatibility with upstream does
//! not: every stochastic sequence in this repository is defined by the
//! workspace's own `SimRng` seeding scheme, not by upstream `rand`.

// Stub crate: mirrors the upstream API shape, not upstream idiom.
#![allow(clippy::all)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;
    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `gen_range(lo..hi)`.
pub trait UniformInt: Copy {
    /// Uniform draw from `[lo, hi)`; `lo < hi` required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire multiply-shift: unbiased enough for simulation
                // use and branch-free (no rejection loop to perturb
                // deterministic draw counts).
                let hi64 = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + hi64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformInt for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience extension trait (the part of `rand::Rng` this workspace
/// calls).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    fn rng(tag: u8) -> SmallRng {
        let mut seed = [0u8; 32];
        seed[0] = tag;
        seed[9] = tag.wrapping_mul(31);
        SmallRng::from_seed(seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = rng(1);
        let mut b = rng(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rng(2);
        assert_ne!(rng(1).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut r = rng(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = rng(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.gen_range(0u64..7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = SmallRng::from_seed([0u8; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = rng(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
