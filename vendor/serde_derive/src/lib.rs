//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few metric
//! structs but never routes them through a serializer (JSON output goes
//! through `serde_json::json!` value construction instead). The derives
//! therefore only need to *parse*, not generate trait impls: each one
//! expands to nothing, and the `serde` stub crate defines the traits
//! with blanket impls.

// Stub crate: mirrors the upstream API shape, not upstream idiom.
#![allow(clippy::all)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
