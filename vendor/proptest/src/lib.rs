//! Offline stand-in for `proptest`.
//!
//! Supports the forms this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), `ident in strategy` arguments, integer/float range
//! strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the sampled inputs printed, which is enough to reproduce (the
//! harness is fully deterministic — the RNG is seeded from the test
//! name, so a given proptest binary fails identically every run).

// Stub crate: mirrors the upstream API shape, not upstream idiom.
#![allow(clippy::all)]

use std::ops::Range;

/// Runner configuration (`cases` is the only knob we honor).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner plumbing: RNG + case outcome types.
pub mod test_runner {
    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assumption unmet; case is discarded, not failed.
        Reject(String),
        /// Assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Build a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    /// SplitMix64: small, seedable, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary byte string (e.g. the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in [0, n) via multiply-shift.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut test_runner::TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Strategy combinators namespace (`prop::collection::vec` etc).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{test_runner::TestRng, Strategy};
        use std::ops::Range;

        /// Strategy producing `Vec`s of an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `Vec` of values drawn from `element`, with length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fail the current case (discarding nothing) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Discard the current case (without failing) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                // Allow generous headroom for prop_assume! rejections.
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                    )+
                    let case = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match case {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}\n inputs: {}",
                                stringify!($name),
                                passed,
                                msg,
                                format!(
                                    concat!($(concat!(stringify!($arg), " = {:?}  ")),+),
                                    $(&$arg),+
                                ),
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u32..10, 0u8..4), 1..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for &(a, b) in &v {
                prop_assert!(a < 10);
                prop_assert!(b < 4);
            }
        }

        #[test]
        fn assume_discards_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn harness_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
