//! Offline stand-in for `serde_json`.
//!
//! Implements the subset this workspace uses to emit run reports:
//! [`Value`], [`Map`], the [`json!`] constructor macro, and
//! [`to_string_pretty`]. Output is deterministic (BTreeMap-backed
//! objects → sorted keys, fixed float formatting), which is what the
//! repo's byte-identical-report tests rely on; it is not guaranteed to
//! be byte-compatible with upstream `serde_json`.

// Stub crate: mirrors the upstream API shape, not upstream idiom.
#![allow(clippy::all)]

use std::collections::BTreeMap;
use std::fmt;

/// JSON number: integers kept exact, everything else as `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // Match serde_json's convention that floats always
                    // carry a decimal point or exponent.
                    let s = format!("{v}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // serde_json rejects non-finite floats; we emit null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// Object storage. BTreeMap-backed so key order — and therefore
/// serialized output — is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Insert, returning any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Remove a key, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` unless this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// True if this is an unsigned integer.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(Number::U(_)))
    }

    /// True if this is any number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// As `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// As `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::I(v)) => Some(*v as f64),
            Value::Number(Number::F(v)) => Some(*v),
            _ => None,
        }
    }

    /// As `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As object map if an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As array slice if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U(v as u64)) }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v as i64))
                }
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

macro_rules! impl_partial_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(*other)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                Value::from(*self) == *other
            }
        }
    )*};
}

impl_partial_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, bool);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
    }
}

/// Error type for the (infallible) serializers, kept for signature
/// compatibility with upstream.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Pretty-print a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Compact-print a [`Value`].
pub fn to_string(value: &Value) -> Result<String, Error> {
    fn write_compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, item) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(out, item);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, item)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    write_compact(out, item);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

/// Internal helper for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $($crate::json_object!($map $($rest)*);)?
    };
    ($map:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
        $($crate::json_object!($map $($rest)*);)?
    };
    ($map:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::Value::from($value));
        $crate::json_object!($map $($rest)*);
    };
    ($map:ident $key:literal : $value:expr) => {
        $map.insert(($key).to_string(), $crate::Value::from($value));
    };
}

/// Construct a [`Value`] from a JSON-like literal.
///
/// Supports object literals with string-literal keys, array literals of
/// expressions, `null`, and bare expressions convertible via
/// `Value::from` — the forms this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_roundtrip() {
        let inner: Map<String, Value> = [("k".to_string(), json!(7u64))].into_iter().collect();
        let v = json!({
            "a": 1u64,
            "b": { "c": 2.5, "d": "text" },
            "arr": [1u64, 2u64],
            "nested_map": inner,
            "flag": true,
        });
        assert_eq!(v["a"], 1u64);
        assert!(v["a"].is_u64());
        assert_eq!(v["b"]["c"], 2.5);
        assert_eq!(v["b"]["d"], "text");
        assert_eq!(v["arr"][1], 2u64);
        assert_eq!(v["nested_map"]["k"], 7u64);
        assert_eq!(v["flag"], true);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_output_is_deterministic_and_sorted() {
        let v = json!({ "b": 2u64, "a": 1u64 });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": 2\n}");
        assert_eq!(s, to_string_pretty(&v).unwrap());
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&json!(1.0f64)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(0.25f64)).unwrap(), "0.25");
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&json!("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
