//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`]). Each benchmark runs a
//! small fixed number of timed iterations and prints a one-line
//! mean/min/max summary — enough for CI smoke runs and rough
//! comparisons, with none of real criterion's statistics.

// Stub crate: mirrors the upstream API shape, not upstream idiom.
#![allow(clippy::all)]

use std::hint::black_box;
use std::time::Instant;

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u32,
    target_samples: u32,
}

impl Bencher {
    /// Time `routine`, recording one sample per batch of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up iteration, untimed.
        black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64() / f64::from(self.iters_per_sample);
            self.samples.push(elapsed);
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup {
    /// Set how many timed samples to collect per benchmark. The stub
    /// caps this low — these runs are smoke tests, not measurements.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).clamp(1, 10);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_size.min(3),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("bench {}/{}: no samples", self.name, id);
            return self;
        }
        let n = b.samples.len() as f64;
        let mean = b.samples.iter().sum::<f64>() / n;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "bench {}/{}: mean {:.3} ms (min {:.3}, max {:.3}, n={})",
            self.name,
            id,
            mean * 1e3,
            min * 1e3,
            max * 1e3,
            b.samples.len()
        );
        self
    }

    /// Finish the group (no-op beyond symmetry with real criterion).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 3,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut runs = 0u32;
        g.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }
}
