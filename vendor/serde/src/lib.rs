//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for `use serde::{Deserialize,
//! Serialize};` plus `#[derive(Serialize, Deserialize)]` to compile.
//! The traits are markers with blanket impls — nothing in this
//! workspace drives a real serializer through them (JSON reports are
//! built with `serde_json::json!` values directly).

// Stub crate: mirrors the upstream API shape, not upstream idiom.
#![allow(clippy::all)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
