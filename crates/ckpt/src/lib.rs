//! `dcmaint-ckpt` — versioned, byte-deterministic checkpoint format.
//!
//! The simulation's determinism contract ("same seed, same bytes") makes
//! full-state snapshots meaningful: two runs in the same logical state
//! must serialize to the *same bytes*, so a single FNV-1a hash over the
//! payload is a sufficient equality check. That is what powers both
//! `restore ≡ continuous` verification and the `selfmaint bisect`
//! divergence debugger.
//!
//! This crate is the bottom layer — no dependencies, `std` only. It
//! provides:
//!
//! * [`Enc`]/[`Dec`] — a tiny length-prefixed little-endian byte codec.
//!   Floats are stored via [`f64::to_bits`] so encode/decode is exact
//!   (no text round-trip), and every value decodes with bounds checks.
//! * [`StateHash`] — canonical FNV-1a 64 over a snapshot payload.
//! * [`Snapshot`] — the versioned container: magic, format version, a
//!   config fingerprint (restore refuses a snapshot taken under a
//!   different configuration), the payload, and a trailing integrity
//!   hash so a truncated or corrupted file fails loudly.
//! * [`intern`] — a process-wide string interner for restoring the
//!   `&'static str` label vocabularies the hot paths use (trace states,
//!   registry counter names). Each distinct label leaks once per
//!   process, ever — repeated restores reuse the first allocation.
//!
//! Compatibility policy (see DESIGN §3.11): the format version is bumped
//! on any byte-layout change, and old versions are *rejected*, never
//! migrated — a snapshot is a cache of a reproducible computation, so
//! the upgrade path is "re-run from the config", not a migration tool.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// File magic: identifies a dcmaint snapshot regardless of version.
pub const MAGIC: [u8; 8] = *b"DCMCKPT\0";

/// Current snapshot format version. Bump on any byte-layout change.
/// v2: scheduler section carries the `SchedProf` lifetime counters.
/// v3: engine payload carries the twin-planner section (committed
/// plans, planned-episode set, decision/fork counters).
/// v4: engine payload carries the autonomic MAPE-K section (efficacy
/// posteriors, knob state, monitor cursor baselines, adaptation
/// counters, autonomic RNG stream position).
pub const VERSION: u32 = 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Canonical FNV-1a 64-bit hash — the same construction `dcmaint-des`
/// uses for RNG substream derivation, applied to snapshot bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash of full engine state, as captured by a snapshot payload. Two
/// engines in the same logical state have equal `StateHash`es because
/// the payload encoding is canonical (deterministic field order, sorted
/// scheduler entries, exact float bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateHash(pub u64);

impl fmt::Display for StateHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Everything that can go wrong loading a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Input ended before the value being decoded did.
    Truncated,
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version (old snapshots are re-run, not migrated).
    BadVersion(u32),
    /// The trailing integrity hash does not match the bytes.
    Corrupt,
    /// The snapshot was taken under a different configuration.
    ConfigMismatch {
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the configuration offered for restore.
        got: u64,
    },
    /// A decoded string was not valid UTF-8.
    Utf8,
    /// A decoded discriminant/tag had no meaning (version-skew symptom).
    BadTag(&'static str, u64),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "snapshot truncated mid-value"),
            CkptError::BadMagic => write!(f, "not a dcmaint snapshot (bad magic)"),
            CkptError::BadVersion(v) => write!(
                f,
                "snapshot format v{v} unsupported (current v{VERSION}); re-run from config"
            ),
            CkptError::Corrupt => write!(f, "snapshot integrity hash mismatch (corrupt file)"),
            CkptError::ConfigMismatch { expected, got } => write!(
                f,
                "snapshot taken under a different config \
                 (snapshot {expected:016x}, offered {got:016x})"
            ),
            CkptError::Utf8 => write!(f, "snapshot string is not valid UTF-8"),
            CkptError::BadTag(what, v) => write!(f, "unknown {what} tag {v} in snapshot"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Encoder: append-only byte buffer with fixed-width little-endian
/// scalars and length-prefixed strings/blobs.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Consume the encoder, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize as u64 (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an f64 as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a u64-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a u64-length-prefixed raw byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Decoder: sequential bounds-checked reader over a payload slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — loaders assert this to
    /// catch encoder/decoder skew.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (strictly 0/1; anything else is corruption).
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CkptError::BadTag("bool", u64::from(v))),
        }
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a usize stored as u64.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        Ok(self.u64()? as usize)
    }

    /// Read an f64 from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CkptError::Utf8)
    }

    /// Read a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CkptError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }
}

/// The versioned snapshot container.
///
/// File layout: `MAGIC | version:u32 | config_hash:u64 | payload_len:u64
/// | payload | fnv1a64(header+payload):u64`. The trailing hash covers
/// everything before it, so truncation and bit rot both fail the load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Format version the payload was written under.
    pub version: u32,
    /// FNV-1a fingerprint of the producing configuration's `Debug`
    /// rendering. Restore requires an exact match: a snapshot only makes
    /// sense under the configuration that produced it.
    pub config_hash: u64,
    /// Canonically-encoded engine state.
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Wrap an encoded payload under the current format version.
    pub fn new(config_hash: u64, payload: Vec<u8>) -> Self {
        Snapshot {
            version: VERSION,
            config_hash,
            payload,
        }
    }

    /// The canonical state hash: FNV-1a over config fingerprint and
    /// payload. Equal hashes ⇔ byte-equal snapshots ⇔ (by canonical
    /// encoding) equal logical engine state.
    pub fn state_hash(&self) -> StateHash {
        let mut h = FNV_OFFSET;
        for &b in self
            .config_hash
            .to_le_bytes()
            .iter()
            .chain(self.payload.iter())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        StateHash(h)
    }

    /// Serialize to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 36);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let h = fnv1a64(&out);
        out.extend_from_slice(&h.to_le_bytes());
        out
    }

    /// Parse and verify the on-disk byte format: magic, version,
    /// length, and integrity hash all checked before any payload use.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, CkptError> {
        if bytes.len() < 36 {
            return Err(CkptError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a64(body) != stored {
            return Err(CkptError::Corrupt);
        }
        let mut d = Dec::new(&bytes[8..bytes.len() - 8]);
        let version = d.u32()?;
        if version != VERSION {
            return Err(CkptError::BadVersion(version));
        }
        let config_hash = d.u64()?;
        let payload_len = d.usize()?;
        if d.remaining() != payload_len {
            return Err(CkptError::Truncated);
        }
        let payload = d.take(payload_len)?.to_vec();
        Ok(Snapshot {
            version,
            config_hash,
            payload,
        })
    }

    /// Check the offered configuration fingerprint against the one the
    /// snapshot was taken under.
    pub fn require_config(&self, config_hash: u64) -> Result<(), CkptError> {
        if self.config_hash != config_hash {
            return Err(CkptError::ConfigMismatch {
                expected: self.config_hash,
                got: config_hash,
            });
        }
        Ok(())
    }
}

/// Periodic snapshot cadence: the sequence of cut points a worker
/// checkpoints at, as an iterator over microsecond timestamps.
///
/// `Cadence::new(start, end, every)` yields `start + every`,
/// `start + 2·every`, … clamped to `end`, and always ends exactly at
/// `end` (so the final segment is never skipped, even when it is
/// shorter than `every`). The sequence is *position-independent*: a
/// worker that restored a snapshot taken at cut `k` and asks for
/// `Cadence::new(k·every, end, every)` walks the identical remaining
/// cut points the uninterrupted run would have — which is what makes
/// restart-from-last-checkpoint byte-identical for `selfmaint serve`.
///
/// Units are deliberately plain `u64` (microseconds in practice): this
/// crate knows nothing about simulated time, only about snapshots and
/// when to cut them.
#[derive(Debug, Clone)]
pub struct Cadence {
    at: u64,
    end: u64,
    every: u64,
}

impl Cadence {
    /// Cut points after `start` up to and including `end`, spaced
    /// `every` apart (`every == 0` yields a single cut at `end`).
    pub fn new(start: u64, end: u64, every: u64) -> Cadence {
        Cadence {
            at: start,
            end,
            every,
        }
    }
}

impl Iterator for Cadence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.at >= self.end {
            return None;
        }
        self.at = if self.every == 0 {
            self.end
        } else {
            self.at.saturating_add(self.every).min(self.end)
        };
        Some(self.at)
    }
}

static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();

/// Intern a string, returning a `&'static str` for it. The engine's hot
/// paths key traces and registry counters by `&'static str` literals;
/// restoring those from a snapshot needs owned strings promoted to
/// `'static`. Each *distinct* label is leaked exactly once per process
/// — the label vocabulary is small and fixed, so repeated restores cost
/// no additional memory.
pub fn intern(s: &str) -> &'static str {
    let map = INTERNED.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut guard = map.lock().expect("interner poisoned");
    if let Some(&v) = guard.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(s.to_owned(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_walks_even_cuts_and_clamps_the_tail() {
        let cuts: Vec<u64> = Cadence::new(0, 10, 3).collect();
        assert_eq!(cuts, [3, 6, 9, 10]);
        let exact: Vec<u64> = Cadence::new(0, 9, 3).collect();
        assert_eq!(exact, [3, 6, 9]);
        // Degenerate shapes.
        assert_eq!(Cadence::new(5, 5, 3).count(), 0);
        assert_eq!(Cadence::new(7, 5, 3).count(), 0);
        assert_eq!(Cadence::new(0, 5, 0).collect::<Vec<_>>(), [5]);
        assert_eq!(Cadence::new(0, 2, 100).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn cadence_resumed_mid_sequence_matches_the_uninterrupted_walk() {
        let full: Vec<u64> = Cadence::new(0, 100, 7).collect();
        // Restore at the 4th cut: the resumed cadence must continue the
        // identical sequence, not re-phase it.
        let resumed: Vec<u64> = Cadence::new(full[3], 100, 7).collect();
        assert_eq!(resumed, full[4..]);
    }

    #[test]
    fn codec_round_trips_every_scalar() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.bool(true);
        e.bool(false);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 7);
        e.usize(12345);
        e.f64(-0.1);
        e.f64(f64::INFINITY);
        e.str("hełło");
        e.bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 7);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(d.f64().unwrap(), f64::INFINITY);
        assert_eq!(d.str().unwrap(), "hełło");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncation_is_detected_not_garbage() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..7]);
        assert_eq!(d.u64(), Err(CkptError::Truncated));
    }

    #[test]
    fn nan_bits_survive_exactly() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut e = Enc::new();
        e.f64(weird);
        let b = e.into_bytes();
        assert_eq!(Dec::new(&b).f64().unwrap().to_bits(), 0x7ff8_0000_0000_1234);
    }

    #[test]
    fn snapshot_round_trip_and_hash_stability() {
        let snap = Snapshot::new(0x1122, vec![9, 8, 7, 6]);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.state_hash(), snap.state_hash());
        // Same logical state, fresh container: same hash.
        assert_eq!(
            Snapshot::new(0x1122, vec![9, 8, 7, 6]).state_hash(),
            snap.state_hash()
        );
        // Different payload: different hash.
        assert_ne!(
            Snapshot::new(0x1122, vec![9, 8, 7, 7]).state_hash(),
            snap.state_hash()
        );
    }

    #[test]
    fn corruption_and_magic_and_version_are_rejected() {
        let snap = Snapshot::new(7, vec![1, 2, 3]);
        let good = snap.to_bytes();

        let mut flipped = good.clone();
        flipped[20] ^= 1;
        assert_eq!(Snapshot::from_bytes(&flipped), Err(CkptError::Corrupt));

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&wrong_magic), Err(CkptError::BadMagic));

        assert_eq!(Snapshot::from_bytes(&good[..10]), Err(CkptError::Truncated));

        // Future version: rebuild container bytes with v999 and a valid
        // trailing hash — still rejected, by policy.
        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        future.extend_from_slice(&999u32.to_le_bytes());
        future.extend_from_slice(&7u64.to_le_bytes());
        future.extend_from_slice(&0u64.to_le_bytes());
        let h = fnv1a64(&future);
        future.extend_from_slice(&h.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&future),
            Err(CkptError::BadVersion(999))
        );
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let snap = Snapshot::new(1, vec![]);
        assert!(snap.require_config(1).is_ok());
        assert_eq!(
            snap.require_config(2),
            Err(CkptError::ConfigMismatch {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn intern_reuses_allocations() {
        let a = intern("phase/inspect");
        let b = intern("phase/inspect");
        assert!(std::ptr::eq(a, b), "same label must intern to one &'static");
        assert_eq!(intern("other"), "other");
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Well-known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
