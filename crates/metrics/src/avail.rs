//! Availability, downtime, and service-window accounting.
//!
//! The paper's headline benefit is "significant reduction of the service
//! window for failures … from hours and days to literally minutes" (§2) and
//! the resulting availability gain. This module owns those measurements:
//!
//! * [`AvailabilityTracker`] — per-entity up/down interval ledger producing
//!   availability fraction, MTBF, MTTR, and downtime-window samples;
//! * [`FleetAvailability`] — aggregates many entities (e.g. all links) into
//!   a fleet view;
//! * "nines" conversion helpers ([`nines`], [`availability_from_nines`]).

use std::collections::BTreeMap;

use dcmaint_des::{SimDuration, SimTime};

use crate::stats::DurationSamples;

/// Up/down ledger for a single entity (a link, a switch, a service path).
///
/// Transitions are idempotent: reporting `down` on an already-down entity is
/// a no-op, so noisy callers can't double-count. Time between `mark_*` calls
/// is attributed to the previous state.
#[derive(Debug, Clone)]
pub struct AvailabilityTracker {
    up: bool,
    since: SimTime,
    up_total: SimDuration,
    down_total: SimDuration,
    downtime_windows: DurationSamples,
    transitions_down: u64,
}

impl AvailabilityTracker {
    /// New tracker starting in the `up` state at `start`.
    pub fn starting_up(start: SimTime) -> Self {
        AvailabilityTracker {
            up: true,
            since: start,
            up_total: SimDuration::ZERO,
            down_total: SimDuration::ZERO,
            downtime_windows: DurationSamples::new(),
            transitions_down: 0,
        }
    }

    /// Record that the entity went down at `t`.
    pub fn mark_down(&mut self, t: SimTime) {
        if !self.up {
            return;
        }
        self.up_total += t.since(self.since);
        self.up = false;
        self.since = t;
        self.transitions_down += 1;
    }

    /// Record that the entity recovered at `t`.
    pub fn mark_up(&mut self, t: SimTime) {
        if self.up {
            return;
        }
        let window = t.since(self.since);
        self.down_total += window;
        self.downtime_windows.record(window);
        self.up = true;
        self.since = t;
    }

    /// Whether the entity is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Append this tracker's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.bool(self.up);
        enc.u64(self.since.as_micros());
        enc.u64(self.up_total.as_micros());
        enc.u64(self.down_total.as_micros());
        enc.u64(self.transitions_down);
        self.downtime_windows.save(enc);
    }

    /// Inverse of [`AvailabilityTracker::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(AvailabilityTracker {
            up: dec.bool()?,
            since: SimTime::from_micros(dec.u64()?),
            up_total: SimDuration::from_micros(dec.u64()?),
            down_total: SimDuration::from_micros(dec.u64()?),
            transitions_down: dec.u64()?,
            downtime_windows: crate::stats::DurationSamples::load(dec)?,
        })
    }

    /// Close the ledger at `end` (attributing the open interval) and return
    /// a summary. The tracker remains usable.
    pub fn summarize(&self, end: SimTime) -> AvailabilitySummary {
        let mut up_total = self.up_total;
        let mut down_total = self.down_total;
        let tail = end.since(self.since);
        if self.up {
            up_total += tail;
        } else {
            down_total += tail;
        }
        let total = up_total + down_total;
        let availability = if total.is_zero() {
            1.0
        } else {
            up_total.as_secs_f64() / total.as_secs_f64()
        };
        let mut windows = self.downtime_windows.clone();
        if !self.up && !tail.is_zero() {
            windows.record(tail);
        }
        AvailabilitySummary {
            availability,
            up_total,
            down_total,
            failures: self.transitions_down,
            mtbf: if self.transitions_down == 0 {
                SimDuration::MAX
            } else {
                up_total / self.transitions_down
            },
            mttr: if windows.is_empty() {
                SimDuration::ZERO
            } else {
                windows.mean()
            },
            downtime_windows: windows,
        }
    }
}

/// Closed-ledger summary produced by [`AvailabilityTracker::summarize`].
#[derive(Debug, Clone)]
pub struct AvailabilitySummary {
    /// Fraction of time spent up, in `[0, 1]`.
    pub availability: f64,
    /// Total up time.
    pub up_total: SimDuration,
    /// Total down time.
    pub down_total: SimDuration,
    /// Number of up→down transitions.
    pub failures: u64,
    /// Mean time between failures (up time / failures); `MAX` if none.
    pub mtbf: SimDuration,
    /// Mean time to repair (mean downtime window).
    pub mttr: SimDuration,
    /// Individual downtime windows, for quantiles.
    pub downtime_windows: DurationSamples,
}

/// Availability aggregated across a keyed fleet of entities.
#[derive(Debug, Clone, Default)]
pub struct FleetAvailability {
    trackers: BTreeMap<u64, AvailabilityTracker>,
    start: SimTime,
}

impl FleetAvailability {
    /// New fleet ledger; entities are lazily created in the `up` state at
    /// `start` on first touch.
    pub fn new(start: SimTime) -> Self {
        FleetAvailability {
            trackers: BTreeMap::new(),
            start,
        }
    }

    fn entry(&mut self, key: u64) -> &mut AvailabilityTracker {
        let start = self.start;
        self.trackers
            .entry(key)
            .or_insert_with(|| AvailabilityTracker::starting_up(start))
    }

    /// Mark entity `key` down at `t`.
    pub fn mark_down(&mut self, key: u64, t: SimTime) {
        self.entry(key).mark_down(t);
    }

    /// Mark entity `key` up at `t`.
    pub fn mark_up(&mut self, key: u64, t: SimTime) {
        self.entry(key).mark_up(t);
    }

    /// Whether entity `key` is up (entities never touched are up).
    pub fn is_up(&self, key: u64) -> bool {
        self.trackers.get(&key).is_none_or(|t| t.is_up())
    }

    /// Number of tracked entities (ones ever touched).
    pub fn tracked(&self) -> usize {
        self.trackers.len()
    }

    /// Append this ledger's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.u64(self.start.as_micros());
        enc.usize(self.trackers.len());
        for (&key, tr) in &self.trackers {
            enc.u64(key);
            tr.save(enc);
        }
    }

    /// Inverse of [`FleetAvailability::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let start = SimTime::from_micros(dec.u64()?);
        let n = dec.usize()?;
        let mut trackers = BTreeMap::new();
        for _ in 0..n {
            let key = dec.u64()?;
            trackers.insert(key, AvailabilityTracker::load(dec)?);
        }
        Ok(FleetAvailability { trackers, start })
    }

    /// Fleet-wide summary at `end` over `population` entities. Entities
    /// never touched contribute perfect uptime, so pass the true population
    /// (e.g. total link count), not just the ones that failed.
    pub fn summarize(&self, end: SimTime, population: usize) -> FleetSummary {
        let horizon = end.since(self.start);
        let mut down_total = SimDuration::ZERO;
        let mut failures = 0;
        let mut windows = DurationSamples::new();
        let mut worst: Option<(u64, f64)> = None;
        for (&key, tr) in &self.trackers {
            let s = tr.summarize(end);
            down_total += s.down_total;
            failures += s.failures;
            let mut w = s.downtime_windows;
            for x in w.as_samples().iter().collect::<Vec<_>>() {
                windows.as_samples().record(x);
            }
            if worst.is_none_or(|(_, a)| s.availability < a) {
                worst = Some((key, s.availability));
            }
        }
        let population = population.max(self.trackers.len()).max(1);
        let total_entity_time = horizon.as_secs_f64() * population as f64;
        let availability = if total_entity_time <= 0.0 {
            1.0
        } else {
            1.0 - down_total.as_secs_f64() / total_entity_time
        };
        FleetSummary {
            availability,
            failures,
            down_total,
            worst_entity: worst,
            downtime_windows: windows,
            population,
        }
    }
}

/// Fleet-wide availability summary.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Entity-time weighted availability in `[0, 1]`.
    pub availability: f64,
    /// Total up→down transitions across the fleet.
    pub failures: u64,
    /// Summed downtime across entities.
    pub down_total: SimDuration,
    /// Entity with the lowest availability, if any were touched.
    pub worst_entity: Option<(u64, f64)>,
    /// All downtime windows across the fleet.
    pub downtime_windows: DurationSamples,
    /// Population used for weighting.
    pub population: usize,
}

/// Convert availability to "nines" (0.999 → 3.0). Perfect availability
/// saturates at 12 nines to keep tables finite.
pub fn nines(availability: f64) -> f64 {
    if availability >= 1.0 {
        return 12.0;
    }
    if availability <= 0.0 {
        return 0.0;
    }
    (-(1.0 - availability).log10()).clamp(0.0, 12.0)
}

/// Convert a nines count to an availability fraction (3.0 → 0.999).
pub fn availability_from_nines(n: f64) -> f64 {
    1.0 - 10f64.powf(-n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn single_outage_accounting() {
        let mut tr = AvailabilityTracker::starting_up(t(0));
        tr.mark_down(t(100));
        tr.mark_up(t(150));
        let s = tr.summarize(t(1000));
        assert!((s.availability - 0.95).abs() < 1e-9);
        assert_eq!(s.failures, 1);
        assert_eq!(s.mttr, SimDuration::from_secs(50));
        assert_eq!(s.down_total, SimDuration::from_secs(50));
    }

    #[test]
    fn idempotent_transitions() {
        let mut tr = AvailabilityTracker::starting_up(t(0));
        tr.mark_down(t(10));
        tr.mark_down(t(20)); // no-op
        tr.mark_up(t(30));
        tr.mark_up(t(40)); // no-op
        let s = tr.summarize(t(100));
        assert_eq!(s.failures, 1);
        assert_eq!(s.down_total, SimDuration::from_secs(20));
    }

    #[test]
    fn open_downtime_counts_at_summarize() {
        let mut tr = AvailabilityTracker::starting_up(t(0));
        tr.mark_down(t(80));
        let s = tr.summarize(t(100));
        assert!((s.availability - 0.8).abs() < 1e-9);
        assert_eq!(s.down_total, SimDuration::from_secs(20));
        // The open window appears in the quantile samples too.
        let mut w = s.downtime_windows;
        assert_eq!(w.median(), SimDuration::from_secs(20));
    }

    #[test]
    fn mtbf_counts_up_time_per_failure() {
        let mut tr = AvailabilityTracker::starting_up(t(0));
        tr.mark_down(t(100));
        tr.mark_up(t(110));
        tr.mark_down(t(210));
        tr.mark_up(t(220));
        let s = tr.summarize(t(320));
        // Up time: 100 + 100 + 100 = 300 over 2 failures.
        assert_eq!(s.mtbf, SimDuration::from_secs(150));
    }

    #[test]
    fn no_failures_perfect_availability() {
        let tr = AvailabilityTracker::starting_up(t(0));
        let s = tr.summarize(t(500));
        assert_eq!(s.availability, 1.0);
        assert_eq!(s.failures, 0);
        assert_eq!(s.mtbf, SimDuration::MAX);
    }

    #[test]
    fn fleet_weights_by_population() {
        let mut f = FleetAvailability::new(t(0));
        f.mark_down(7, t(0));
        f.mark_up(7, t(100));
        // One of 10 entities down for 100 of 1000 s → 1% entity-time lost.
        let s = f.summarize(t(1000), 10);
        assert!((s.availability - 0.99).abs() < 1e-9);
        assert_eq!(s.failures, 1);
        assert_eq!(s.worst_entity.unwrap().0, 7);
    }

    #[test]
    fn fleet_population_floor_is_touched_count() {
        let mut f = FleetAvailability::new(t(0));
        f.mark_down(1, t(0));
        f.mark_up(1, t(500));
        // Caller claims population 0; floor to the 1 touched entity.
        let s = f.summarize(t(1000), 0);
        assert!((s.availability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn nines_roundtrip() {
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert!((availability_from_nines(4.0) - 0.9999).abs() < 1e-12);
        assert_eq!(nines(1.0), 12.0);
        assert_eq!(nines(0.0), 0.0);
        let a = 0.99995;
        assert!((availability_from_nines(nines(a)) - a).abs() < 1e-9);
    }

    #[test]
    fn untouched_entity_is_up() {
        let f = FleetAvailability::new(t(0));
        assert!(f.is_up(42));
    }
}
