//! Streaming and collected statistics.
//!
//! Two flavours:
//!
//! * [`StreamingStats`] — O(1) memory Welford accumulator for mean/variance
//!   plus min/max. Used where sample counts are unbounded (per-link loss
//!   samples over a 90-day run).
//! * [`SampleSet`] — keeps every observation for exact quantiles. Used for
//!   the distributions experiments report (service-window CDFs, p99 FCT).
//!   Memory is bounded by reservoir sampling above a configurable cap.

use dcmaint_des::{SimDuration, Stream};

/// O(1)-memory running mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. Non-finite values are ignored (they would
    /// poison the accumulator irrecoverably).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-quantile sample collector with an optional reservoir cap.
///
/// Below the cap every observation is kept and quantiles are exact. Above
/// it, reservoir sampling (Algorithm R) keeps an unbiased subsample, so
/// quantiles remain statistically faithful with bounded memory.
#[derive(Debug, Clone)]
pub struct SampleSet {
    samples: Vec<f64>,
    seen: u64,
    cap: usize,
    sorted: bool,
}

impl Default for SampleSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleSet {
    /// Unbounded collector (use when total sample count is known to be
    /// modest, e.g. one entry per ticket).
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            seen: 0,
            cap: usize::MAX,
            sorted: true,
        }
    }

    /// Collector that reservoir-samples above `cap` entries.
    pub fn with_cap(cap: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(cap.min(4096)),
            seen: 0,
            cap: cap.max(1),
            sorted: true,
        }
    }

    /// Record one observation. Requires a RNG stream only when the cap may
    /// be exceeded; use [`SampleSet::record`] otherwise.
    pub fn record_with(&mut self, x: f64, rng: &mut Stream) {
        if !x.is_finite() {
            return;
        }
        self.seen += 1;
        self.sorted = false;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            // Algorithm R: replace a random slot with probability cap/seen.
            let j = rng.below(self.seen);
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Record one observation into an uncapped collector. Panics in debug
    /// builds if the collector was constructed with a cap (the reservoir
    /// path needs randomness).
    pub fn record(&mut self, x: f64) {
        debug_assert_eq!(self.cap, usize::MAX, "capped SampleSet needs record_with");
        if !x.is_finite() {
            return;
        }
        self.seen += 1;
        self.sorted = false;
        self.samples.push(x);
    }

    /// Total observations offered (including ones displaced from a full
    /// reservoir).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact quantile `q ∈ [0, 1]` by linear interpolation between order
    /// statistics; 0.0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        if self.samples.len() == 2 {
            // R-7 interpolation degenerates with two samples: every
            // quantile lands on the single segment between them, so the
            // p95 of {1 s, 100 s} reported ~95 s — a tail estimate with
            // no sample support. Report the nearest order statistic
            // instead (midpoint only at the median).
            return if q < 0.5 {
                self.samples[0]
            } else if q > 0.5 {
                self.samples[1]
            } else {
                (self.samples[0] + self.samples[1]) / 2.0
            };
        }
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = pos - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// Median (q = 0.5).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean of held samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Iterate over held samples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }

    /// Sample variance (n−1 denominator); 0.0 with fewer than two
    /// observations. This is the estimator CI computation needs, as
    /// opposed to [`StreamingStats::variance`]'s population variance.
    pub fn sample_variance(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64
    }

    /// Sample standard deviation (n−1 denominator).
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Mean with a two-sided 95% confidence half-width, t-distribution
    /// small-n aware. See [`mean_ci95`] for the degenerate-case contract.
    pub fn mean_ci95(&self) -> Ci95 {
        mean_ci95(&self.samples)
    }

    /// Append this collector's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.u64(self.seen);
        // `usize::MAX` means "uncapped" and must survive 32-bit targets.
        enc.u64(if self.cap == usize::MAX {
            u64::MAX
        } else {
            self.cap as u64
        });
        enc.bool(self.sorted);
        enc.usize(self.samples.len());
        for &x in &self.samples {
            enc.f64(x);
        }
    }

    /// Inverse of [`SampleSet::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let seen = dec.u64()?;
        let cap_raw = dec.u64()?;
        let cap = if cap_raw == u64::MAX {
            usize::MAX
        } else {
            cap_raw as usize
        };
        let sorted = dec.bool()?;
        let n = dec.usize()?;
        let mut samples = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            samples.push(dec.f64()?);
        }
        Ok(SampleSet {
            samples,
            seen,
            cap,
            sorted,
        })
    }
}

/// A mean with a symmetric 95% confidence half-width.
///
/// Produced by [`mean_ci95`] / [`SampleSet::mean_ci95`]. `half` is
/// `f64::INFINITY` when the sample provides no interval (n ≤ 1): one
/// observation pins a point estimate but says nothing about spread, and
/// rendering pretends otherwise. Callers render via [`Ci95::cell`],
/// which drops the interval in that case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci95 {
    /// Observations the estimate is based on.
    pub n: u64,
    /// Sample mean (0.0 when empty).
    pub mean: f64,
    /// 95% half-width: `t₀.₉₇₅,ₙ₋₁ · s/√n`; `INFINITY` for n ≤ 1.
    pub half: f64,
}

impl Ci95 {
    /// Table-cell rendering: `"mean ±half"` with `digits` decimals, or
    /// just `"mean"` when no finite interval exists (n ≤ 1).
    pub fn cell(&self, digits: usize) -> String {
        if self.half.is_finite() {
            format!(
                "{} ±{}",
                crate::table::fnum(self.mean, digits),
                crate::table::fnum(self.half, digits)
            )
        } else {
            crate::table::fnum(self.mean, digits)
        }
    }
}

/// Two-sided 97.5th-percentile Student-t critical values, by degrees of
/// freedom. Exact table through df = 30, then the conventional 40/60/120
/// rungs; beyond 120 the normal limit 1.96 is used. Lookup picks the
/// largest tabulated df ≤ the actual df, which rounds the interval
/// *wider* — conservative, never anti-conservative.
const T_975: [(u64, f64); 34] = [
    (1, 12.706),
    (2, 4.303),
    (3, 3.182),
    (4, 2.776),
    (5, 2.571),
    (6, 2.447),
    (7, 2.365),
    (8, 2.306),
    (9, 2.262),
    (10, 2.228),
    (11, 2.201),
    (12, 2.179),
    (13, 2.160),
    (14, 2.145),
    (15, 2.131),
    (16, 2.120),
    (17, 2.110),
    (18, 2.101),
    (19, 2.093),
    (20, 2.086),
    (21, 2.080),
    (22, 2.074),
    (23, 2.069),
    (24, 2.064),
    (25, 2.060),
    (26, 2.056),
    (27, 2.052),
    (28, 2.048),
    (29, 2.045),
    (30, 2.042),
    (40, 2.021),
    (60, 2.000),
    (120, 1.980),
    (u64::MAX, 1.960),
];

/// Critical t value for a two-sided 95% interval with `df` degrees of
/// freedom (`df = 0` is never queried; returns the df=1 value).
fn t_crit_975(df: u64) -> f64 {
    let mut t = T_975[0].1;
    for &(d, v) in &T_975 {
        if d <= df {
            t = v;
        } else {
            break;
        }
    }
    // df beyond 120 uses the normal limit.
    if df > 120 {
        t = 1.960;
    }
    t
}

/// Mean ± 95% CI of a sample, t-distribution small-n aware.
///
/// Degenerate cases, pinned by tests:
/// * `n = 0` → mean 0.0, half `INFINITY` (no estimate at all);
/// * `n = 1` → mean = the sample, half `INFINITY` (a point estimate with
///   no spread information — rendering an interval would be a lie);
/// * `n = 2` → the honest but enormous df=1 interval (t = 12.706).
///
/// Non-finite samples are ignored, mirroring the rest of this module.
pub fn mean_ci95(samples: &[f64]) -> Ci95 {
    let xs: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    let n = xs.len();
    if n == 0 {
        return Ci95 {
            n: 0,
            mean: 0.0,
            half: f64::INFINITY,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Ci95 {
            n: 1,
            mean,
            half: f64::INFINITY,
        };
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    Ci95 {
        n: n as u64,
        mean,
        half: t_crit_975(n as u64 - 1) * se,
    }
}

/// A [`SampleSet`] of durations, stored as seconds. Thin wrapper that keeps
/// call sites readable (`windows.record(d)` instead of unit conversions).
#[derive(Debug, Clone, Default)]
pub struct DurationSamples(SampleSet);

impl DurationSamples {
    /// Empty, uncapped collector.
    pub fn new() -> Self {
        DurationSamples(SampleSet::new())
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.0.record(d.as_secs_f64());
    }

    /// Quantile as a duration.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.0.quantile(q))
    }

    /// Median as a duration.
    pub fn median(&mut self) -> SimDuration {
        self.quantile(0.5)
    }

    /// Mean as a duration.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.0.mean())
    }

    /// Number of recorded durations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Access the underlying seconds-valued sample set.
    pub fn as_samples(&mut self) -> &mut SampleSet {
        &mut self.0
    }

    /// Append this collector's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        self.0.save(enc);
    }

    /// Inverse of [`DurationSamples::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(DurationSamples(SampleSet::load(dec)?))
    }
}

/// Fixed-bucket histogram over log-spaced duration bins, for rendering
/// repair-time distributions as text.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    /// Bucket upper bounds, strictly increasing.
    bounds: Vec<SimDuration>,
    counts: Vec<u64>,
    overflow: u64,
}

impl DurationHistogram {
    /// Histogram with the given strictly-increasing bucket upper bounds.
    pub fn new(bounds: Vec<SimDuration>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let n = bounds.len();
        DurationHistogram {
            bounds,
            counts: vec![0; n],
            overflow: 0,
        }
    }

    /// Standard buckets for repair-time analysis: 1 s … 30 d, log-spaced.
    pub fn repair_scale() -> Self {
        let secs = [
            1u64,
            10,
            30,
            60,
            300,
            900,
            1_800,
            3_600,
            4 * 3_600,
            12 * 3_600,
            24 * 3_600,
            3 * 24 * 3_600,
            7 * 24 * 3_600,
            30 * 24 * 3_600,
        ];
        Self::new(secs.iter().map(|&s| SimDuration::from_secs(s)).collect())
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        match self.bounds.iter().position(|&b| d <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// (upper-bound, count) pairs plus the overflow count.
    pub fn buckets(&self) -> (Vec<(SimDuration, u64)>, u64) {
        (
            self.bounds
                .iter()
                .copied()
                .zip(self.counts.iter().copied())
                .collect(),
            self.overflow,
        )
    }

    /// Fraction of observations at or below `d` (empirical CDF at bucket
    /// granularity, using bucket upper bounds).
    pub fn cdf_at(&self, d: SimDuration) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, &b) in self.bounds.iter().enumerate() {
            if b <= d {
                acc += self.counts[i];
            }
        }
        acc as f64 / total as f64
    }
}

/// Beta posterior over a Bernoulli success probability.
///
/// The conjugate workhorse behind online efficacy estimation: start from
/// a `Beta(α₀, β₀)` prior, fold in success/failure observations one at a
/// time, and read off the posterior mean and a 95% credible interval at
/// any point. Updates are exact rational-count arithmetic on `(α, β)`,
/// so two estimators fed the same observation sequence are bitwise
/// identical — the property the autonomic plane's snapshot/restore
/// contract leans on.
///
/// The credible interval uses the normal approximation to the Beta
/// (mean ± 1.96·σ, clamped to `[0, 1]`). For the fleet-scale counts the
/// maintenance plane sees (tens of observations and up) the
/// approximation error is far below any decision threshold; the golden
/// tests pin its exact values so it can never drift silently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Default for Beta {
    /// The uniform `Beta(1, 1)` prior.
    fn default() -> Self {
        Beta::new(1.0, 1.0)
    }
}

impl Beta {
    /// Posterior seeded with prior pseudo-counts `α₀` successes and
    /// `β₀` failures. Non-positive priors are clamped to a proper
    /// distribution (the degenerate `Beta(0, ·)` has no mean).
    pub fn new(alpha: f64, beta: f64) -> Self {
        Beta {
            alpha: alpha.max(1e-9),
            beta: beta.max(1e-9),
        }
    }

    /// Fold in one Bernoulli observation.
    pub fn observe(&mut self, success: bool) {
        if success {
            self.alpha += 1.0;
        } else {
            self.beta += 1.0;
        }
    }

    /// Posterior mean `α/(α+β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Posterior variance `αβ/((α+β)²(α+β+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// 95% credible interval (normal approximation, clamped to `[0, 1]`).
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.variance().sqrt();
        let m = self.mean();
        ((m - half).max(0.0), (m + half).min(1.0))
    }

    /// Width of the 95% credible interval — the convergence signal the
    /// autonomic plane reports (narrow interval ⇒ settled posterior).
    pub fn ci95_width(&self) -> f64 {
        let (lo, hi) = self.ci95();
        hi - lo
    }

    /// Total observations folded in (excluding the prior pseudo-counts
    /// only when the caller started from integer priors; reported as the
    /// raw pseudo-count mass `α+β` minus nothing — callers who need the
    /// observation count track it via [`Beta::weight`]).
    pub fn weight(&self) -> f64 {
        self.alpha + self.beta
    }

    /// Append the posterior to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.f64(self.alpha);
        enc.f64(self.beta);
    }

    /// Inverse of [`Beta::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(Beta {
            alpha: dec.f64()?,
            beta: dec.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    #[test]
    fn streaming_mean_and_variance() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_ignores_non_finite() {
        let mut s = StreamingStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn streaming_empty_defaults() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = StreamingStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_exact_small() {
        let mut s = SampleSet::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.25), 2.0);
        assert!((s.quantile(0.9) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn tiny_sample_quantiles_stay_on_order_statistics() {
        // One sample: every quantile is that sample.
        let mut one = SampleSet::new();
        one.record(7.0);
        assert_eq!(one.quantile(0.05), 7.0);
        assert_eq!(one.median(), 7.0);
        assert_eq!(one.quantile(0.95), 7.0);
        // Two samples: interpolating would invent a p95 of ~95.05 from
        // {1, 100} with zero tail evidence. Pin the nearest-order-
        // statistic behavior: below the median → low sample, above →
        // high sample, median → midpoint.
        let mut two = SampleSet::new();
        two.record(100.0);
        two.record(1.0);
        assert_eq!(two.quantile(0.0), 1.0);
        assert_eq!(two.quantile(0.25), 1.0);
        assert_eq!(two.median(), 50.5);
        assert_eq!(two.quantile(0.75), 100.0);
        assert_eq!(two.quantile(0.95), 100.0);
        assert_eq!(two.quantile(1.0), 100.0);
        // Three samples go back to R-7 interpolation untouched.
        let mut three = SampleSet::new();
        for x in [1.0, 2.0, 3.0] {
            three.record(x);
        }
        assert_eq!(three.median(), 2.0);
        assert!((three.quantile(0.75) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let mut s = SampleSet::new();
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn reservoir_caps_memory_and_stays_unbiased() {
        let mut rng = SimRng::root(5).stream("res", 0);
        let mut s = SampleSet::with_cap(500);
        for i in 0..50_000 {
            s.record_with(i as f64, &mut rng);
        }
        assert_eq!(s.len(), 500);
        assert_eq!(s.seen(), 50_000);
        // Mean of uniform 0..50_000 should be ~25_000.
        assert!((s.mean() - 25_000.0).abs() < 2_500.0, "mean {}", s.mean());
    }

    #[test]
    fn duration_samples_roundtrip() {
        let mut d = DurationSamples::new();
        d.record(SimDuration::from_secs(10));
        d.record(SimDuration::from_secs(20));
        d.record(SimDuration::from_secs(30));
        assert_eq!(d.median(), SimDuration::from_secs(20));
        assert_eq!(d.mean(), SimDuration::from_secs(20));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = DurationHistogram::repair_scale();
        h.record(SimDuration::from_millis(500)); // <= 1 s bucket
        h.record(SimDuration::from_secs(45)); // <= 60 s bucket
        h.record(SimDuration::from_days(365)); // overflow
        assert_eq!(h.total(), 3);
        let (buckets, overflow) = h.buckets();
        assert_eq!(overflow, 1);
        assert_eq!(buckets[0].1, 1);
        let min_bucket = buckets
            .iter()
            .find(|(b, _)| *b == SimDuration::from_secs(60))
            .unwrap();
        assert_eq!(min_bucket.1, 1);
    }

    #[test]
    fn ci95_known_reference_values() {
        // n = 5, {1,2,3,4,5}: mean 3, s² = 2.5, se = √0.5 ≈ 0.70711,
        // t₀.₉₇₅,₄ = 2.776 → half ≈ 1.96294 (reference value from any
        // t-table walkthrough of this textbook sample).
        let ci = mean_ci95(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ci.n, 5);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!(
            (ci.half - 2.776 * (0.5f64).sqrt()).abs() < 1e-9,
            "half {}",
            ci.half
        );
        assert!((ci.half - 1.96294).abs() < 1e-4);
    }

    #[test]
    fn ci95_degenerate_n1_and_n2() {
        // n = 0: no estimate.
        let none = mean_ci95(&[]);
        assert_eq!(none.n, 0);
        assert_eq!(none.mean, 0.0);
        assert!(none.half.is_infinite());
        // n = 1: point estimate, no interval.
        let one = mean_ci95(&[7.25]);
        assert_eq!(one.n, 1);
        assert_eq!(one.mean, 7.25);
        assert!(one.half.is_infinite());
        assert_eq!(one.cell(2), "7.25");
        // n = 2, {1,3}: mean 2, s = √2, se = 1, t₀.₉₇₅,₁ = 12.706 →
        // half = 12.706 exactly (se is exactly 1 here).
        let two = mean_ci95(&[1.0, 3.0]);
        assert_eq!(two.n, 2);
        assert!((two.mean - 2.0).abs() < 1e-12);
        assert!((two.half - 12.706).abs() < 1e-9, "half {}", two.half);
        assert_eq!(two.cell(1), "2.0 ±12.7");
    }

    #[test]
    fn ci95_t_table_brackets_conservatively() {
        // df 30 → 2.042; df 31..39 must reuse 2.042 (wider than the true
        // value, never narrower); df 40 → 2.021; df ≥ 121 → 1.96.
        assert!((t_crit_975(30) - 2.042).abs() < 1e-12);
        assert!((t_crit_975(35) - 2.042).abs() < 1e-12);
        assert!((t_crit_975(40) - 2.021).abs() < 1e-12);
        assert!((t_crit_975(119) - 2.000).abs() < 1e-12);
        assert!((t_crit_975(121) - 1.960).abs() < 1e-12);
    }

    #[test]
    fn ci95_ignores_non_finite_and_matches_sample_set() {
        let ci = mean_ci95(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(ci.n, 3);
        assert!((ci.mean - 2.0).abs() < 1e-12);
        let mut s = SampleSet::new();
        for x in [1.0, 2.0, 3.0] {
            s.record(x);
        }
        assert_eq!(s.mean_ci95(), ci);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_cdf() {
        let mut h = DurationHistogram::repair_scale();
        for s in [5u64, 20, 50, 200, 4000] {
            h.record(SimDuration::from_secs(s));
        }
        assert!((h.cdf_at(SimDuration::from_secs(60)) - 0.6).abs() < 1e-12);
        assert!((h.cdf_at(SimDuration::from_days(30)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn beta_golden_reference_values() {
        // Uniform prior: mean 1/2, variance 1/12.
        let b = Beta::default();
        assert!((b.mean() - 0.5).abs() < 1e-15);
        assert!((b.variance() - 1.0 / 12.0).abs() < 1e-15);

        // Beta(1,1) + 7 successes + 3 failures = Beta(8, 4).
        // Hand-computed references:
        //   mean      = 8/12                       = 0.666666…
        //   variance  = 8·4/(12²·13) = 32/1872     = 0.017094017094…
        //   σ         = √variance                  = 0.130744…
        //   ci95 half = 1.96·σ                     = 0.256258…
        let mut b = Beta::default();
        for i in 0..10 {
            b.observe(i < 7);
        }
        assert!((b.mean() - 2.0 / 3.0).abs() < 1e-15);
        assert!((b.variance() - 32.0 / 1872.0).abs() < 1e-15);
        let (lo, hi) = b.ci95();
        assert!((lo - 0.410_408_250_086_106_15).abs() < 1e-12, "lo = {lo}");
        assert!((hi - 0.922_925_083_247_227_1).abs() < 1e-12, "hi = {hi}");
        assert!((b.ci95_width() - (hi - lo)).abs() < 1e-15);
        assert!((b.weight() - 12.0).abs() < 1e-15);

        // Informative prior Beta(3, 9): mean 1/4.
        let b = Beta::new(3.0, 9.0);
        assert!((b.mean() - 0.25).abs() < 1e-15);
        assert!((b.variance() - 27.0 / (144.0 * 13.0)).abs() < 1e-15);

        // Interval clamps to [0, 1] near the extremes.
        let skewed = Beta::new(0.5, 20.0);
        let (lo, hi) = skewed.ci95();
        assert_eq!(lo, 0.0);
        assert!(hi < 0.1);
        assert!(Beta::new(-1.0, 0.0).mean().is_finite());
    }

    #[test]
    fn beta_update_is_deterministic_and_order_sensitive_counts_agree() {
        // Two estimators fed the same sequence are bitwise identical;
        // permuted sequences with equal success counts agree too
        // (conjugate updates only see the counts).
        let seq = [true, false, true, true, false, true];
        let mut a = Beta::default();
        let mut b = Beta::default();
        for &s in &seq {
            a.observe(s);
            b.observe(s);
        }
        assert_eq!(a, b);
        let mut c = Beta::default();
        for &s in &[false, false, true, true, true, true] {
            c.observe(s);
        }
        assert_eq!(a, c);
        // More evidence ⇒ narrower credible interval.
        let mut wide = Beta::default();
        let mut narrow = Beta::default();
        for i in 0..4 {
            wide.observe(i % 2 == 0);
        }
        for i in 0..400 {
            narrow.observe(i % 2 == 0);
        }
        assert!(narrow.ci95_width() < wide.ci95_width() / 5.0);
    }

    #[test]
    fn beta_save_load_round_trips() {
        let mut b = Beta::new(2.0, 5.0);
        for i in 0..13 {
            b.observe(i % 3 == 0);
        }
        let mut enc = dcmaint_ckpt::Enc::new();
        b.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = dcmaint_ckpt::Dec::new(&bytes);
        let back = Beta::load(&mut dec).unwrap();
        assert!(dec.is_exhausted());
        assert_eq!(b, back);
    }
}
