//! Operational-cost accounting.
//!
//! The paper argues self-maintenance wins on three cost axes (§1, §2, §4):
//! technician labor, overprovisioned standing redundancy, and
//! downtime/unavailability. [`CostModel`] holds the unit prices;
//! [`CostLedger`] accumulates charges as the simulation runs so experiments
//! can report $/year per policy. Absolute dollar values are illustrative —
//! the experiments compare *ratios* across automation levels, which are
//! insensitive to the exact unit prices (documented per-field below).

use dcmaint_des::SimDuration;
use serde::{Deserialize, Serialize};

/// Unit prices. Defaults are order-of-magnitude public figures, chosen so
/// ratios (not absolutes) carry the comparisons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Fully-loaded datacenter technician cost per hour (USD). Public
    /// salary data puts loaded cost near $60–120/h; we take the middle.
    pub technician_hourly: f64,
    /// Amortized robot cost per hour of *existence* (capex spread over a
    /// 5-year life plus maintenance). Small modular units per §3 are cheap
    /// relative to humanoids.
    pub robot_hourly: f64,
    /// Cost of one spare transceiver (USD). 400G optics street price.
    pub transceiver_unit: f64,
    /// Cost of one fiber cable incl. installation labor share (USD).
    pub cable_unit: f64,
    /// Cost of a switch replacement event (hardware + logistics, USD).
    pub switch_unit: f64,
    /// Cost of a line-card replacement (modular chassis only, USD).
    pub linecard_unit: f64,
    /// Penalty per link-hour of unavailability (USD). Stands in for SLA
    /// credits / stranded GPU time; AI-cluster links strand far more than
    /// commodity ones, which is exactly the paper's motivation.
    pub downtime_per_link_hour: f64,
    /// Annual cost of keeping one redundant (overprovisioned) link online:
    /// optics + switch port share + power (USD/year).
    pub redundant_link_annual: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            technician_hourly: 90.0,
            robot_hourly: 6.0,
            transceiver_unit: 600.0,
            cable_unit: 250.0,
            switch_unit: 18_000.0,
            linecard_unit: 4_500.0,
            downtime_per_link_hour: 40.0,
            redundant_link_annual: 800.0,
        }
    }
}

/// Running totals per cost axis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostLedger {
    /// Technician labor (USD).
    pub labor: f64,
    /// Robot amortization + energy (USD).
    pub robots: f64,
    /// Replacement hardware consumed (USD).
    pub hardware: f64,
    /// Downtime penalties (USD).
    pub downtime: f64,
    /// Standing redundancy carry cost (USD).
    pub redundancy: f64,
}

impl CostLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge technician time.
    pub fn charge_technician(&mut self, model: &CostModel, time: SimDuration) {
        self.labor += model.technician_hourly * time.as_hours_f64();
    }

    /// Charge robot existence time (applies whether busy or idle — the
    /// capex is sunk, which is why proactive work during idle periods is
    /// "little to no additional cost", §4).
    pub fn charge_robot(&mut self, model: &CostModel, time: SimDuration) {
        self.robots += model.robot_hourly * time.as_hours_f64();
    }

    /// Charge one consumed spare of the given kind.
    pub fn charge_hardware(&mut self, model: &CostModel, kind: HardwareKind) {
        self.hardware += match kind {
            HardwareKind::Transceiver => model.transceiver_unit,
            HardwareKind::Cable => model.cable_unit,
            HardwareKind::Switch => model.switch_unit,
            HardwareKind::LineCard => model.linecard_unit,
        };
    }

    /// Charge link downtime.
    pub fn charge_downtime(&mut self, model: &CostModel, link_time: SimDuration) {
        self.downtime += model.downtime_per_link_hour * link_time.as_hours_f64();
    }

    /// Charge standing redundancy: `links` spare links carried for `time`.
    pub fn charge_redundancy(&mut self, model: &CostModel, links: usize, time: SimDuration) {
        self.redundancy += model.redundant_link_annual * links as f64 * time.as_days_f64() / 365.0;
    }

    /// Grand total (USD).
    pub fn total(&self) -> f64 {
        self.labor + self.robots + self.hardware + self.downtime + self.redundancy
    }

    /// Append this ledger's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.f64(self.labor);
        enc.f64(self.robots);
        enc.f64(self.hardware);
        enc.f64(self.downtime);
        enc.f64(self.redundancy);
    }

    /// Inverse of [`CostLedger::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(CostLedger {
            labor: dec.f64()?,
            robots: dec.f64()?,
            hardware: dec.f64()?,
            downtime: dec.f64()?,
            redundancy: dec.f64()?,
        })
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.labor += other.labor;
        self.robots += other.robots;
        self.hardware += other.hardware;
        self.downtime += other.downtime;
        self.redundancy += other.redundancy;
    }
}

/// Replacement hardware kinds with distinct unit costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardwareKind {
    /// Pluggable optical/electrical transceiver.
    Transceiver,
    /// Fiber or copper cable.
    Cable,
    /// Whole (fixed-configuration) switch chassis.
    Switch,
    /// One line card of a modular switch (§3.2 lists "NIC, line card,
    /// or switch" as the final escalation stage; modular chassis
    /// replace at card granularity).
    LineCard,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technician_time_accrues() {
        let m = CostModel::default();
        let mut l = CostLedger::new();
        l.charge_technician(&m, SimDuration::from_hours(2));
        assert!((l.labor - 180.0).abs() < 1e-9);
    }

    #[test]
    fn hardware_kinds_priced_distinctly() {
        let m = CostModel::default();
        let mut l = CostLedger::new();
        l.charge_hardware(&m, HardwareKind::Transceiver);
        l.charge_hardware(&m, HardwareKind::Cable);
        l.charge_hardware(&m, HardwareKind::Switch);
        l.charge_hardware(&m, HardwareKind::LineCard);
        assert!((l.hardware - (600.0 + 250.0 + 18_000.0 + 4_500.0)).abs() < 1e-9);
    }

    #[test]
    fn redundancy_prorates_by_time() {
        let m = CostModel::default();
        let mut l = CostLedger::new();
        l.charge_redundancy(&m, 10, SimDuration::from_days(365));
        assert!((l.redundancy - 8000.0).abs() < 1e-6);
        let mut half = CostLedger::new();
        half.charge_redundancy(&m, 10, SimDuration::from_days(365) / 2);
        assert!((half.redundancy - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn total_sums_axes() {
        let m = CostModel::default();
        let mut l = CostLedger::new();
        l.charge_technician(&m, SimDuration::from_hours(1));
        l.charge_robot(&m, SimDuration::from_hours(1));
        l.charge_downtime(&m, SimDuration::from_hours(1));
        assert!((l.total() - (90.0 + 6.0 + 40.0)).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let m = CostModel::default();
        let mut a = CostLedger::new();
        a.charge_technician(&m, SimDuration::from_hours(1));
        let mut b = CostLedger::new();
        b.charge_robot(&m, SimDuration::from_hours(2));
        a.merge(&b);
        assert!((a.labor - 90.0).abs() < 1e-9);
        assert!((a.robots - 12.0).abs() < 1e-9);
    }

    #[test]
    fn robot_hours_cheaper_than_technician_hours() {
        // Sanity pin on the default calibration: the paper's economics
        // require robot time to undercut technician time substantially.
        let m = CostModel::default();
        assert!(m.robot_hourly * 10.0 < m.technician_hourly);
    }
}
