//! Plain-text table and CSV rendering for experiment output.
//!
//! Every experiment runner produces rows that print identically in two
//! forms: an aligned text table for the terminal (the "paper table"
//! rendering) and CSV for downstream plotting. Keeping the renderer here —
//! not in each experiment — guarantees uniform formatting across E1–E11.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple in-memory table: header row plus data rows of strings.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<(String, Align)>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and `(header, alignment)` columns.
    pub fn new(title: &str, columns: &[(&str, Align)]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|(h, a)| (h.to_string(), *a)).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Shorter rows are padded with empty cells; longer rows
    /// are truncated to the column count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.columns.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers in declaration order.
    pub fn headers(&self) -> Vec<&str> {
        self.columns.iter().map(|(h, _)| h.as_str()).collect()
    }

    /// Raw data rows (cells as entered, before any rendering).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|(h, _)| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, (h, a)) in self.columns.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            pad(&mut line, h, widths[i], *a);
        }
        let _ = writeln!(out, "{line}");
        let rule_len = line.len();
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                pad(&mut line, cell, widths[i], self.columns[i].1);
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let headers: Vec<&str> = self.columns.iter().map(|(h, _)| h.as_str()).collect();
        let _ = writeln!(out, "{}", csv_line(&headers));
        for row in &self.rows {
            let cells: Vec<&str> = row.iter().map(String::as_str).collect();
            let _ = writeln!(out, "{}", csv_line(&cells));
        }
        out
    }
}

fn pad(out: &mut String, s: &str, width: usize, align: Align) {
    let padding = width.saturating_sub(s.len());
    match align {
        Align::Left => {
            out.push_str(s);
            out.push_str(&" ".repeat(padding));
        }
        Align::Right => {
            out.push_str(&" ".repeat(padding));
            out.push_str(s);
        }
    }
}

fn csv_line(cells: &[&str]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                (*c).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Format a float with `digits` decimals, trimming to a compact string.
pub fn fnum(x: f64, digits: usize) -> String {
    if !x.is_finite() {
        return if x.is_nan() {
            "nan".into()
        } else {
            "inf".into()
        };
    }
    format!("{x:.digits$}")
}

/// Format a ratio as `N.Nx` (e.g. speedups in comparison tables).
pub fn fratio(x: f64) -> String {
    if !x.is_finite() {
        return "inf".into();
    }
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Format a probability/fraction as a percentage string.
pub fn fpct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &[("name", Align::Left), ("value", Align::Right)]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let out = t.render();
        assert!(out.contains("== demo =="));
        let lines: Vec<&str> = out.lines().collect();
        // header, rule, 2 rows (+ title)
        assert_eq!(lines.len(), 5);
        // Right alignment: the short number should be right-padded to align
        // with 12345.
        assert!(lines[3].ends_with("    1"));
        assert!(lines[4].ends_with("12345"));
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new("p", &[("a", Align::Left), ("b", Align::Left)]);
        t.row(vec!["only"]);
        t.row(vec!["x", "y", "z-dropped"]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(1).unwrap(), "only,");
        assert_eq!(csv.lines().nth(2).unwrap(), "x,y");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", &[("a", Align::Left)]);
        t.row(vec!["has,comma"]);
        t.row(vec!["has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fnum(std::f64::consts::PI, 2), "3.14");
        assert_eq!(fnum(f64::NAN, 2), "nan");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(fratio(2.0), "2.00x");
        assert_eq!(fratio(42.0), "42.0x");
        assert_eq!(fratio(420.0), "420x");
        assert_eq!(fpct(0.123), "12.3%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("empty", &[("col", Align::Left)]);
        assert!(t.is_empty());
        let out = t.render();
        assert_eq!(out.lines().count(), 3);
    }
}
