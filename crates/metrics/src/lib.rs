//! # dcmaint-metrics — measurement plumbing for the self-maintenance suite
//!
//! Everything the experiments measure flows through this crate:
//!
//! * [`StreamingStats`], [`SampleSet`], [`DurationSamples`],
//!   [`DurationHistogram`] — streaming and exact-quantile statistics,
//! * [`AvailabilityTracker`], [`FleetAvailability`] — up/down ledgers
//!   yielding availability, MTBF, MTTR and downtime-window distributions,
//! * [`CostModel`], [`CostLedger`] — labor / robot / hardware / downtime /
//!   redundancy cost accounting,
//! * [`Table`] — uniform text-table and CSV rendering for every experiment.
//!
//! The crate is deliberately free of simulation logic: it consumes times
//! and durations from `dcmaint-des` and produces numbers. That keeps the
//! measurement definitions auditable in one place — when EXPERIMENTS.md
//! says "availability", it means [`FleetAvailability::summarize`], for
//! every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avail;
mod cost;
mod stats;
mod table;

pub use avail::{
    availability_from_nines, nines, AvailabilitySummary, AvailabilityTracker, FleetAvailability,
    FleetSummary,
};
pub use cost::{CostLedger, CostModel, HardwareKind};
pub use stats::{
    mean_ci95, Beta, Ci95, DurationHistogram, DurationSamples, SampleSet, StreamingStats,
};
pub use table::{fnum, fpct, fratio, Align, Table};
