//! Fuzz gate for the item parser: `scan → tokenize → parse →
//! arms_of_first_match` (and the whole semantic pass on top) must be
//! *total* — never panic — on arbitrary byte soup, Rust-shaped
//! fragment soup, and truncations of real-looking source. Seeded and
//! deterministic (the vendored proptest runner derives its RNG from
//! the test name), so a failure here reproduces exactly.
//!
//! This is the first entry toward the ROADMAP's fuzz-surface item:
//! the same pattern extends to the scenario-DSL parser later.

use dcmaint_lint::{lexer, lint_sources_with, model, tokens};
use proptest::prelude::*;

/// Everything the parser dispatches on, plus lexical trouble: unpaired
/// delimiters, raw-string fences, byte strings, raw idents, comments
/// that never close, and keywords cut off mid-item.
const FRAGMENTS: &[&str] = &[
    "struct ",
    "enum ",
    "fn ",
    "impl ",
    "match ",
    "let ",
    "mut ",
    "pub ",
    "pub(crate) ",
    "=> ",
    "= ",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
    ":",
    "::",
    "<",
    ">",
    "->",
    ".",
    "#",
    "#[",
    "!",
    "|",
    "&",
    "'a",
    "'x'",
    "b'x'",
    "x",
    "Ev",
    "Engine",
    "self",
    "lock",
    "uniform",
    "stream",
    "drop",
    "if ",
    "while ",
    "for ",
    "in ",
    "1.5",
    "0xff",
    "1_000",
    "..",
    "\"str",
    "\"s\\\"t\"",
    "r#\"raw",
    "\"#",
    "b\"bytes",
    "br##\"fence",
    "r#type",
    "// line\n",
    "/* block",
    "*/",
    "#[cfg(test)]",
    "\n",
];

/// A believable source the truncation case cuts at every offset.
const REALISTIC: &str = r#"
pub struct Engine {
    pub now: u64,
    links: Vec<LinkRt>,
    hazard: Stream,
}
enum Ev {
    Tick,
    RepairDone { ok: bool, op: OpId },
}
impl Engine {
    fn prof_attribution(ev: &Ev) -> &'static str {
        match ev {
            Ev::Tick => "tick",
            Ev::RepairDone { .. } => "repair",
        }
    }
    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Tick => self.on_tick(),
            Ev::RepairDone { ok, .. } => {
                let g = self.inner.lock().unwrap();
                let heal = self.hazard.uniform();
                drop(g);
            }
        }
    }
}
"#;

const LOCKS: &str = "[crates/serve]\ninner\nring\n";

/// Run the whole pipeline — lexer, tokenizer, item parser, match-arm
/// extraction, and the semantic pass under the paths the rules key on
/// — over one arbitrary source. Only panics count as failure.
fn pipeline_total(src: &str) {
    let scan = lexer::scan(src);
    let toks = tokens::tokenize(&scan.blanked);
    let m = model::parse(toks);
    for f in &m.fns {
        if let Some(body) = f.body.clone() {
            let _ = model::arms_of_first_match(&m.tokens, body);
        }
    }
    // The semantic rules must be just as total: feed the garbage in as
    // every file they anchor on at once.
    let files = vec![
        (
            "crates/scenarios/src/engine.rs".to_string(),
            src.to_string(),
        ),
        (
            "crates/scenarios/src/snapshot.rs".to_string(),
            src.to_string(),
        ),
        ("crates/serve/src/server.rs".to_string(), src.to_string()),
    ];
    let _ = lint_sources_with(&files, None, Some(LOCKS));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Raw byte soup (lossy-decoded, arbitrary non-UTF8 residue).
    #[test]
    fn parser_total_on_byte_soup(bytes in prop::collection::vec(0u16..256, 0..300)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&raw).into_owned();
        pipeline_total(&src);
    }

    /// Rust-shaped fragment soup: real keywords and delimiters in
    /// arbitrary (mostly ill-formed) order — the hard cases for
    /// brace matching and arm extraction.
    #[test]
    fn parser_total_on_fragment_soup(idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..120)) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        pipeline_total(&src);
    }

    /// Every prefix of realistic source: items cut mid-signature,
    /// mid-body, mid-arm, mid-literal.
    #[test]
    fn parser_total_on_truncations(cut in 0usize..REALISTIC.len()) {
        // Cut on a char boundary at or below the drawn offset.
        let mut at = cut;
        while !REALISTIC.is_char_boundary(at) {
            at -= 1;
        }
        pipeline_total(&REALISTIC[..at]);
    }
}
