//! Golden fixture tests for every lint rule, suppression and baseline
//! round-trips, and a property test that lint output bytes are
//! invariant to file-discovery order.
//!
//! Fixtures are inline source snippets (not files on disk), so the
//! real tree-wide lint run never sees them.

use dcmaint_lint::{classify, lint_source, lint_sources, report, rules, FileKind, Finding};
use proptest::prelude::*;

fn rules_of(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

// ----- file-kind classification -------------------------------------

#[test]
fn classification() {
    assert_eq!(classify("src/lib.rs"), FileKind::LibRoot);
    assert_eq!(classify("crates/des/src/lib.rs"), FileKind::LibRoot);
    assert_eq!(classify("crates/des/src/sched.rs"), FileKind::Lib);
    assert_eq!(classify("src/bin/selfmaint.rs"), FileKind::BinRoot);
    assert_eq!(
        classify("crates/scenarios/src/bin/experiments.rs"),
        FileKind::BinRoot
    );
    assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
    assert_eq!(classify("tests/integration.rs"), FileKind::Test);
    assert_eq!(classify("crates/des/tests/props.rs"), FileKind::Test);
    assert_eq!(classify("crates/bench/benches/hot.rs"), FileKind::Bench);
}

// ----- rule fixtures ------------------------------------------------

#[test]
fn wall_clock_flagged() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![(rules::WALL_CLOCK, 2)]);
}

#[test]
fn wall_clock_sanctioned_in_obs_wall() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
    assert!(lint_source("crates/obs/src/wall.rs", src).is_empty());
}

#[test]
fn system_time_flagged() {
    let src = "fn f() {\n    let t = std::time::SystemTime::now();\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![(rules::WALL_CLOCK, 2)]);
}

#[test]
fn unseeded_rng_flagged() {
    let src =
        "fn f() {\n    let mut r = rand::thread_rng();\n    let s = SmallRng::from_entropy();\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        rules_of(&f),
        vec![(rules::UNSEEDED_RNG, 2), (rules::UNSEEDED_RNG, 3)]
    );
}

#[test]
fn hash_iteration_flagged_in_lib_and_bin() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        rules_of(&f),
        vec![(rules::HASH_ITERATION, 1), (rules::HASH_ITERATION, 2)]
    );
    assert!(!lint_source("src/bin/tool.rs", src).is_empty());
}

#[test]
fn hash_iteration_skipped_in_tests_and_cfg_test() {
    let src = "use std::collections::HashSet;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
    assert!(lint_source("tests/props.rs", src).is_empty());
    assert!(lint_source("crates/core/benches/b.rs", src).is_empty());
    let gated = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
    assert!(lint_source("crates/core/src/x.rs", gated).is_empty());
}

#[test]
fn hash_in_comment_or_string_not_flagged() {
    let src = "// HashMap would be wrong here\nfn f() { let s = \"HashMap\"; }\n";
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn float_fold_flagged() {
    let src = "fn f(m: &BTreeMap<u32, f64>) -> f64 {\n    m.values().copied().sum::<f64>()\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![(rules::FLOAT_FOLD, 2)]);
    // Integer folds over values() are order-insensitive: no finding.
    let ok = "fn f(m: &BTreeMap<u32, u64>) -> u64 {\n    m.values().copied().sum::<u64>()\n}\n";
    assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
}

#[test]
fn print_in_lib_flagged_only_in_lib() {
    let src = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"uh\");\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        rules_of(&f),
        vec![(rules::PRINT_IN_LIB, 2), (rules::PRINT_IN_LIB, 3)]
    );
    // Binaries, examples, tests may print (roots still owe the
    // forbid-unsafe attribute, so filter to the print rule).
    let no_prints = |path: &str| {
        lint_source(path, src)
            .iter()
            .all(|f| f.rule != rules::PRINT_IN_LIB)
    };
    assert!(no_prints("src/bin/tool.rs"));
    assert!(no_prints("examples/demo.rs"));
    assert!(lint_source("tests/t.rs", src).is_empty());
    // The ReportWriter implementation is the sanctioned funnel.
    assert!(lint_source("crates/scenarios/src/writer.rs", src).is_empty());
}

#[test]
fn forbid_unsafe_required_on_roots() {
    let bare = "fn main() {}\n";
    let good = "#![forbid(unsafe_code)]\nfn main() {}\n";
    assert_eq!(
        rules_of(&lint_source("src/bin/tool.rs", bare)),
        vec![(rules::FORBID_UNSAFE, 1)]
    );
    assert_eq!(
        rules_of(&lint_source("crates/core/src/lib.rs", bare)),
        vec![(rules::FORBID_UNSAFE, 1)]
    );
    assert_eq!(
        rules_of(&lint_source("examples/demo.rs", bare)),
        vec![(rules::FORBID_UNSAFE, 1)]
    );
    assert!(lint_source("src/bin/tool.rs", good).is_empty());
    // Non-root library modules don't need the attribute (the crate
    // root's forbid covers them).
    assert!(lint_source("crates/core/src/inner.rs", bare).is_empty());
}

// ----- suppressions -------------------------------------------------

#[test]
fn suppression_standalone_and_trailing() {
    let standalone = "fn f() {\n    // lint:allow(hash-iteration): lookup-only cache, never iterated\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(lint_source("crates/core/src/x.rs", standalone).is_empty());
    let trailing = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new(); // lint:allow(hash-iteration): lookup-only cache\n}\n";
    assert!(lint_source("crates/core/src/x.rs", trailing).is_empty());
}

#[test]
fn suppression_reason_is_mandatory() {
    let src = "fn f() {\n    // lint:allow(hash-iteration)\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    // The bare allow is a hygiene finding AND the hash finding stands.
    let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&rules::ALLOW_HYGIENE));
    assert!(rules.contains(&rules::HASH_ITERATION));
}

#[test]
fn suppression_unknown_rule_is_flagged() {
    let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![(rules::ALLOW_HYGIENE, 1)]);
}

#[test]
fn unused_suppression_is_flagged() {
    let src = "fn f() {\n    // lint:allow(wall-clock): stale excuse for code since removed\n    let x = 1;\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![(rules::ALLOW_HYGIENE, 2)]);
}

#[test]
fn suppression_only_covers_its_rule() {
    let src = "fn f() {\n    // lint:allow(wall-clock): timing for the bench artifact\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    let f = lint_source("crates/core/src/x.rs", src);
    // The hash finding survives; the wall-clock allow is unused.
    let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&rules::HASH_ITERATION));
    assert!(rules.contains(&rules::ALLOW_HYGIENE));
}

// ----- baseline -----------------------------------------------------

fn file(path: &str, src: &str) -> (String, String) {
    (path.to_string(), src.to_string())
}

const HAZARD: &str = "fn f() {\n    let a: HashMap<u32, u32> = HashMap::new();\n    let b: HashSet<u32> = HashSet::new();\n    let t = std::time::Instant::now();\n}\n";

#[test]
fn baseline_round_trip() {
    let files = [file("crates/core/src/x.rs", HAZARD)];
    // Without a baseline: three findings.
    let out = lint_sources(&files, None).unwrap();
    assert_eq!(out.findings.len(), 3);
    // Render the baseline from them, re-lint with it: clean.
    let text = dcmaint_lint::baseline::render(&out.findings);
    let out2 = lint_sources(&files, Some(("lint-baseline.txt", &text))).unwrap();
    assert!(out2.clean(), "unexpected: {:?}", out2.findings);
    assert_eq!(out2.baselined, 3);
}

#[test]
fn baseline_absorbs_lowest_lines_first() {
    let files = [file("crates/core/src/x.rs", HAZARD)];
    let text = "crates/core/src/x.rs hash-iteration 1\n";
    let out = lint_sources(&files, Some(("b.txt", text))).unwrap();
    // Hash findings on lines 2 and 3; the budget of 1 absorbs line 2,
    // line 3 survives, plus the wall-clock finding on line 4.
    assert_eq!(out.baselined, 1);
    assert_eq!(out.findings.len(), 2);
}

#[test]
fn stale_baseline_entry_is_an_error() {
    // The tree got fixed but the baseline still grandfathers findings:
    // the entry itself must turn into a finding so the file shrinks.
    let files = [file("crates/core/src/x.rs", "fn clean() {}\n")];
    let text = "# header\ncrates/core/src/x.rs hash-iteration 2\n";
    let out = lint_sources(&files, Some(("lint-baseline.txt", text))).unwrap();
    assert_eq!(rules_of(&out.findings), vec![(rules::STALE_BASELINE, 2)]);
    assert!(out.findings[0].path == "lint-baseline.txt");
}

#[test]
fn baseline_rejects_malformed_and_meta_rules() {
    let files = [file("crates/core/src/x.rs", "fn f() {}\n")];
    assert!(lint_sources(&files, Some(("b", "one two\n"))).is_err());
    assert!(lint_sources(&files, Some(("b", "p hash-iteration zero\n"))).is_err());
    assert!(lint_sources(&files, Some(("b", "p hash-iteration 0\n"))).is_err());
    assert!(lint_sources(&files, Some(("b", "p stale-baseline 1\n"))).is_err());
}

// ----- determinism of the linter itself -----------------------------

/// A small synthetic workspace with findings in several files.
fn corpus() -> Vec<(String, String)> {
    vec![
        file(
            "crates/a/src/lib.rs",
            "fn f() { let m: HashMap<u8,u8> = HashMap::new(); }\n",
        ),
        file("crates/a/src/m.rs", "fn g() { println!(\"x\"); }\n"),
        file(
            "crates/b/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn h() { let t = std::time::Instant::now(); }\n",
        ),
        file(
            "src/bin/t.rs",
            "#![forbid(unsafe_code)]\nfn main() { let r = rand::thread_rng(); }\n",
        ),
        file(
            "tests/t.rs",
            "fn t() { let m: HashSet<u8> = HashSet::new(); }\n",
        ),
        file("examples/e.rs", "#![forbid(unsafe_code)]\nfn main() {}\n"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lint output bytes (text and JSON) are invariant to the order
    /// files are discovered in.
    #[test]
    fn output_invariant_to_discovery_order(seed in 0u64..1000) {
        let mut files = corpus();
        // Deterministic shuffle from the case seed.
        let mut s = seed;
        for i in (1..files.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            files.swap(i, (s >> 33) as usize % (i + 1));
        }
        let canon = lint_sources(&corpus(), None).unwrap();
        let shuffled = lint_sources(&files, None).unwrap();
        prop_assert_eq!(report::render_text(&canon), report::render_text(&shuffled));
        prop_assert_eq!(report::render_json(&canon), report::render_json(&shuffled));
    }
}
