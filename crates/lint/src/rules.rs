//! The rule registry: repo-specific determinism & hygiene lints.
//!
//! Every rule matches over *blanked* code (see [`crate::lexer`]), so
//! comments and string literals can never trigger a finding. Rules are
//! deliberately syntactic over-approximations — a tokenizer cannot
//! prove that a `HashMap` is never iterated, so the contract is the
//! reverse: hazardous *types and calls* are flagged wholesale, and the
//! justified exceptions carry a `// lint:allow(rule): reason`
//! suppression at the use site (see [`crate::suppress`]). That keeps
//! the reasoning local and reviewable, which is the property the
//! byte-identity CI gates actually rely on.

use crate::lexer::{test_line_mask, Scan};
use crate::{FileKind, Finding};

/// Wall-clock reads (`Instant::now`, `SystemTime::…`) outside the
/// sanctioned `obs::wall` profiling module.
pub const WALL_CLOCK: &str = "wall-clock";
/// Ambient-entropy RNG constructors (`thread_rng`, `from_entropy`, …).
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// `HashMap`/`HashSet`: iteration order varies per process.
pub const HASH_ITERATION: &str = "hash-iteration";
/// Float reduction over a map's `values()`/`keys()` — addition is not
/// associative, so the fold order must be deterministic.
pub const FLOAT_FOLD: &str = "float-fold";
/// `println!`-family output from library code; report output must
/// route through `ReportWriter`/the journal.
pub const PRINT_IN_LIB: &str = "print-in-lib";
/// Crate roots must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// Semantic: every `Engine` state field must round-trip through the
/// snapshot codec (see [`crate::semantic`]).
pub const SNAPSHOT_COVERAGE: &str = "snapshot-coverage";
/// Semantic: every `Ev` variant needs a `prof_attribution` arm and a
/// reachable journal/trace emission.
pub const EVENT_COVERAGE: &str = "event-coverage";
/// Semantic: engine RNG draws must go through named `Stream`s.
pub const RNG_STREAM: &str = "rng-stream-discipline";
/// Semantic: nested `Mutex` acquisitions must follow `lint-locks.txt`.
pub const LOCK_ORDER: &str = "lock-order";
/// Meta: malformed/unused `lint:allow` suppressions.
pub const ALLOW_HYGIENE: &str = "allow-hygiene";
/// Meta: baseline entries no longer matched by any finding.
pub const STALE_BASELINE: &str = "stale-baseline";

/// Every rule name, in the registry's canonical order.
pub const ALL_RULES: &[&str] = &[
    WALL_CLOCK,
    UNSEEDED_RNG,
    HASH_ITERATION,
    FLOAT_FOLD,
    PRINT_IN_LIB,
    FORBID_UNSAFE,
    SNAPSHOT_COVERAGE,
    EVENT_COVERAGE,
    RNG_STREAM,
    LOCK_ORDER,
    ALLOW_HYGIENE,
    STALE_BASELINE,
];

/// Rules a `lint:allow` may name (the meta rules are not suppressible —
/// a suppression of the suppression checker would be circular).
pub const SUPPRESSIBLE_RULES: &[&str] = &[
    WALL_CLOCK,
    UNSEEDED_RNG,
    HASH_ITERATION,
    FLOAT_FOLD,
    PRINT_IN_LIB,
    FORBID_UNSAFE,
    SNAPSHOT_COVERAGE,
    EVENT_COVERAGE,
    RNG_STREAM,
    LOCK_ORDER,
];

/// Rules a baseline entry may grandfather (same set: the meta rules
/// describe the lint configuration itself and must always be fixed).
pub const BASELINE_RULES: &[&str] = SUPPRESSIBLE_RULES;

/// One-line description per rule, for `--list-rules`.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        WALL_CLOCK => "wall-clock read outside obs::wall (Instant::now, SystemTime)",
        UNSEEDED_RNG => "ambient-entropy RNG (thread_rng, from_entropy, OsRng, rand::random)",
        HASH_ITERATION => "HashMap/HashSet: iteration order is nondeterministic per process",
        FLOAT_FOLD => "float reduction over map values()/keys() — order-sensitive",
        PRINT_IN_LIB => "println!/eprintln!/dbg! in library code (use ReportWriter/journal)",
        FORBID_UNSAFE => "crate root missing #![forbid(unsafe_code)]",
        SNAPSHOT_COVERAGE => "Engine state field missing from the snapshot save/restore codec",
        EVENT_COVERAGE => "Ev variant without prof_attribution arm or reachable journal emission",
        RNG_STREAM => "RNG draw outside a named Stream field / sanctioned derivation",
        LOCK_ORDER => "nested Mutex acquisition violating the declared lint-locks.txt order",
        ALLOW_HYGIENE => "malformed or unused lint:allow suppression",
        STALE_BASELINE => "baseline entry matches fewer findings than it allows",
        _ => "unknown rule",
    }
}

/// The module sanctioned to read the wall clock: profiling lives here
/// and is kept off every deterministic output path by construction.
const WALL_CLOCK_SANCTUARY: &str = "crates/obs/src/wall.rs";
/// The module sanctioned to print: the `ReportWriter` implementation
/// itself, the single funnel all experiment output goes through.
const PRINT_SANCTUARY: &str = "crates/scenarios/src/writer.rs";

const WALL_CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime"];
const RNG_PATTERNS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "rand::random"];
const PRINT_PATTERNS: &[&str] = &["println!", "eprintln!", "print!", "eprint!", "dbg!"];
const HASH_PATTERNS: &[&str] = &["HashMap", "HashSet"];
const FOLD_SOURCES: &[&str] = &[".values()", ".keys()"];
const FOLD_SINKS: &[&str] = &["sum::<f64>", "product::<f64>", "fold(0.0", "fold(0f64"];

/// `pat` occurs in `line` delimited by non-identifier characters (so
/// `println!` does not match inside `eprintln!`).
fn contains_ident(line: &str, pat: &str) -> bool {
    let lb = line.as_bytes();
    let first_is_ident = pat
        .as_bytes()
        .first()
        .is_some_and(u8::is_ascii_alphanumeric);
    let last_is_ident = pat
        .as_bytes()
        .last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
    let mut from = 0;
    while let Some(rel) = line[from..].find(pat) {
        let at = from + rel;
        let ok_before = !first_is_ident
            || at == 0
            || !(lb[at - 1].is_ascii_alphanumeric() || lb[at - 1] == b'_');
        let end = at + pat.len();
        let ok_after = !last_is_ident
            || end >= lb.len()
            || !(lb[end].is_ascii_alphanumeric() || lb[end] == b'_');
        if ok_before && ok_after {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Run every code rule over one scanned file, producing raw findings
/// (suppressions and baseline are applied by the caller).
pub fn check(rel_path: &str, kind: FileKind, scan: &Scan) -> Vec<Finding> {
    let mut out = Vec::new();
    // Whole-file contexts where determinism hazards cannot reach any
    // rendered output: integration tests and benches.
    let lintable = !matches!(kind, FileKind::Test | FileKind::Bench);
    let lines = scan.lines();
    let mask = test_line_mask(&scan.blanked);
    let in_test = |ln: usize| mask.get(ln).copied().unwrap_or(false);

    if lintable {
        for (idx, line) in lines.iter().enumerate() {
            let ln = idx + 1;
            if in_test(ln) {
                continue;
            }
            if rel_path != WALL_CLOCK_SANCTUARY {
                for pat in WALL_CLOCK_PATTERNS {
                    if contains_ident(line, pat) {
                        out.push(Finding::new(
                            rel_path,
                            ln as u32,
                            WALL_CLOCK,
                            format!("`{pat}` reads the wall clock; only obs::wall may (route profiling through WallProfile)"),
                        ));
                    }
                }
            }
            for pat in RNG_PATTERNS {
                if contains_ident(line, pat) {
                    out.push(Finding::new(
                        rel_path,
                        ln as u32,
                        UNSEEDED_RNG,
                        format!("`{pat}` draws ambient entropy; derive every stream from the run seed (SimRng)"),
                    ));
                }
            }
            for pat in HASH_PATTERNS {
                if contains_ident(line, pat) {
                    out.push(Finding::new(
                        rel_path,
                        ln as u32,
                        HASH_ITERATION,
                        format!("`{pat}` iterates in per-process random order; use BTreeMap/BTreeSet or justify a lookup-only use"),
                    ));
                }
            }
            if FOLD_SOURCES.iter().any(|s| line.contains(s))
                && FOLD_SINKS.iter().any(|s| line.contains(s))
            {
                out.push(Finding::new(
                    rel_path,
                    ln as u32,
                    FLOAT_FOLD,
                    "float fold over map values()/keys(); float addition is order-sensitive — fold in key order".to_string(),
                ));
            }
            if matches!(kind, FileKind::Lib | FileKind::LibRoot) && rel_path != PRINT_SANCTUARY {
                for pat in PRINT_PATTERNS {
                    if contains_ident(line, pat) {
                        out.push(Finding::new(
                            rel_path,
                            ln as u32,
                            PRINT_IN_LIB,
                            format!("`{pat}` in library code bypasses ReportWriter/journal; output would not be capturable or deterministic"),
                        ));
                    }
                }
            }
        }
    }

    if matches!(
        kind,
        FileKind::LibRoot | FileKind::BinRoot | FileKind::Example
    ) && !scan.blanked.contains("#![forbid(unsafe_code)]")
    {
        out.push(Finding::new(
            rel_path,
            1,
            FORBID_UNSAFE,
            "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_boundaries() {
        assert!(contains_ident("let m = HashMap::new();", "HashMap"));
        assert!(!contains_ident("let m = MyHashMapLike::new();", "HashMap"));
        assert!(contains_ident("eprintln!(\"x\")", "eprintln!"));
        assert!(!contains_ident("eprintln!(\"x\")", "println!"));
        assert!(contains_ident("t.print!", "print!"));
    }
}
