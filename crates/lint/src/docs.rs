//! Per-rule documentation: rationale, a minimal example, and the
//! suppression syntax. One table, three consumers — `--explain <rule>`
//! on the CLI, the `--list-rules` descriptions (via
//! [`crate::rules::describe`]), and the README's rule table (a test
//! pins the README to this registry so they cannot drift).

use crate::rules;

/// Documentation for one rule.
pub struct RuleDoc {
    pub rule: &'static str,
    /// Why the rule exists — which contract it protects.
    pub rationale: &'static str,
    /// A minimal triggering example.
    pub example: &'static str,
    /// How to suppress it at a justified use site, or why you can't.
    pub suppression: &'static str,
}

/// The docs table, in registry order ([`rules::ALL_RULES`]).
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        rule: rules::WALL_CLOCK,
        rationale: "Every run must be byte-reproducible from its seed. A wall-clock read \
                    (Instant::now, SystemTime) injects host time into the output; only the \
                    quarantined obs::wall profiling module may observe it.",
        example: "let t0 = Instant::now(); // in crates/scenarios",
        suppression: "// lint:allow(wall-clock): <why this read cannot reach any deterministic output>",
    },
    RuleDoc {
        rule: rules::UNSEEDED_RNG,
        rationale: "All randomness must derive from the run seed via SimRng so reruns and \
                    sweeps replay exactly. thread_rng/OsRng/from_entropy draw ambient entropy \
                    the seed does not control.",
        example: "let mut rng = rand::thread_rng();",
        suppression: "// lint:allow(unseeded-rng): <why this entropy never reaches an output byte>",
    },
    RuleDoc {
        rule: rules::HASH_ITERATION,
        rationale: "HashMap/HashSet iterate in per-process random order, so any output folded \
                    from iteration differs across runs. State that is ever iterated must be a \
                    BTreeMap/BTreeSet.",
        example: "for (k, v) in metrics { … } // metrics: HashMap",
        suppression: "// lint:allow(hash-iteration): <why this map is lookup-only, never iterated>",
    },
    RuleDoc {
        rule: rules::FLOAT_FOLD,
        rationale: "Float addition is not associative: summing map values() in nondeterministic \
                    order changes low bits, which the byte-identity gates then catch hours later. \
                    Fold in key order.",
        example: "let s: f64 = m.values().sum::<f64>();",
        suppression: "// lint:allow(float-fold): <why the fold order is already deterministic>",
    },
    RuleDoc {
        rule: rules::PRINT_IN_LIB,
        rationale: "Library output must route through ReportWriter/the journal so it is \
                    capturable, diffable, and byte-deterministic; println! to a shared stdout \
                    interleaves nondeterministically under the sweep pool.",
        example: "println!(\"repair done\"); // in crates/scenarios/src/…",
        suppression: "// lint:allow(print-in-lib): <why stdout is this code's output contract>",
    },
    RuleDoc {
        rule: rules::FORBID_UNSAFE,
        rationale: "The workspace is 100% safe Rust; #![forbid(unsafe_code)] at every crate \
                    root makes that a compile-time guarantee rather than a review convention.",
        example: "// src/lib.rs without the attribute",
        suppression: "// lint:allow(forbid-unsafe): <why this crate root cannot carry the attribute>",
    },
    RuleDoc {
        rule: rules::SNAPSHOT_COVERAGE,
        rationale: "The restore ≡ continuous contract only holds if every Engine state field \
                    round-trips through the snapshot codec. A field added to Engine (or a nested \
                    state struct) but not to snapshot.rs silently diverges after restore — the \
                    exact bug class that forced the PR 7 checkpoint format bump.",
        example: "pub struct Engine { …, new_counter: u64 } // with no save/load in snapshot.rs",
        suppression: "// lint:allow(snapshot-coverage): <why this field is observational/derived, not state>",
    },
    RuleDoc {
        rule: rules::EVENT_COVERAGE,
        rationale: "The profiler's attribution tiling and the journal's completeness are only \
                    as good as their coverage: an Ev variant without an explicit prof_attribution \
                    arm or without a reachable journal/trace emission is a blind spot every later \
                    analysis inherits.",
        example: "enum Ev { …, NewKind } // prof_attribution has no NewKind arm",
        suppression: "// lint:allow(event-coverage): <why this variant is internal and needs no emission>",
    },
    RuleDoc {
        rule: rules::RNG_STREAM,
        rationale: "The twin's counted-draw replay fast-forwards each named Stream by its draw \
                    count; a draw outside a named stream shifts every later draw on that tape and \
                    desynchronizes fork replay. Draw only through Stream fields, Stream/SimRng \
                    params, or root()/stream()/child() derivations.",
        example: "let x = some_rng.uniform(); // some_rng not a named Stream",
        suppression: "// lint:allow(rng-stream-discipline): <why this draw is on a sanctioned stream the linter cannot see>",
    },
    RuleDoc {
        rule: rules::LOCK_ORDER,
        rationale: "serve/sweep hold multiple Mutexes; acquiring them in inconsistent order \
                    deadlocks under contention. lint-locks.txt declares the one legal order per \
                    scope, and nested acquisitions (including through calls) must follow it.",
        example: "let g = shared.ring.lock(); shared.inner.lock(); // inner is ranked before ring",
        suppression: "// lint:allow(lock-order): <why these guards can never overlap in practice>",
    },
    RuleDoc {
        rule: rules::ALLOW_HYGIENE,
        rationale: "Suppressions are the audit trail of every justified exception; a malformed, \
                    reasonless, or unused lint:allow is debt that hides real findings.",
        example: "// lint:allow(wall-clock) — missing `: reason`",
        suppression: "not suppressible: fix or remove the allow itself",
    },
    RuleDoc {
        rule: rules::STALE_BASELINE,
        rationale: "The baseline may only shrink: an entry matching fewer findings than it \
                    grandfathers means debt was fixed — delete the entry so it cannot mask a \
                    regression at the same site later.",
        example: "lint-baseline.txt lists a finding the tree no longer produces",
        suppression: "not suppressible: regenerate with --write-baseline",
    },
];

/// Look up one rule's docs.
pub fn doc_for(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.rule == rule)
}

/// Render `--explain <rule>` output.
pub fn render_explain(d: &RuleDoc) -> String {
    format!(
        "{}\n  {}\n\nwhy\n  {}\n\nexample\n  {}\n\nsuppression\n  {}\n",
        d.rule,
        rules::describe(d.rule),
        d.rationale,
        d.example,
        d.suppression,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_documented_in_registry_order() {
        let documented: Vec<&str> = RULE_DOCS.iter().map(|d| d.rule).collect();
        assert_eq!(
            documented,
            rules::ALL_RULES,
            "RULE_DOCS must mirror ALL_RULES"
        );
    }

    #[test]
    fn explain_renders_all() {
        for d in RULE_DOCS {
            let s = render_explain(d);
            assert!(s.contains(d.rule));
            assert!(s.contains("suppression"));
        }
    }
}
