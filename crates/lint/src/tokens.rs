//! Token layer over the blanked source.
//!
//! The semantic rules need more structure than lines of text but far
//! less than a real Rust AST: identifiers, numbers, lifetimes, and
//! punctuation, each tagged with its 1-based source line. Tokenizing
//! the *blanked* text (see `lexer`) means string/comment interiors are
//! already gone, so this layer never has to reason about literals —
//! the only lexical wrinkle left is the raw identifier `r#ident`,
//! which is normalized to its bare name so `r#type` and a hypothetical
//! plain `type` field compare equal everywhere downstream.

/// Token kind. Punctuation is kept one byte per token — the item
/// parser matches multi-byte operators (`=>`, `::`) by adjacency,
/// which keeps this layer trivially total on arbitrary input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `struct`, `match`, names…).
    Ident(String),
    /// Numeric literal (blanking leaves numbers in the code channel).
    Num(String),
    /// Lifetime (`'a`) — kept distinct so `'a` never reads as a char.
    Life(String),
    /// Single punctuation byte (`{`, `=`, `>`, `:`…).
    Punct(u8),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub tok: Tok,
}

impl Token {
    /// Identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is exactly the identifier `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        self.ident() == Some(kw)
    }

    /// True if this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: u8) -> bool {
        self.tok == Tok::Punct(p)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize blanked source. Total on arbitrary input: every byte is
/// either consumed into a token or skipped (whitespace, non-ASCII
/// residue from lossy decoding).
pub fn tokenize(blanked: &str) -> Vec<Token> {
    let b = blanked.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c == b' ' || c == b'\t' || c == b'\r' {
            i += 1;
        } else if c == b'r'
            && i + 1 < n
            && b[i + 1] == b'#'
            && i + 2 < n
            && is_ident_start(b[i + 2])
        {
            // Raw identifier `r#ident` → bare `ident`.
            let start = i + 2;
            i = start;
            while i < n && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Token {
                line,
                tok: Tok::Ident(blanked[start..i].to_string()),
            });
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Token {
                line,
                tok: Tok::Ident(blanked[start..i].to_string()),
            });
        } else if c.is_ascii_digit() {
            // Numbers incl. suffixes/underscores/dots — precision does
            // not matter downstream, only that they aren't idents.
            let start = i;
            while i < n && (is_ident_byte(b[i]) || b[i] == b'.') {
                // `1..n` range: stop before a second consecutive dot.
                if b[i] == b'.' && i + 1 < n && b[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            toks.push(Token {
                line,
                tok: Tok::Num(blanked[start..i].to_string()),
            });
        } else if c == b'\'' && i + 1 < n && is_ident_start(b[i + 1]) {
            let start = i + 1;
            i = start;
            while i < n && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Token {
                line,
                tok: Tok::Life(blanked[start..i].to_string()),
            });
        } else if c.is_ascii() {
            toks.push(Token {
                line,
                tok: Tok::Punct(c),
            });
            i += 1;
        } else {
            i += 1; // non-ASCII residue (lossy decode) — skip
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_ident_normalized() {
        assert_eq!(idents("let r#type = r#match;"), ["let", "type", "match"]);
    }

    #[test]
    fn lifetimes_distinct_from_idents() {
        let toks = tokenize("fn f<'a>(x: &'a u32) {}");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Life(l) if l == "a")));
        assert!(!idents("fn f<'a>() {}").contains(&"a".to_string()));
    }

    #[test]
    fn lines_tracked() {
        let toks = tokenize("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn numbers_not_idents() {
        let toks = tokenize("1.5f64 0xff 1_000 1..n");
        assert_eq!(
            toks.iter().filter(|t| matches!(t.tok, Tok::Num(_))).count(),
            4
        );
        // `n` from the range survives as an ident.
        assert_eq!(idents("1..n"), ["n"]);
    }
}
