//! Item-level model of one Rust source file.
//!
//! Built by a single forward pass over the token stream (`tokens`):
//! structs with their fields (name + type idents + decl line), enums
//! with their variants, and fns with signature/body token ranges. It
//! is deliberately *not* an AST — bodies stay as brace-matched token
//! slices that the semantic rules scan directly. Everything here is
//! fail-safe by construction: unmatched delimiters and truncated
//! input saturate at end-of-stream instead of panicking, which is
//! what the fuzz gate pins down.

use crate::tokens::{Tok, Token};
use std::ops::Range;

/// A struct field or enum variant: name, declaration line, and the
/// identifiers appearing in its type (enough to ask "is this field a
/// `Stream`?" without modeling types).
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub line: u32,
    pub ty: Vec<String>,
}

/// A `struct` item with named fields (tuple/unit structs parse to an
/// empty field list — the rules only care about named state).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    pub fields: Vec<Field>,
}

/// An `enum` item; variants reuse `Field` (name + line, `ty` holds
/// payload idents).
#[derive(Debug, Clone)]
pub struct EnumItem {
    pub name: String,
    pub line: u32,
    pub variants: Vec<Field>,
}

/// A `fn` item. `sig` spans `fn` through the token before the body
/// open brace; `body` spans the braced body *exclusive* of its
/// delimiters, or `None` for bodyless trait-method declarations.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    pub sig: Range<usize>,
    pub body: Option<Range<usize>>,
}

/// One arm of a `match`: pattern tokens (`head`, up to `=>`) and the
/// arm value tokens (`value`).
#[derive(Debug, Clone)]
pub struct MatchArm {
    pub line: u32,
    pub head: Range<usize>,
    pub value: Range<usize>,
}

/// The per-file item model. Ranges in the items index into `tokens`.
#[derive(Debug)]
pub struct FileModel {
    pub tokens: Vec<Token>,
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub fns: Vec<FnItem>,
}

impl FileModel {
    pub fn struct_named(&self, name: &str) -> Option<&StructItem> {
        self.structs.iter().find(|s| s.name == name)
    }

    pub fn enum_named(&self, name: &str) -> Option<&EnumItem> {
        self.enums.iter().find(|e| e.name == name)
    }

    pub fn fn_named(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// Idents appearing anywhere in `range`.
    pub fn idents_in(&self, range: Range<usize>) -> impl Iterator<Item = &str> {
        self.tokens[range.start.min(self.tokens.len())..range.end.min(self.tokens.len())]
            .iter()
            .filter_map(|t| t.ident())
    }
}

/// Index of the token closing the delimiter opened at `open` (same
/// kind only: `{}`, `()`, or `[]`). Saturates to `toks.len()` when
/// unmatched — callers treat that as "runs to end of file".
pub fn close_delim(toks: &[Token], open: usize) -> usize {
    let (o, c) = match toks.get(open).map(|t| &t.tok) {
        Some(Tok::Punct(b'{')) => (b'{', b'}'),
        Some(Tok::Punct(b'(')) => (b'(', b')'),
        Some(Tok::Punct(b'[')) => (b'[', b']'),
        _ => return toks.len(),
    };
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(p) if *p == o => depth += 1,
            Tok::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Combined `{}`/`()`/`[]` nesting depth delta of one token.
fn depth_delta(t: &Token) -> i32 {
    match t.tok {
        Tok::Punct(b'{') | Tok::Punct(b'(') | Tok::Punct(b'[') => 1,
        Tok::Punct(b'}') | Tok::Punct(b')') | Tok::Punct(b']') => -1,
        _ => 0,
    }
}

/// Parse the body of a braced item (struct or enum), `open` pointing
/// at `{`. Returns (entries, close index). An entry is an ident in
/// "expecting" position (start of body or after a top-level `,`),
/// skipping attributes and visibility; its `ty` collects the idents
/// up to the next top-level `,`. Angle brackets are tracked here —
/// inside struct/enum bodies `<`/`>` are always generics, so commas
/// inside `BTreeMap<K, V>` don't split fields (`->` of fn-pointer
/// types is special-cased).
fn parse_braced_entries(toks: &[Token], open: usize) -> (Vec<Field>, usize) {
    parse_entries(toks, open)
}

/// Same entry grammar over a paren group — used for fn parameter
/// lists, where an entry is `name: Type` exactly like a field.
pub fn parse_paren_entries(toks: &[Token], open: usize) -> (Vec<Field>, usize) {
    parse_entries(toks, open)
}

fn parse_entries(toks: &[Token], open: usize) -> (Vec<Field>, usize) {
    let close = close_delim(toks, open);
    let mut entries: Vec<Field> = Vec::new();
    let mut depth = 0i32; // (){}[] depth relative to the body
    let mut angle = 0i32;
    let mut expecting = true;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        let d = depth_delta(t);
        if d != 0 {
            depth += d;
            i += 1;
            continue;
        }
        match &t.tok {
            Tok::Punct(b'<') if depth == 0 => angle += 1,
            // `->` of an fn-pointer type is not a generic close.
            Tok::Punct(b'>')
                if depth == 0 && angle > 0 && !(i > 0 && toks[i - 1].is_punct(b'-')) =>
            {
                angle -= 1;
            }
            Tok::Punct(b',') if depth == 0 && angle == 0 => expecting = true,
            // Attribute `#[…]`: skip the bracket group.
            Tok::Punct(b'#')
                if expecting
                    && depth == 0
                    && toks.get(i + 1).map(|t| t.is_punct(b'[')) == Some(true) =>
            {
                i = close_delim(toks, i + 1) + 1;
                continue;
            }
            Tok::Ident(name) if expecting && depth == 0 && angle == 0 => {
                if name == "pub" {
                    // `pub` / `pub(crate)`: skip, stay expecting.
                    if toks.get(i + 1).map(|t| t.is_punct(b'(')) == Some(true) {
                        i = close_delim(toks, i + 1) + 1;
                        continue;
                    }
                } else {
                    entries.push(Field {
                        name: name.clone(),
                        line: t.line,
                        ty: Vec::new(),
                    });
                    expecting = false;
                }
            }
            Tok::Ident(id) if !expecting && depth >= 0 => {
                if let Some(last) = entries.last_mut() {
                    last.ty.push(id.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (entries, close)
}

/// Build the item model for one file's token stream.
pub fn parse(tokens: Vec<Token>) -> FileModel {
    let mut structs = Vec::new();
    let mut enums = Vec::new();
    let mut fns = Vec::new();
    let toks = &tokens;
    let mut i = 0;
    while i < toks.len() {
        let kw = match toks[i].ident() {
            Some(k @ ("struct" | "enum" | "fn")) => k,
            _ => {
                i += 1;
                continue;
            }
        };
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            // `fn(u32) -> u32` pointer type, `struct` in a macro, …
            i += 1;
            continue;
        };
        let name = name.to_string();
        let line = toks[i].line;
        // Scan forward to the item body `{` or terminator `;` at
        // paren/bracket depth 0 (skips generics and, for fns, the
        // whole signature).
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut open = None;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct(b'(') | Tok::Punct(b'[') => depth += 1,
                Tok::Punct(b')') | Tok::Punct(b']') => depth -= 1,
                Tok::Punct(b'{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(b';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        match (kw, open) {
            ("struct", Some(o)) => {
                let (fields, _close) = parse_braced_entries(toks, o);
                structs.push(StructItem { name, line, fields });
                i = o + 1; // keep scanning inside (nested items)
            }
            ("enum", Some(o)) => {
                let (variants, _close) = parse_braced_entries(toks, o);
                enums.push(EnumItem {
                    name,
                    line,
                    variants,
                });
                i = o + 1;
            }
            ("fn", Some(o)) => {
                let close = close_delim(toks, o);
                fns.push(FnItem {
                    name,
                    line,
                    sig: i..o,
                    body: Some(o + 1..close),
                });
                i = o + 1;
            }
            ("fn", None) => {
                fns.push(FnItem {
                    name,
                    line,
                    sig: i..j.min(toks.len()),
                    body: None,
                });
                i = j.min(toks.len()).max(i + 1);
            }
            _ => {
                // Tuple/unit struct or bodyless enum fragment.
                if kw == "struct" {
                    structs.push(StructItem {
                        name,
                        line,
                        fields: Vec::new(),
                    });
                }
                i = j.min(toks.len()).max(i + 1);
            }
        }
    }
    FileModel {
        tokens,
        structs,
        enums,
        fns,
    }
}

/// Arms of the *first* `match` found inside `range` (the rules only
/// ever need a fn's outermost dispatch match). Arm heads run to the
/// `=>` at arm depth; values to the `,` that ends the arm or, for
/// block-valued arms, the matching `}`.
pub fn arms_of_first_match(toks: &[Token], range: Range<usize>) -> Vec<MatchArm> {
    let end = range.end.min(toks.len());
    let mut i = range.start.min(end);
    // Find `match`, then its body `{` at depth 0 from the scrutinee.
    let mut arms = Vec::new();
    while i < end && !toks[i].is_ident("match") {
        i += 1;
    }
    if i >= end {
        return arms;
    }
    let mut depth = 0i32;
    let mut open = None;
    let mut j = i + 1;
    while j < end {
        match &toks[j].tok {
            Tok::Punct(b'(') | Tok::Punct(b'[') => depth += 1,
            Tok::Punct(b')') | Tok::Punct(b']') => depth -= 1,
            Tok::Punct(b'{') if depth == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else {
        return arms;
    };
    let close = close_delim(toks, open).min(end);
    let mut k = open + 1;
    while k < close {
        // Head: tokens until `=>` at depth 0 relative to the arm.
        let head_start = k;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut m = k;
        while m < close {
            let d = depth_delta(&toks[m]);
            if d != 0 {
                depth += d;
            } else if depth == 0
                && toks[m].is_punct(b'=')
                && toks.get(m + 1).map(|t| t.is_punct(b'>')) == Some(true)
            {
                arrow = Some(m);
                break;
            }
            m += 1;
        }
        let Some(arrow) = arrow else {
            break; // truncated / not an arm — stop, fail-safe
        };
        // Value: `{ … }` block (then optional `,`) or expression to
        // the `,` at depth 0.
        let vstart = arrow + 2;
        let vend;
        let next_k;
        if toks.get(vstart).map(|t| t.is_punct(b'{')) == Some(true) {
            let vclose = close_delim(toks, vstart).min(close);
            vend = (vclose + 1).min(close);
            next_k = if toks.get(vend).map(|t| t.is_punct(b',')) == Some(true) {
                vend + 1
            } else {
                vend
            };
        } else {
            let mut depth = 0i32;
            let mut m = vstart;
            while m < close {
                let d = depth_delta(&toks[m]);
                if d != 0 {
                    depth += d;
                } else if depth == 0 && toks[m].is_punct(b',') {
                    break;
                }
                m += 1;
            }
            vend = m.min(close);
            next_k = (m + 1).min(close);
        }
        arms.push(MatchArm {
            line: toks[head_start].line,
            head: head_start..arrow,
            value: vstart..vend,
        });
        if next_k <= k {
            break; // no progress — fail-safe against pathological input
        }
        k = next_k;
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, tokens};

    fn model(src: &str) -> FileModel {
        parse(tokens::tokenize(&lexer::scan(src).blanked))
    }

    #[test]
    fn struct_fields_with_generics() {
        let m = model(
            "pub struct Engine {\n    pub links: BTreeMap<LinkId, LinkRt>,\n    #[allow(dead_code)]\n    wall: Option<fn(u32) -> u32>,\n    hazard: Stream,\n}\n",
        );
        let s = m.struct_named("Engine").unwrap();
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["links", "wall", "hazard"]);
        assert_eq!(s.fields[0].line, 2);
        assert!(s.fields[2].ty.contains(&"Stream".to_string()));
    }

    #[test]
    fn enum_variants_with_payloads() {
        let m = model(
            "enum Ev {\n    Tick,\n    RepairDone { op: OpId, ok: bool },\n    Sample(u64),\n}\n",
        );
        let e = m.enum_named("Ev").unwrap();
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Tick", "RepairDone", "Sample"]);
    }

    #[test]
    fn fn_bodies_and_nested_items() {
        let m = model("impl E {\n    fn outer(&self) -> u32 {\n        fn inner() {}\n        1\n    }\n}\nfn free() {}\n");
        assert!(m.fn_named("outer").is_some());
        assert!(m.fn_named("inner").is_some());
        assert!(m.fn_named("free").is_some());
        let outer = m.fn_named("outer").unwrap();
        let body = outer.body.clone().unwrap();
        assert!(m.idents_in(body).any(|i| i == "inner"));
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let m = model("type F = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
    }

    #[test]
    fn match_arms_heads_and_values() {
        let m = model(
            "fn handle(&mut self, ev: Ev) {\n    match ev {\n        Ev::Tick => self.on_tick(),\n        Ev::RepairDone { op, ok } => {\n            self.on_repair_done(op, ok);\n        }\n        _ => {}\n    }\n}\n",
        );
        let f = m.fn_named("handle").unwrap();
        let arms = arms_of_first_match(&m.tokens, f.body.clone().unwrap());
        assert_eq!(arms.len(), 3);
        let head0: Vec<&str> = m.idents_in(arms[0].head.clone()).collect();
        assert_eq!(head0, ["Ev", "Tick"]);
        assert!(m
            .idents_in(arms[1].value.clone())
            .any(|i| i == "on_repair_done"));
        let head2: Vec<&str> = m.idents_in(arms[2].head.clone()).collect();
        assert_eq!(head2, ["_"]);
    }

    #[test]
    fn truncated_input_saturates() {
        for src in [
            "struct S { a: u32,",
            "fn f(",
            "fn f() { match x { A =>",
            "enum E { A(",
            "struct",
            "fn",
        ] {
            let m = model(src);
            for f in &m.fns {
                if let Some(b) = f.body.clone() {
                    let _ = arms_of_first_match(&m.tokens, b);
                }
            }
        }
    }
}
