//! Deterministic workspace file discovery.
//!
//! A plain recursive walk (no deps), skipping build output, vendored
//! stubs, and VCS metadata. The result is sorted — and the engine
//! re-sorts findings anyway, so lint output is provably independent of
//! directory-entry order (there's a proptest for exactly that).

use std::fs;
use std::io;
use std::path::Path;

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Every workspace `.rs` file under `root`, as sorted `/`-separated
/// paths relative to `root`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(root.join(rel))? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &rel.join(name.as_ref()), out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let p = rel.join(name.as_ref());
            out.push(p.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}
