//! `dcmaint-lint` — determinism & hygiene static analysis for this
//! workspace, with a CI gate.
//!
//! The whole reproduction stands on byte-identical seeded runs: the
//! event journal diffs clean across runs, and the sweep output diffs
//! clean across `--jobs` values. Those are *dynamic* checks — they
//! prove the tree as-is, not the next PR. This crate is the static
//! half: a dependency-free, hand-rolled pass (in the same spirit as
//! the sweep crate's hand-rolled work-stealing pool) that walks every
//! workspace `.rs` file with a comment/string-aware scanner
//! ([`lexer`]) and runs a registry of repo-specific rules ([`rules`]):
//!
//! * `wall-clock` — `Instant::now`/`SystemTime` outside `obs::wall`;
//! * `unseeded-rng` — `thread_rng` & friends (all randomness must
//!   derive from the run seed);
//! * `hash-iteration` — `HashMap`/`HashSet`, whose iteration order
//!   varies per process;
//! * `float-fold` — float reductions over map `values()`/`keys()`;
//! * `print-in-lib` — `println!`-family output from library code;
//! * `forbid-unsafe` — crate roots missing `#![forbid(unsafe_code)]`.
//!
//! Justified exceptions carry `// lint:allow(rule): reason`
//! ([`suppress`]; the reason is mandatory), legacy debt lives in a
//! checked-in baseline that can only shrink ([`baseline`]), and both
//! reporters emit stable `(path, line, rule)` order ([`report`]), so
//! the linter's own output is byte-deterministic too. The pass runs as
//! `cargo run -p dcmaint-lint`, as `selfmaint lint`, and as a hard CI
//! gate that exits nonzero on any non-baseline finding.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod walk;

use std::path::Path;

pub use report::Outcome;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// 1-based line (1 for whole-file findings).
    pub line: u32,
    /// Rule name (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub(crate) fn new(path: &str, line: u32, rule: &'static str, message: String) -> Self {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// What a file is, inferred from its workspace path. Determines which
/// rules apply (library hygiene rules don't bind tests or benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` of some crate.
    LibRoot,
    /// Any other module of a library target.
    Lib,
    /// A binary crate root (`src/main.rs`, `src/bin/*.rs`).
    BinRoot,
    /// An example (its own crate root).
    Example,
    /// Integration tests (`tests/`).
    Test,
    /// Benches.
    Bench,
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    let p = rel;
    if p.starts_with("tests/") || p.contains("/tests/") {
        FileKind::Test
    } else if p.starts_with("benches/") || p.contains("/benches/") {
        FileKind::Bench
    } else if p.starts_with("examples/") || p.contains("/examples/") {
        FileKind::Example
    } else if p.contains("src/bin/") || p.ends_with("src/main.rs") {
        FileKind::BinRoot
    } else if p.ends_with("src/lib.rs") {
        FileKind::LibRoot
    } else {
        FileKind::Lib
    }
}

/// Lint in-memory sources. `files` is `(rel_path, contents)` in *any*
/// order — findings come out in canonical order regardless. The
/// optional baseline is `(label, text)`.
pub fn lint_sources(
    files: &[(String, String)],
    baseline: Option<(&str, &str)>,
) -> Result<Outcome, String> {
    let mut findings = Vec::new();
    let mut suppressed = 0;
    for (rel, src) in files {
        let scan = lexer::scan(src);
        let raw = rules::check(rel, classify(rel), &scan);
        let (kept, n) = suppress::apply(rel, &scan, raw);
        suppressed += n;
        findings.extend(kept);
    }
    report::sort(&mut findings);
    let mut baselined = 0;
    if let Some((label, text)) = baseline {
        let entries = baseline::parse(text)?;
        let (kept, n) = baseline::apply(findings, &entries, label);
        findings = kept;
        baselined = n;
        report::sort(&mut findings);
    }
    Ok(Outcome {
        findings,
        files: files.len(),
        suppressed,
        baselined,
    })
}

/// Lint a single source file (test/fixture convenience).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_string(), src.to_string())], None)
        .expect("no baseline, cannot fail")
        .findings
}

/// Lint the workspace tree at `root`. Reads the baseline at
/// `baseline_path` when it exists.
pub fn lint_tree(root: &Path, baseline_path: &Path) -> Result<Outcome, String> {
    let rels = walk::workspace_files(root).map_err(|e| format!("walk {root:?}: {e}"))?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        let src =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        files.push((rel, src));
    }
    let text;
    let baseline = if baseline_path.exists() {
        text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("read {baseline_path:?}: {e}"))?;
        let label = baseline_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| baseline_path.display().to_string());
        Some((label, text))
    } else {
        None
    };
    lint_sources(
        &files,
        baseline.as_ref().map(|(l, t)| (l.as_str(), t.as_str())),
    )
}

/// Shared CLI entry for the `dcmaint-lint` binary and the
/// `selfmaint lint` subcommand. Returns the process exit code:
/// 0 clean, 1 findings, 2 usage/IO error.
pub fn run_cli(args: &[String]) -> i32 {
    let mut root = String::from(".");
    let mut baseline: Option<String> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                let mut out = String::new();
                for r in rules::ALL_RULES {
                    out.push_str(&format!("{r:15} {}\n", rules::describe(r)));
                }
                // lint:allow(print-in-lib): this is the CLI entry point shared by both binaries; stdout is its output contract
                print!("{out}");
                return 0;
            }
            "--root" | "--baseline" if i + 1 >= args.len() => {
                return usage(&format!("{} needs a value", args[i]));
            }
            "--root" => {
                i += 1;
                root = args[i].clone();
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args[i].clone());
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let root = Path::new(&root);
    let baseline_path = baseline
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("lint-baseline.txt"));
    match lint_tree(root, &baseline_path) {
        Ok(outcome) => {
            if write_baseline {
                let text = baseline::render(&outcome.findings);
                if let Err(e) = std::fs::write(&baseline_path, text) {
                    // lint:allow(print-in-lib): CLI error path; stderr before nonzero exit
                    eprintln!("dcmaint-lint: write {baseline_path:?}: {e}");
                    return 2;
                }
            }
            let rendered = if json {
                report::render_json(&outcome)
            } else {
                report::render_text(&outcome)
            };
            // lint:allow(print-in-lib): this is the CLI entry point shared by both binaries; stdout is its output contract
            print!("{rendered}");
            i32::from(!outcome.clean())
        }
        Err(e) => {
            // lint:allow(print-in-lib): CLI error path; stderr before nonzero exit
            eprintln!("dcmaint-lint: {e}");
            2
        }
    }
}

fn usage(err: &str) -> i32 {
    // lint:allow(print-in-lib): CLI error path; stderr before nonzero exit
    eprintln!(
        "dcmaint-lint: {err}\n\
         usage: dcmaint-lint [--root DIR] [--baseline PATH] [--json] [--write-baseline] [--list-rules]"
    );
    2
}
