//! `dcmaint-lint` — determinism & hygiene static analysis for this
//! workspace, with a CI gate.
//!
//! The whole reproduction stands on byte-identical seeded runs: the
//! event journal diffs clean across runs, and the sweep output diffs
//! clean across `--jobs` values. Those are *dynamic* checks — they
//! prove the tree as-is, not the next PR. This crate is the static
//! half: a dependency-free, hand-rolled pass (in the same spirit as
//! the sweep crate's hand-rolled work-stealing pool) that walks every
//! workspace `.rs` file with a comment/string-aware scanner
//! ([`lexer`]) and runs a registry of repo-specific rules ([`rules`]):
//!
//! * `wall-clock` — `Instant::now`/`SystemTime` outside `obs::wall`;
//! * `unseeded-rng` — `thread_rng` & friends (all randomness must
//!   derive from the run seed);
//! * `hash-iteration` — `HashMap`/`HashSet`, whose iteration order
//!   varies per process;
//! * `float-fold` — float reductions over map `values()`/`keys()`;
//! * `print-in-lib` — `println!`-family output from library code;
//! * `forbid-unsafe` — crate roots missing `#![forbid(unsafe_code)]`.
//!
//! Justified exceptions carry `// lint:allow(rule): reason`
//! ([`suppress`]; the reason is mandatory), legacy debt lives in a
//! checked-in baseline that can only shrink ([`baseline`]), and both
//! reporters emit stable `(path, line, rule)` order ([`report`]), so
//! the linter's own output is byte-deterministic too. The pass runs as
//! `cargo run -p dcmaint-lint`, as `selfmaint lint`, and as a hard CI
//! gate that exits nonzero on any non-baseline finding.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod docs;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod suppress;
pub mod tokens;
pub mod walk;

use std::path::Path;

pub use report::Outcome;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// 1-based line (1 for whole-file findings).
    pub line: u32,
    /// Rule name (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub(crate) fn new(path: &str, line: u32, rule: &'static str, message: String) -> Self {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// What a file is, inferred from its workspace path. Determines which
/// rules apply (library hygiene rules don't bind tests or benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` of some crate.
    LibRoot,
    /// Any other module of a library target.
    Lib,
    /// A binary crate root (`src/main.rs`, `src/bin/*.rs`).
    BinRoot,
    /// An example (its own crate root).
    Example,
    /// Integration tests (`tests/`).
    Test,
    /// Benches.
    Bench,
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    let p = rel;
    if p.starts_with("tests/") || p.contains("/tests/") {
        FileKind::Test
    } else if p.starts_with("benches/") || p.contains("/benches/") {
        FileKind::Bench
    } else if p.starts_with("examples/") || p.contains("/examples/") {
        FileKind::Example
    } else if p.contains("src/bin/") || p.ends_with("src/main.rs") {
        FileKind::BinRoot
    } else if p.ends_with("src/lib.rs") {
        FileKind::LibRoot
    } else {
        FileKind::Lib
    }
}

/// Lint in-memory sources. `files` is `(rel_path, contents)` in *any*
/// order — findings come out in canonical order regardless. The
/// optional baseline is `(label, text)`.
pub fn lint_sources(
    files: &[(String, String)],
    baseline: Option<(&str, &str)>,
) -> Result<Outcome, String> {
    lint_sources_with(files, baseline, None)
}

/// [`lint_sources`] plus a lock-hierarchy declaration (the contents
/// of `lint-locks.txt`) enabling the `lock-order` rule.
///
/// Two passes: the per-line rules run file-by-file, then the semantic
/// rules ([`semantic`]) run over the whole item model at once. All
/// findings are grouped back to their anchor file *before* inline
/// suppressions apply, so a `lint:allow(snapshot-coverage)` on an
/// `Engine` field works exactly like the syntactic allows — and
/// unused-allow hygiene stays accurate.
pub fn lint_sources_with(
    files: &[(String, String)],
    baseline: Option<(&str, &str)>,
    locks: Option<&str>,
) -> Result<Outcome, String> {
    let hierarchy = match locks {
        Some(text) => Some(semantic::LockHierarchy::parse(text)?),
        None => None,
    };
    let scans: Vec<lexer::Scan> = files.iter().map(|(_, src)| lexer::scan(src)).collect();
    let masks: Vec<Vec<bool>> = scans
        .iter()
        .map(|s| lexer::test_line_mask(&s.blanked))
        .collect();
    let models: Vec<model::FileModel> = scans
        .iter()
        .map(|s| model::parse(tokens::tokenize(&s.blanked)))
        .collect();

    // Pass 1: per-line rules, grouped per file.
    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .zip(&scans)
        .map(|((rel, _), scan)| rules::check(rel, classify(rel), scan))
        .collect();

    // Pass 2: semantic rules over the whole model; group each finding
    // back to its anchor file so suppressions can see it.
    let sem_files: Vec<semantic::SemFile<'_>> = files
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| semantic::SemFile {
            rel,
            kind: classify(rel),
            mask: &masks[i],
            model: &models[i],
        })
        .collect();
    for finding in semantic::check(&sem_files, hierarchy.as_ref()) {
        match files.iter().position(|(rel, _)| *rel == finding.path) {
            Some(i) => per_file[i].push(finding),
            None => per_file[0].push(finding), // unreachable: anchors are scanned files
        }
    }

    let mut findings = Vec::new();
    let mut suppressed = 0;
    for (i, (rel, _)) in files.iter().enumerate() {
        let raw = std::mem::take(&mut per_file[i]);
        let (kept, n) = suppress::apply(rel, &scans[i], raw);
        suppressed += n;
        findings.extend(kept);
    }
    report::sort(&mut findings);
    let mut baselined = 0;
    if let Some((label, text)) = baseline {
        let entries = baseline::parse(text)?;
        let (kept, n) = baseline::apply(findings, &entries, label);
        findings = kept;
        baselined = n;
        report::sort(&mut findings);
    }
    Ok(Outcome {
        findings,
        files: files.len(),
        suppressed,
        baselined,
    })
}

/// Lint a single source file (test/fixture convenience).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_string(), src.to_string())], None)
        .expect("no baseline, cannot fail")
        .findings
}

/// Default location of the lock-hierarchy declaration.
pub const LOCKS_FILE: &str = "lint-locks.txt";

/// Lint the workspace tree at `root`. Reads the baseline at
/// `baseline_path` and the lock hierarchy at `locks_path` when they
/// exist (`None` locks path falls back to `root/lint-locks.txt`).
pub fn lint_tree(root: &Path, baseline_path: &Path) -> Result<Outcome, String> {
    lint_tree_with(root, baseline_path, None)
}

/// [`lint_tree`] with an explicit lock-hierarchy path override.
pub fn lint_tree_with(
    root: &Path,
    baseline_path: &Path,
    locks_path: Option<&Path>,
) -> Result<Outcome, String> {
    let rels = walk::workspace_files(root).map_err(|e| format!("walk {root:?}: {e}"))?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        let src =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        files.push((rel, src));
    }
    let text;
    let baseline = if baseline_path.exists() {
        text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("read {baseline_path:?}: {e}"))?;
        let label = baseline_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| baseline_path.display().to_string());
        Some((label, text))
    } else {
        None
    };
    let default_locks = root.join(LOCKS_FILE);
    let locks_path = locks_path.unwrap_or(&default_locks);
    let locks_text = if locks_path.exists() {
        Some(std::fs::read_to_string(locks_path).map_err(|e| format!("read {locks_path:?}: {e}"))?)
    } else {
        None
    };
    lint_sources_with(
        &files,
        baseline.as_ref().map(|(l, t)| (l.as_str(), t.as_str())),
        locks_text.as_deref(),
    )
}

/// Every flag [`run_cli`] accepts, in usage order. The `selfmaint`
/// dispatcher's doc text and this crate's own usage string are both
/// test-pinned to this list, so a new flag cannot ship undocumented.
pub const CLI_FLAGS: &[&str] = &[
    "--root",
    "--baseline",
    "--locks",
    "--json",
    "--write-baseline",
    "--list-rules",
    "--explain",
];

/// Shared CLI entry for the `dcmaint-lint` binary and the
/// `selfmaint lint` subcommand. Returns the process exit code:
/// 0 clean, 1 findings, 2 usage/IO error.
pub fn run_cli(args: &[String]) -> i32 {
    let mut root = String::from(".");
    let mut baseline: Option<String> = None;
    let mut locks: Option<String> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                let mut out = String::new();
                for r in rules::ALL_RULES {
                    out.push_str(&format!("{r:22} {}\n", rules::describe(r)));
                }
                // lint:allow(print-in-lib): this is the CLI entry point shared by both binaries; stdout is its output contract
                print!("{out}");
                return 0;
            }
            "--root" | "--baseline" | "--locks" | "--explain" if i + 1 >= args.len() => {
                return usage(&format!("{} needs a value", args[i]));
            }
            "--explain" => {
                i += 1;
                let rule = args[i].as_str();
                let Some(doc) = docs::doc_for(rule) else {
                    return usage(&format!(
                        "unknown rule {rule:?} (see --list-rules for the registry)"
                    ));
                };
                // lint:allow(print-in-lib): this is the CLI entry point shared by both binaries; stdout is its output contract
                print!("{}", docs::render_explain(doc));
                return 0;
            }
            "--root" => {
                i += 1;
                root = args[i].clone();
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args[i].clone());
            }
            "--locks" => {
                i += 1;
                locks = Some(args[i].clone());
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let root = Path::new(&root);
    let baseline_path = baseline
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("lint-baseline.txt"));
    let locks_path = locks.map(std::path::PathBuf::from);
    match lint_tree_with(root, &baseline_path, locks_path.as_deref()) {
        Ok(outcome) => {
            if write_baseline {
                let text = baseline::render(&outcome.findings);
                if let Err(e) = std::fs::write(&baseline_path, text) {
                    // lint:allow(print-in-lib): CLI error path; stderr before nonzero exit
                    eprintln!("dcmaint-lint: write {baseline_path:?}: {e}");
                    return 2;
                }
            }
            let rendered = if json {
                report::render_json(&outcome)
            } else {
                report::render_text(&outcome)
            };
            // lint:allow(print-in-lib): this is the CLI entry point shared by both binaries; stdout is its output contract
            print!("{rendered}");
            i32::from(!outcome.clean())
        }
        Err(e) => {
            // lint:allow(print-in-lib): CLI error path; stderr before nonzero exit
            eprintln!("dcmaint-lint: {e}");
            2
        }
    }
}

fn usage(err: &str) -> i32 {
    // lint:allow(print-in-lib): CLI error path; stderr before nonzero exit
    eprintln!(
        "dcmaint-lint: {err}\n\
         usage: dcmaint-lint [--root DIR] [--baseline PATH] [--locks PATH] [--json] \
         [--write-baseline] [--list-rules] [--explain RULE]"
    );
    2
}
