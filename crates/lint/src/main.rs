//! `dcmaint-lint` — standalone binary. Exits nonzero on any
//! non-baseline finding; see the library crate for the rule catalog.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dcmaint_lint::run_cli(&args));
}
