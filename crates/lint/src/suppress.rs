//! Inline suppressions: `// lint:allow(rule[, rule…]): reason`.
//!
//! A suppression silences matching findings on its own line (trailing
//! comment) or, when the comment stands alone, on the next line that
//! carries code. The reason is mandatory — a suppression is a claim
//! ("this HashMap is lookup-only") and the claim must be written down
//! where the reviewer will read it. Malformed and *unused*
//! suppressions are themselves findings ([`crate::rules::ALLOW_HYGIENE`]),
//! so stale annotations can't accumulate after the hazard they
//! excused is gone.

use crate::lexer::{Comment, Scan};
use crate::rules::{ALLOW_HYGIENE, SUPPRESSIBLE_RULES};
use crate::Finding;

const MARKER: &str = "lint:allow(";

#[derive(Debug)]
struct Allow {
    /// Line of the comment.
    line: u32,
    /// Line whose findings it suppresses.
    target: u32,
    rules: Vec<String>,
    used: bool,
}

/// Parse suppressions and apply them to `findings`. Returns the
/// surviving findings, the number suppressed, and any hygiene findings
/// produced along the way (appended to the result).
pub fn apply(rel_path: &str, scan: &Scan, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
    let mut allows: Vec<Allow> = Vec::new();
    let mut hygiene: Vec<Finding> = Vec::new();
    let lines = scan.lines();
    for c in &scan.comments {
        parse_allow(rel_path, c, &lines, &mut allows, &mut hygiene);
    }
    let mut kept = Vec::new();
    let mut suppressed = 0;
    for f in findings {
        let hit = allows
            .iter_mut()
            .find(|a| a.target == f.line && a.rules.iter().any(|r| r == f.rule));
        match hit {
            Some(a) => {
                a.used = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    for a in &allows {
        if !a.used {
            hygiene.push(Finding::new(
                rel_path,
                a.line,
                ALLOW_HYGIENE,
                format!(
                    "unused suppression for ({}): no matching finding on line {} — remove it",
                    a.rules.join(", "),
                    a.target
                ),
            ));
        }
    }
    kept.extend(hygiene);
    (kept, suppressed)
}

fn parse_allow(
    rel_path: &str,
    c: &Comment,
    lines: &[&str],
    allows: &mut Vec<Allow>,
    hygiene: &mut Vec<Finding>,
) {
    // Directive style: the comment must *start* with the marker, so
    // prose and docs that merely mention `lint:allow(...)` never parse.
    let text = c.text.trim_start();
    if !text.starts_with(MARKER) {
        return;
    }
    let rest = &text[MARKER.len()..];
    let bad = |msg: String, hygiene: &mut Vec<Finding>| {
        hygiene.push(Finding::new(rel_path, c.line, ALLOW_HYGIENE, msg));
    };
    let Some(close) = rest.find(')') else {
        return bad("malformed lint:allow — missing `)`".to_string(), hygiene);
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return bad("lint:allow names no rule".to_string(), hygiene);
    }
    for r in &rules {
        if !SUPPRESSIBLE_RULES.contains(&r.as_str()) {
            bad(
                format!("lint:allow names unknown or unsuppressible rule `{r}`"),
                hygiene,
            );
            return;
        }
    }
    let reason = rest[close + 1..].trim_start_matches(':').trim();
    if reason.is_empty() {
        return bad(
            format!(
                "lint:allow({}) has no reason — write down why the hazard is safe here",
                rules.join(", ")
            ),
            hygiene,
        );
    }
    // Trailing comment → same line; standalone comment → next line
    // that carries code.
    let own_line_has_code = lines
        .get(c.line as usize - 1)
        .is_some_and(|l| !l.trim().is_empty());
    let target = if own_line_has_code {
        c.line
    } else {
        let mut t = c.line + 1;
        while (t as usize) <= lines.len() && lines[t as usize - 1].trim().is_empty() {
            t += 1;
        }
        t
    };
    allows.push(Allow {
        line: c.line,
        target,
        rules,
        used: false,
    });
}
