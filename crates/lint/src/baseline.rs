//! The checked-in baseline: grandfathered findings.
//!
//! Format — one entry per line, `#` comments and blank lines ignored:
//!
//! ```text
//! <path> <rule> <count>
//! ```
//!
//! An entry absorbs up to `count` findings of `rule` in `path`
//! (lowest lines first, so the report stays stable). The lifecycle is
//! one-way: if the tree now produces *fewer* findings than an entry
//! allows, the entry is stale and is itself reported as an error
//! ([`crate::rules::STALE_BASELINE`]) — the baseline can only ever
//! shrink, never silently rot into dead weight.

use std::collections::BTreeMap;

use crate::rules::{BASELINE_RULES, STALE_BASELINE};
use crate::Finding;

#[derive(Debug, Clone)]
pub struct Entry {
    /// 1-based line in the baseline file (for stale reporting).
    pub line: u32,
    pub path: String,
    pub rule: String,
    pub count: usize,
}

/// Parse baseline text. Errors on malformed lines or non-baselineable
/// rules rather than skipping them — a typo'd entry silently absorbing
/// nothing would defeat the gate.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = l.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(format!(
                "baseline line {line}: expected `<path> <rule> <count>`, got {l:?}"
            ));
        }
        if !BASELINE_RULES.contains(&parts[1]) {
            return Err(format!(
                "baseline line {line}: `{}` is not a baselineable rule",
                parts[1]
            ));
        }
        let count: usize = parts[2]
            .parse()
            .map_err(|_| format!("baseline line {line}: bad count {:?}", parts[2]))?;
        if count == 0 {
            return Err(format!(
                "baseline line {line}: a zero-count entry is dead weight — delete it"
            ));
        }
        out.push(Entry {
            line,
            path: parts[0].to_string(),
            rule: parts[1].to_string(),
            count,
        });
    }
    Ok(out)
}

/// Apply the baseline: absorb grandfathered findings, flag stale
/// entries. `baseline_path` labels stale findings.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[Entry],
    baseline_path: &str,
) -> (Vec<Finding>, usize) {
    // Budget per (path, rule). Duplicate entries sum.
    let mut budget: BTreeMap<(String, String), usize> = BTreeMap::new();
    for e in entries {
        *budget.entry((e.path.clone(), e.rule.clone())).or_insert(0) += e.count;
    }
    let mut absorbed: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut kept = Vec::new();
    let mut baselined = 0;
    // Findings arrive sorted by (path, line); absorb lowest lines first.
    for f in findings {
        let key = (f.path.clone(), f.rule.to_string());
        let b = budget.get(&key).copied().unwrap_or(0);
        let a = absorbed.entry(key).or_insert(0);
        if *a < b {
            *a += 1;
            baselined += 1;
        } else {
            kept.push(f);
        }
    }
    // Report each deficient (path, rule) once, even if split across
    // duplicate entries.
    let mut reported: std::collections::BTreeSet<(String, String)> = Default::default();
    for e in entries {
        let key = (e.path.clone(), e.rule.clone());
        let used = absorbed.get(&key).copied().unwrap_or(0);
        let b = budget[&key];
        if used < b && reported.insert(key) {
            kept.push(Finding::new(
                baseline_path,
                e.line,
                STALE_BASELINE,
                format!(
                    "stale baseline: allows {} `{}` finding(s) in {}, the tree has {} — shrink the entry",
                    b, e.rule, e.path, used
                ),
            ));
        }
    }
    (kept, baselined)
}

/// Render current findings as baseline text (for `--write-baseline`).
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, &str), usize> = BTreeMap::new();
    for f in findings {
        if BASELINE_RULES.contains(&f.rule) {
            *counts.entry((f.path.clone(), f.rule)).or_insert(0) += 1;
        }
    }
    let mut out = String::from(
        "# dcmaint-lint baseline — grandfathered findings.\n\
         # format: <path> <rule> <count>\n\
         # The baseline may only shrink: entries exceeding the tree's\n\
         # actual findings are reported as stale-baseline errors.\n",
    );
    for ((path, rule), n) in &counts {
        out.push_str(&format!("{path} {rule} {n}\n"));
    }
    out
}
