//! Text and JSON reporters.
//!
//! Both renderings sort findings by `(path, line, rule, message)`, so
//! lint output is itself byte-deterministic — invariant to file
//! discovery order, thread counts, anything. The JSON is hand-rolled
//! (the engine is dependency-free) and emits keys in a fixed order.

use crate::Finding;

/// Final result of a lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Surviving findings, sorted.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Findings silenced by inline `lint:allow`s.
    pub suppressed: usize,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
}

impl Outcome {
    /// Gate verdict: anything surviving fails the run.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Canonical finding order.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Human-readable report.
pub fn render_text(o: &Outcome) -> String {
    let mut out = String::new();
    for f in &o.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "dcmaint-lint: {} finding(s), {} baselined, {} suppressed, {} file(s) scanned\n",
        o.findings.len(),
        o.baselined,
        o.suppressed,
        o.files
    ));
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report (one object; findings array in canonical
/// order) — the CI artifact.
///
/// Schema v2: adds a `schema` tag and a `by_rule` object counting
/// surviving findings per registered rule (rules with zero findings
/// are present too, so consumers can diff coverage across runs).
pub fn render_json(o: &Outcome) -> String {
    let mut out = String::from("{\n  \"schema\": 2,\n  \"findings\": [");
    for (i, f) in o.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&f.path),
            f.line,
            f.rule,
            escape_json(&f.message)
        ));
    }
    if !o.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"by_rule\": {");
    for (i, rule) in crate::rules::ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let n = o.findings.iter().filter(|f| f.rule == *rule).count();
        out.push_str(&format!("\n    \"{rule}\": {n}"));
    }
    out.push_str("\n  },");
    out.push_str(&format!(
        "\n  \"files_scanned\": {},\n  \"baselined\": {},\n  \"suppressed\": {},\n  \"clean\": {}\n}}\n",
        o.files,
        o.baselined,
        o.suppressed,
        o.clean()
    ));
    out
}
