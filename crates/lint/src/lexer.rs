//! Comment/string-aware source scanner.
//!
//! The rules must never fire on the word `HashMap` inside a doc
//! comment or a string literal, so before any pattern matching the
//! source is *blanked*: every byte inside a comment or a string/char
//! literal is replaced with a space (newlines are kept, so byte
//! offsets and line numbers survive). Rules then match against pure
//! code; comments are collected separately for `lint:allow` parsing.
//!
//! This is a scanner, not a parser: it understands exactly the lexical
//! shapes that matter for blanking — line comments, nested block
//! comments, string/byte-string literals with escapes, raw strings
//! with `#` fences, and char literals vs. lifetimes — and nothing
//! else. `#[cfg(test)] mod … { … }` regions are found afterwards by
//! brace-matching over the blanked text (reliable precisely because
//! strings and comments are gone).

/// One comment, with the 1-based line its text starts on. Delimiters
/// (`//`, `/* */`) are stripped; block comments keep interior newlines.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Scan result: blanked source plus the extracted comments.
#[derive(Debug)]
pub struct Scan {
    /// Source with comment and literal interiors blanked to spaces.
    pub blanked: String,
    /// All comments in file order.
    pub comments: Vec<Comment>,
}

impl Scan {
    /// Blanked source split into lines (0-indexed; line `n` of the file
    /// is `lines()[n - 1]`).
    pub fn lines(&self) -> Vec<&str> {
        self.blanked.lines().collect()
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank `out[from..to]` to spaces, preserving newlines.
fn blank(out: &mut [u8], from: usize, to: usize) {
    for b in &mut out[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn count_newlines(b: &[u8]) -> u32 {
    b.iter().filter(|&&c| c == b'\n').count() as u32
}

/// Scan `src`, blanking comments and literals.
pub fn scan(src: &str) -> Scan {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = b.to_vec();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < n {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                // Strip the `//` (and any further `/` or `!` of doc
                // comments) plus one leading space.
                let mut t = &src[start..i];
                t = t.trim_start_matches('/').trim_start_matches('!');
                comments.push(Comment {
                    line,
                    text: t.strip_prefix(' ').unwrap_or(t).to_string(),
                });
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let inner = src[start..i]
                    .trim_start_matches('/')
                    .trim_start_matches('*')
                    .trim_end_matches('/')
                    .trim_end_matches('*');
                comments.push(Comment {
                    line: start_line,
                    text: inner.trim().to_string(),
                });
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < n && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1; // skip the escaped byte…
                        if i < n && b[i] == b'\n' {
                            line += 1; // …which a line-continuation makes a newline
                        }
                    } else if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n); // closing quote
                blank(&mut out, start, i);
            }
            b'r' | b'b' if raw_fence(b, i).is_some() => {
                // r"…", r#"…"#, b"…", br#"…"# — find the fence, then the
                // matching close quote + fence.
                let start = i;
                let (body, hashes, raw) = raw_fence(b, i).expect("checked");
                i = body; // first byte after the opening quote
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    // Escapes are literal inside raw strings, but a
                    // plain byte string `b"…"` escapes exactly like a
                    // normal string literal — `b"a\"b"` must not close
                    // at the escaped quote.
                    if !raw && b[i] == b'\\' {
                        i += 1; // skip the escaped byte…
                        if i < n && b[i] == b'\n' {
                            line += 1; // …which a line-continuation makes a newline
                        }
                        i += 1;
                        continue;
                    }
                    if b[i] == b'"'
                        && b[i + 1..].len() >= hashes
                        && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
                    {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'\'' => {
                // Char literal vs. lifetime. `'\…'` and `'x'` are
                // literals; `'ident` (no closing quote right after) is
                // a lifetime and stays in the code channel.
                if i + 1 < n && b[i + 1] == b'\\' {
                    let start = i;
                    i += 2; // quote + backslash
                    i = (i + 1).min(n); // escaped byte
                    while i < n && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    blank(&mut out, start, i);
                } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1; // lifetime quote
                }
            }
            _ => i += 1,
        }
    }
    Scan {
        blanked: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

/// If a raw/byte string literal starts at `i`, return
/// `(index after opening quote, fence hash count, is_raw)`. A raw
/// *identifier* `r#ident` has no quote after its hash and is not a
/// literal — it stays in the code channel.
fn raw_fence(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    // Not a literal prefix if glued to a preceding identifier
    // (`for r in…` can't reach here, but `writer"x"` style idents can't
    // be valid Rust anyway; guard regardless).
    if i > 0 && is_ident_byte(b[i - 1]) {
        return None;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' && (raw || (hashes == 0 && j > i)) {
        Some((j + 1, if raw { hashes } else { 0 }, raw))
    } else {
        None
    }
}

/// Mark the 1-based lines belonging to `#[cfg(test)]`-gated items
/// (in-file unit-test modules). Returns a lookup sized `lines + 2` so
/// rules can index by line number directly.
pub fn test_line_mask(blanked: &str) -> Vec<bool> {
    let total = count_newlines(blanked.as_bytes()) as usize + 2;
    let mut mask = vec![false; total];
    let bytes = blanked.as_bytes();
    let mut search = 0;
    while let Some(pos) = blanked[search..].find("#[cfg(test)]") {
        let attr_at = search + pos;
        search = attr_at + 1;
        // Find the gated item's body: the next `{` — unless a `;`
        // arrives first (`#[cfg(test)] use …;` gates a single item with
        // no body worth masking).
        let after = attr_at + "#[cfg(test)]".len();
        let Some(open_rel) = blanked[after..].find(['{', ';']) else {
            continue;
        };
        let open = after + open_rel;
        if bytes[open] == b';' {
            continue;
        }
        let start_line = 1 + count_newlines(&bytes[..attr_at]) as usize;
        let mut depth = 0usize;
        let mut line = 1 + count_newlines(&bytes[..open]) as usize;
        let mut end_line = line;
        for &c in &bytes[open..] {
            match c {
                b'\n' => line += 1,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = line;
                        break;
                    }
                }
                _ => {}
            }
        }
        for m in &mut mask[start_line..=end_line.min(total - 1)] {
            *m = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_blanked_and_collected() {
        let s = scan("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!s.blanked.contains("HashMap"));
        assert!(s.blanked.contains("let x = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].text, "HashMap here");
    }

    #[test]
    fn strings_blanked_lines_preserved() {
        let s = scan("let a = \"HashMap\\\" still\";\nlet b = 'x';\nfn f<'a>() {}\n");
        assert!(!s.blanked.contains("HashMap"));
        assert!(s.blanked.contains("fn f<'a>() {}"));
        assert_eq!(s.blanked.lines().count(), 3);
    }

    #[test]
    fn raw_strings_blanked() {
        let s = scan("let a = r#\"Instant::now \" inner\"#; let b = 1;\n");
        assert!(!s.blanked.contains("Instant"));
        assert!(s.blanked.contains("let b = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* SystemTime */ still */ let c = 3;\n");
        assert!(!s.blanked.contains("SystemTime"));
        assert!(s.blanked.contains("let c = 3;"));
    }

    /// Golden fixture: byte strings blank exactly like normal strings,
    /// escaped quotes included — `b"a\"b"` must not close at the
    /// escaped quote and leak the tail into the code channel.
    #[test]
    fn byte_strings_blanked_with_escapes() {
        let s = scan("let a = b\"HashMap\"; let b = 1;\n");
        assert!(!s.blanked.contains("HashMap"));
        assert!(s.blanked.contains("let b = 1;"));

        let s = scan("let a = b\"a\\\"HashMap\"; let c = 2;\n");
        assert!(
            !s.blanked.contains("HashMap"),
            "escaped quote must not close the literal"
        );
        assert!(s.blanked.contains("let c = 2;"));
    }

    /// Golden fixture: raw byte strings with fences.
    #[test]
    fn raw_byte_strings_blanked() {
        let s = scan("let a = br#\"thread_rng \" inner\"#; let d = 3;\n");
        assert!(!s.blanked.contains("thread_rng"));
        assert!(s.blanked.contains("let d = 3;"));

        let s = scan("let a = br\"SystemTime\"; let e = 4;\n");
        assert!(!s.blanked.contains("SystemTime"));
        assert!(s.blanked.contains("let e = 4;"));
    }

    /// Golden fixture: a raw identifier `r#ident` is code, not a string
    /// fence — it must survive blanking intact (the token layer
    /// normalizes it to its bare name).
    #[test]
    fn raw_identifiers_stay_in_code_channel() {
        let s = scan("let r#type = 1; let r#match = r\"gone\";\n");
        assert!(s.blanked.contains("let r#type = 1;"));
        assert!(s.blanked.contains("let r#match ="));
        assert!(!s.blanked.contains("gone"));
    }

    /// Golden fixture: byte char literals.
    #[test]
    fn byte_char_literals_blanked() {
        let s = scan("let a = b'x'; let b = b'\\n'; let f = 5;\n");
        assert!(s.blanked.contains("let f = 5;"));
        assert!(!s.blanked.contains("'x'"));
    }

    #[test]
    fn cfg_test_mask_covers_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = scan(src);
        let mask = test_line_mask(&s.blanked);
        assert!(!mask[1], "fn a");
        assert!(mask[2] && mask[3] && mask[4] && mask[5], "attr..close");
        assert!(!mask[6], "fn c");
    }

    #[test]
    fn cfg_test_on_use_item_masks_nothing_below() {
        let src = "#[cfg(test)]\nuse foo::Bar;\nfn c() {}\n";
        let s = scan(src);
        let mask = test_line_mask(&s.blanked);
        assert!(!mask[3]);
    }
}
