//! Semantic, cross-file rules over the item model.
//!
//! Where [`crate::rules`] pattern-matches single blanked lines, the
//! rules here reason about *items across files* ([`crate::model`]):
//! the `Engine` struct vs. the snapshot codec, the `Ev` enum vs. its
//! profiler/journal coverage, RNG draw sites vs. the named-stream
//! discipline, and `Mutex` acquisition order vs. a declared hierarchy.
//! Each is a static shadow of a dynamic contract the CI gates already
//! enforce at runtime (restore ≡ continuous, counted-draw twin replay,
//! attribution tiling, deadlock-freedom) — the point is to catch the
//! drift at lint time, before a long run discovers it.
//!
//! All four are deliberate over-approximations on token streams, not
//! proofs; the escape hatch is the same `// lint:allow(rule): reason`
//! the syntactic rules use, so every exception is justified in place.

use crate::model::{arms_of_first_match, FileModel};
use crate::rules::{EVENT_COVERAGE, LOCK_ORDER, RNG_STREAM, SNAPSHOT_COVERAGE};
use crate::tokens::Tok;
use crate::{FileKind, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Where the engine state and the `Ev` enum live.
pub const ENGINE_FILE: &str = "crates/scenarios/src/engine.rs";
/// The snapshot codec whose save/load sides must cover every field.
pub const SNAPSHOT_FILE: &str = "crates/scenarios/src/snapshot.rs";
/// The path prefix whose fns form the event-coverage call universe:
/// the engine delegates emission to component crates (robotics,
/// tickets, telemetry…) that hold cloned journal handles, so the
/// whole workspace is callable.
const EVENT_UNIVERSE: &str = "crates/";
/// Engine code where every RNG draw must go through a named stream.
const RNG_SCOPES: &[&str] = &["crates/scenarios/src/", "crates/twin/src/"];

/// Save-side codec fns: writers plus the entry points that serialize.
fn is_save_fn(name: &str) -> bool {
    name.starts_with("save") || matches!(name, "snapshot" | "fork_bytes" | "state_hash")
}

/// Load-side codec fns. (`profiled_restore` is an instrumented
/// wrapper, not a codec — prefix match keeps it out.)
fn is_load_fn(name: &str) -> bool {
    name.starts_with("load") || name.starts_with("restore")
}

/// Stream draw methods (from `des::rng::Stream`); a call to one of
/// these consumes the counted draw tape.
const DRAW_METHODS: &[&str] = &[
    "next_u64",
    "uniform",
    "uniform_range",
    "below",
    "index",
    "chance",
    "choose",
    "weighted_index",
    "shuffle",
];

/// Sanctioned stream-derivation calls: a value produced by one of
/// these is itself a named stream.
const DERIVE_METHODS: &[&str] = &["root", "stream", "child"];

/// Idents that mark a fn as an observability sink for event-coverage.
const SINK_IDENTS: &[&str] = &["journal", "traces"];

/// One analyzed file, as the semantic pass sees it.
pub struct SemFile<'a> {
    pub rel: &'a str,
    pub kind: FileKind,
    /// `#[cfg(test)]` line mask from [`crate::lexer::test_line_mask`].
    pub mask: &'a [bool],
    pub model: &'a FileModel,
}

impl SemFile<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.mask.get(line as usize).copied().unwrap_or(false)
    }
}

/// Run every semantic rule. `files` is the whole workspace in any
/// order; findings come back unsorted (the caller canonicalizes).
pub fn check(files: &[SemFile<'_>], locks: Option<&LockHierarchy>) -> Vec<Finding> {
    let mut out = Vec::new();
    snapshot_coverage(files, &mut out);
    event_coverage(files, &mut out);
    rng_stream_discipline(files, &mut out);
    if let Some(h) = locks {
        lock_order(files, h, &mut out);
    }
    out
}

fn file<'a, 'b>(files: &'a [SemFile<'b>], rel: &str) -> Option<&'a SemFile<'b>> {
    files.iter().find(|f| f.rel == rel)
}

// ---------------------------------------------------------------- //
// snapshot-coverage
// ---------------------------------------------------------------- //

/// Every field of `Engine` and of the state structs it (transitively)
/// embeds must be referenced by both the save side and the load side
/// of the snapshot codec. A field missing from either is a latent
/// restore divergence — exactly the bug class the "restore ≡
/// continuous" property test only catches if the field happens to
/// influence an output byte within the test horizon.
fn snapshot_coverage(files: &[SemFile<'_>], out: &mut Vec<Finding>) {
    let (Some(eng), Some(snap)) = (file(files, ENGINE_FILE), file(files, SNAPSHOT_FILE)) else {
        return;
    };
    let mut save_idents: BTreeSet<&str> = BTreeSet::new();
    let mut load_idents: BTreeSet<&str> = BTreeSet::new();
    for f in &snap.model.fns {
        let Some(body) = f.body.clone() else { continue };
        if is_save_fn(&f.name) {
            save_idents.extend(snap.model.idents_in(body.clone()));
        }
        if is_load_fn(&f.name) {
            load_idents.extend(snap.model.idents_in(body));
        }
    }
    if save_idents.is_empty() || load_idents.is_empty() {
        return; // no codec in scope (fixture trees) — nothing to hold against
    }
    // Transitive closure of state structs, restricted to structs
    // defined in the engine file: `Engine` itself plus every struct a
    // covered field's type mentions (ActiveIncident, LinkRt, …).
    let local: BTreeSet<&str> = eng.model.structs.iter().map(|s| s.name.as_str()).collect();
    let mut closure: Vec<&str> = vec!["Engine"];
    let mut seen: BTreeSet<&str> = closure.iter().copied().collect();
    let mut i = 0;
    while i < closure.len() {
        if let Some(s) = eng.model.struct_named(closure[i]) {
            for fld in &s.fields {
                for ty in &fld.ty {
                    if local.contains(ty.as_str()) && seen.insert(ty) {
                        closure.push(ty);
                    }
                }
            }
        }
        i += 1;
    }
    for name in closure {
        let Some(s) = eng.model.struct_named(name) else {
            continue;
        };
        for fld in &s.fields {
            let missing = if !save_idents.contains(fld.name.as_str()) {
                Some("save")
            } else if !load_idents.contains(fld.name.as_str()) {
                Some("restore")
            } else {
                None
            };
            if let Some(side) = missing {
                out.push(Finding::new(
                    eng.rel,
                    fld.line,
                    SNAPSHOT_COVERAGE,
                    format!(
                        "field `{}.{}` is not referenced on the {side} side of the snapshot codec ({}); \
                         an unsnapshotted field silently diverges on restore",
                        s.name, fld.name, SNAPSHOT_FILE,
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- //
// event-coverage
// ---------------------------------------------------------------- //

/// Every `Ev` variant must (a) be named in a `prof_attribution` arm —
/// a wildcard does not count, it is precisely the blind spot — and
/// (b) reach an observability sink (`journal`/`traces`) from its
/// `handle` dispatch arm through the scenario crate's call graph.
fn event_coverage(files: &[SemFile<'_>], out: &mut Vec<Finding>) {
    let Some(eng) = file(files, ENGINE_FILE) else {
        return;
    };
    let Some(ev) = eng.model.enum_named("Ev") else {
        return;
    };
    // (a) prof_attribution arm per variant.
    if let Some(prof) = eng.model.fn_named("prof_attribution") {
        if let Some(body) = prof.body.clone() {
            let arms = arms_of_first_match(&eng.model.tokens, body);
            let mut named: BTreeSet<&str> = BTreeSet::new();
            for arm in &arms {
                named.extend(eng.model.idents_in(arm.head.clone()));
            }
            for v in &ev.variants {
                if !named.contains(v.name.as_str()) {
                    out.push(Finding::new(
                        eng.rel,
                        v.line,
                        EVENT_COVERAGE,
                        format!(
                            "`Ev::{}` has no explicit prof_attribution arm; \
                             the profiler would tile this event into the wrong subsystem",
                            v.name,
                        ),
                    ));
                }
            }
        }
    }
    // (b) journal reachability from the handle arm. The callable
    // universe is every fn in the scenarios crate, searched by name.
    let mut universe: BTreeMap<&str, Vec<(&FileModel, std::ops::Range<usize>)>> = BTreeMap::new();
    for f in files {
        if !f.rel.starts_with(EVENT_UNIVERSE) || matches!(f.kind, FileKind::Test | FileKind::Bench)
        {
            continue;
        }
        for fun in &f.model.fns {
            if let Some(b) = fun.body.clone() {
                universe
                    .entry(fun.name.as_str())
                    .or_default()
                    .push((f.model, b));
            }
        }
    }
    let Some(handle) = eng.model.fn_named("handle") else {
        return;
    };
    let Some(hbody) = handle.body.clone() else {
        return;
    };
    let arms = arms_of_first_match(&eng.model.tokens, hbody);
    for v in &ev.variants {
        let Some(arm) = arms
            .iter()
            .find(|a| eng.model.idents_in(a.head.clone()).any(|i| i == v.name))
        else {
            out.push(Finding::new(
                eng.rel,
                v.line,
                EVENT_COVERAGE,
                format!(
                    "`Ev::{}` has no explicit handle arm; its journal coverage cannot be established",
                    v.name,
                ),
            ));
            continue;
        };
        // BFS from the arm value through called fns to a sink ident.
        let mut queue: Vec<(&FileModel, std::ops::Range<usize>)> =
            vec![(eng.model, arm.value.clone())];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut reached = false;
        while let Some((m, range)) = queue.pop() {
            let toks = &m.tokens[range.start.min(m.tokens.len())..range.end.min(m.tokens.len())];
            for (i, t) in toks.iter().enumerate() {
                let Some(id) = t.ident() else { continue };
                if SINK_IDENTS.contains(&id) {
                    reached = true;
                    break;
                }
                let called = toks.get(i + 1).map(|n| n.is_punct(b'(')) == Some(true)
                    && !(i > 0 && toks[i - 1].is_ident("fn"));
                if called && visited.insert(id) {
                    if let Some(defs) = universe.get(id) {
                        for (dm, db) in defs {
                            queue.push((dm, db.clone()));
                        }
                    }
                }
            }
            if reached {
                break;
            }
        }
        if !reached {
            out.push(Finding::new(
                eng.rel,
                v.line,
                EVENT_COVERAGE,
                format!(
                    "`Ev::{}`: no journal/trace emission is reachable from its handle arm; \
                     the event would be invisible to the observability plane",
                    v.name,
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- //
// rng-stream-discipline
// ---------------------------------------------------------------- //

/// What a draw call's receiver resolves to, walking tokens backwards
/// from the `.method(` site.
enum Recv {
    /// `….name.method(…)` — a field access.
    Field(String),
    /// `name.method(…)` — a bare local/param.
    Local(String),
    /// `…fn_name(…).method(…)` — the result of a call.
    Call(String),
    Opaque,
}

fn resolve_recv(model: &FileModel, dot: usize) -> Recv {
    // `dot` indexes the `.` before the method name.
    let toks = &model.tokens;
    let Some(j) = dot.checked_sub(1) else {
        return Recv::Opaque;
    };
    match &toks[j].tok {
        Tok::Ident(name) => {
            if j >= 1 && toks[j - 1].is_punct(b'.') {
                Recv::Field(name.clone())
            } else {
                Recv::Local(name.clone())
            }
        }
        Tok::Punct(b']') => {
            // Indexed: `…deques[i].method(…)` — find the `[`'s owner.
            let mut depth = 1i32;
            let mut k = j;
            while k > 0 && depth > 0 {
                k -= 1;
                match toks[k].tok {
                    Tok::Punct(b']') => depth += 1,
                    Tok::Punct(b'[') => depth -= 1,
                    _ => {}
                }
            }
            match k.checked_sub(1).map(|p| &toks[p].tok) {
                Some(Tok::Ident(name)) => {
                    if k >= 2 && toks[k - 2].is_punct(b'.') {
                        Recv::Field(name.clone())
                    } else {
                        Recv::Local(name.clone())
                    }
                }
                _ => Recv::Opaque,
            }
        }
        Tok::Punct(b')') => {
            // Call result: `….derive(…).method(…)` — name the callee.
            let mut depth = 1i32;
            let mut k = j;
            while k > 0 && depth > 0 {
                k -= 1;
                match toks[k].tok {
                    Tok::Punct(b')') => depth += 1,
                    Tok::Punct(b'(') => depth -= 1,
                    _ => {}
                }
            }
            match k.checked_sub(1).map(|p| &toks[p].tok) {
                Some(Tok::Ident(name)) => Recv::Call(name.clone()),
                _ => Recv::Opaque,
            }
        }
        _ => Recv::Opaque,
    }
}

/// Field names (workspace-wide) whose declared type mentions `Stream`
/// or `SimRng` — the named streams the discipline sanctions.
fn stream_field_names(files: &[SemFile<'_>]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for f in files {
        for s in &f.model.structs {
            for fld in &s.fields {
                if fld.ty.iter().any(|t| t == "Stream" || t == "SimRng") {
                    set.insert(fld.name.clone());
                }
            }
        }
    }
    set
}

/// Locals of one fn sanctioned as streams: params typed
/// `Stream`/`SimRng`, plus `let` bindings whose initializer derives a
/// stream (`root(…)`, `.stream(…)`, `.child(…)`, or a `Stream` path).
fn sanctioned_locals(model: &FileModel, f: &crate::model::FnItem) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    // Params: parse the signature's paren group like a braced body.
    let toks = &model.tokens;
    let sig_end = f.sig.end.min(toks.len());
    if let Some(open) = (f.sig.start..sig_end).find(|&i| toks[i].is_punct(b'(')) {
        let (params, _) = crate::model::parse_paren_entries(toks, open);
        for p in params {
            if p.ty.iter().any(|t| t == "Stream" || t == "SimRng") {
                set.insert(p.name);
            }
        }
    }
    // `let [mut] v = <expr containing a derivation>;`
    let Some(body) = f.body.clone() else {
        return set;
    };
    let end = body.end.min(toks.len());
    let mut i = body.start.min(end);
    while i < end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < end && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(var) = toks.get(j).and_then(|t| t.ident()) else {
            i = j;
            continue;
        };
        // Scan the initializer to the statement's `;` at depth 0.
        let mut depth = 0i32;
        let mut derives = false;
        let mut k = j + 1;
        while k < end {
            match &toks[k].tok {
                Tok::Punct(b'{') | Tok::Punct(b'(') | Tok::Punct(b'[') => depth += 1,
                Tok::Punct(b'}') | Tok::Punct(b')') | Tok::Punct(b']') => depth -= 1,
                Tok::Punct(b';') if depth <= 0 => break,
                Tok::Ident(id) => {
                    let call = toks.get(k + 1).map(|t| t.is_punct(b'(')) == Some(true);
                    if (call && DERIVE_METHODS.contains(&id.as_str())) || id == "Stream" {
                        derives = true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if derives {
            set.insert(var.to_string());
        }
        i = j + 1;
    }
    set
}

/// Every RNG draw inside engine code must go through a named stream:
/// a `Stream`/`SimRng`-typed field or param, a binding derived via
/// `root`/`stream`/`child`, or a direct derivation-call chain. Ad-hoc
/// draws shift every later draw on the tape and break the twin's
/// counted-draw replay.
fn rng_stream_discipline(files: &[SemFile<'_>], out: &mut Vec<Finding>) {
    let stream_fields = stream_field_names(files);
    for f in files {
        if !RNG_SCOPES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        if matches!(f.kind, FileKind::Test | FileKind::Bench) {
            continue;
        }
        let toks = &f.model.tokens;
        for fun in &f.model.fns {
            let Some(body) = fun.body.clone() else {
                continue;
            };
            if f.in_test(fun.line) {
                continue;
            }
            let locals = sanctioned_locals(f.model, fun);
            let end = body.end.min(toks.len());
            for i in body.start.min(end)..end {
                let Some(m) = toks[i].ident() else { continue };
                if !DRAW_METHODS.contains(&m) {
                    continue;
                }
                if i == 0 || !toks[i - 1].is_punct(b'.') {
                    continue;
                }
                if toks.get(i + 1).map(|t| t.is_punct(b'(')) != Some(true) {
                    continue;
                }
                // `LinkId::index()` and friends: a *draw* `.index(len)`
                // always takes an argument.
                if m == "index" && toks.get(i + 2).map(|t| t.is_punct(b')')) == Some(true) {
                    continue;
                }
                if f.in_test(toks[i].line) {
                    continue;
                }
                let sanctioned = match resolve_recv(f.model, i - 1) {
                    Recv::Field(name) => stream_fields.contains(&name),
                    Recv::Local(name) => locals.contains(&name) || stream_fields.contains(&name),
                    Recv::Call(name) => DERIVE_METHODS.contains(&name.as_str()),
                    Recv::Opaque => false,
                };
                if !sanctioned {
                    out.push(Finding::new(
                        f.rel,
                        toks[i].line,
                        RNG_STREAM,
                        format!(
                            "RNG draw `.{m}(…)` on an unnamed stream; route it through a \
                             Stream field or a root()/stream()/child() derivation so the \
                             twin's counted-draw replay stays exact",
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// lock-order
// ---------------------------------------------------------------- //

/// A declared lock hierarchy: per path-prefix scope, the lock field
/// names in the order they must be acquired (outermost first).
#[derive(Debug, Default)]
pub struct LockHierarchy {
    pub scopes: Vec<(String, Vec<String>)>,
}

impl LockHierarchy {
    /// Parse the `lint-locks.txt` format: `[path/prefix]` section
    /// headers, one lock name per line, `#` comments.
    pub fn parse(text: &str) -> Result<LockHierarchy, String> {
        let mut scopes: Vec<(String, Vec<String>)> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(prefix) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                if prefix.is_empty() {
                    return Err(format!("lint-locks.txt:{}: empty scope", ln + 1));
                }
                scopes.push((prefix.to_string(), Vec::new()));
            } else if !line.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
                return Err(format!(
                    "lint-locks.txt:{}: lock name {line:?} is not an identifier",
                    ln + 1
                ));
            } else {
                let Some(scope) = scopes.last_mut() else {
                    return Err(format!(
                        "lint-locks.txt:{}: lock name before any [scope] header",
                        ln + 1
                    ));
                };
                if scope.1.iter().any(|l| l == line) {
                    return Err(format!(
                        "lint-locks.txt:{}: duplicate lock {line:?} in scope [{}]",
                        ln + 1,
                        scope.0
                    ));
                }
                scope.1.push(line.to_string());
            }
        }
        Ok(LockHierarchy { scopes })
    }

    /// The scope binding `rel`, longest prefix wins.
    fn scope_for(&self, rel: &str) -> Option<usize> {
        self.scopes
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| rel.starts_with(p.as_str()))
            .max_by_key(|(_, (p, _))| p.len())
            .map(|(i, _)| i)
    }
}

/// A lock currently held during the token walk.
struct Held {
    lock: usize, // index into the scope's order
    var: Option<String>,
    depth: i32,
}

/// Token-flow scan of `serve`/`sweep` (whatever scopes the hierarchy
/// declares) for nested `.lock()` acquisitions that violate the
/// declared order, re-acquire a held lock, or call (transitively)
/// into a fn that would. Guard lifetimes are tracked heuristically:
/// `let`-bound guards live to end of scope or `drop(guard)`, bare
/// guards to end of statement (including an `if let` body).
fn lock_order(files: &[SemFile<'_>], hier: &LockHierarchy, out: &mut Vec<Finding>) {
    for (scope_idx, (_prefix, order)) in hier.scopes.iter().enumerate() {
        let in_scope: Vec<&SemFile<'_>> = files
            .iter()
            .filter(|f| {
                hier.scope_for(f.rel) == Some(scope_idx)
                    && !matches!(f.kind, FileKind::Test | FileKind::Bench)
            })
            .collect();
        if in_scope.is_empty() {
            continue;
        }
        let rank = |name: &str| order.iter().position(|l| l == name);
        // Fixpoint may-acquire summaries over the scope's call graph.
        let mut summary: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
        let mut calls: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for f in &in_scope {
            for fun in &f.model.fns {
                let Some(body) = fun.body.clone() else {
                    continue;
                };
                let entry = summary.entry(fun.name.as_str()).or_default();
                let toks = &f.model.tokens;
                let end = body.end.min(toks.len());
                for i in body.start.min(end)..end {
                    let Some(id) = toks[i].ident() else { continue };
                    let called = toks.get(i + 1).map(|t| t.is_punct(b'(')) == Some(true)
                        && !(i > 0 && toks[i - 1].is_ident("fn"));
                    if !called {
                        continue;
                    }
                    if id == "lock" && i > 0 && toks[i - 1].is_punct(b'.') {
                        if let Some(name) = recv_name(f.model, i - 1) {
                            if let Some(r) = rank(&name) {
                                entry.insert(r);
                            }
                        }
                    } else {
                        calls.entry(fun.name.as_str()).or_default().insert(id);
                    }
                }
            }
        }
        loop {
            let mut changed = false;
            for (f, callees) in &calls {
                let mut add: BTreeSet<usize> = BTreeSet::new();
                for c in callees {
                    if let Some(s) = summary.get(c) {
                        add.extend(s.iter().copied());
                    }
                }
                let entry = summary.entry(f).or_default();
                for r in add {
                    changed |= entry.insert(r);
                }
            }
            if !changed {
                break;
            }
        }
        // Intraprocedural walk with the held-set.
        for f in &in_scope {
            for fun in &f.model.fns {
                let Some(body) = fun.body.clone() else {
                    continue;
                };
                if f.in_test(fun.line) {
                    continue;
                }
                walk_fn(f, fun, &body, order, &rank, &summary, out);
            }
        }
    }
}

/// The receiver field name of a `.lock(` / method call at `dot`.
fn recv_name(model: &FileModel, dot: usize) -> Option<String> {
    match resolve_recv(model, dot) {
        Recv::Field(n) | Recv::Local(n) => Some(n),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    f: &SemFile<'_>,
    fun: &crate::model::FnItem,
    body: &std::ops::Range<usize>,
    order: &[String],
    rank: &dyn Fn(&str) -> Option<usize>,
    summary: &BTreeMap<&str, BTreeSet<usize>>,
    out: &mut Vec<Finding>,
) {
    let toks = &f.model.tokens;
    let end = body.end.min(toks.len());
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_let: Option<String> = None;
    let mut i = body.start.min(end);
    while i < end {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct(b'{') | Tok::Punct(b'(') | Tok::Punct(b'[') => depth += 1,
            Tok::Punct(b'}') | Tok::Punct(b')') | Tok::Punct(b']') => {
                depth -= 1;
                // Scope end releases let-bound guards bound deeper;
                // returning to a transient guard's depth ends the
                // statement that acquired it (`if let … = m.lock()`).
                held.retain(|h| {
                    if h.var.is_some() {
                        h.depth <= depth
                    } else {
                        h.depth < depth
                    }
                });
            }
            Tok::Punct(b';') => {
                held.retain(|h| h.var.is_some() || h.depth != depth);
                stmt_let = None;
            }
            Tok::Ident(id) if id == "let" => {
                // `if let` / `while let` bind the guard to a pattern
                // whose temporary dies with the `if` statement — model
                // those as transient (released when the body closes).
                let conditional =
                    i > body.start && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
                if !conditional {
                    let mut j = i + 1;
                    if toks.get(j).map(|t| t.is_ident("mut")) == Some(true) {
                        j += 1;
                    }
                    stmt_let = toks.get(j).and_then(|t| t.ident()).map(str::to_string);
                }
            }
            Tok::Ident(id) => {
                let called = toks.get(i + 1).map(|t| t.is_punct(b'(')) == Some(true)
                    && !(i > 0 && toks[i - 1].is_ident("fn"));
                if !called {
                    i += 1;
                    continue;
                }
                let line = t.line;
                if id == "drop" {
                    if let Some(Tok::Ident(v)) = toks.get(i + 2).map(|t| &t.tok) {
                        if toks.get(i + 3).map(|t| t.is_punct(b')')) == Some(true) {
                            held.retain(|h| h.var.as_deref() != Some(v.as_str()));
                        }
                    }
                } else if id == "lock" && i > 0 && toks[i - 1].is_punct(b'.') {
                    // `let g = m.lock().unwrap();` binds the guard to
                    // `g` — but if the chain keeps going past
                    // unwrap/expect (`….lock().unwrap().pop_front()`)
                    // the guard is a temporary that dies with the
                    // statement, and the `let` binds the chain result.
                    let binds_guard = {
                        let mut k = i + 1; // at `(`
                        k = crate::model::close_delim(toks, k) + 1;
                        while toks.get(k).map(|t| t.is_punct(b'.')) == Some(true)
                            && toks
                                .get(k + 1)
                                .and_then(|t| t.ident())
                                .is_some_and(|m| m == "unwrap" || m == "expect")
                        {
                            k = crate::model::close_delim(toks, k + 2) + 1;
                        }
                        toks.get(k).map(|t| t.is_punct(b'.')) != Some(true)
                    };
                    if let Some(r) = recv_name(f.model, i - 1).and_then(|n| rank(&n)) {
                        if !f.in_test(line) {
                            for h in &held {
                                if h.lock == r {
                                    out.push(Finding::new(
                                        f.rel,
                                        line,
                                        LOCK_ORDER,
                                        format!(
                                            "`{}` acquired while `{}` is already held in `{}` — self-deadlock",
                                            order[r], order[h.lock], fun.name,
                                        ),
                                    ));
                                } else if r < h.lock {
                                    out.push(Finding::new(
                                        f.rel,
                                        line,
                                        LOCK_ORDER,
                                        format!(
                                            "`{}` acquired while holding `{}` in `{}` — violates the declared \
                                             order ({} before {})",
                                            order[r], order[h.lock], fun.name, order[r], order[h.lock],
                                        ),
                                    ));
                                }
                            }
                        }
                        held.push(Held {
                            lock: r,
                            var: if binds_guard { stmt_let.clone() } else { None },
                            depth,
                        });
                    }
                } else if !held.is_empty() && !f.in_test(line) {
                    if let Some(acq) = summary.get(id.as_str()) {
                        for &r in acq {
                            for h in &held {
                                if h.lock == r {
                                    out.push(Finding::new(
                                        f.rel,
                                        line,
                                        LOCK_ORDER,
                                        format!(
                                            "call to `{id}()` may re-acquire `{}` already held in `{}`",
                                            order[r], fun.name,
                                        ),
                                    ));
                                } else if r < h.lock {
                                    out.push(Finding::new(
                                        f.rel,
                                        line,
                                        LOCK_ORDER,
                                        format!(
                                            "call to `{id}()` may acquire `{}` while `{}` is held in `{}` — \
                                             violates the declared order",
                                            order[r], order[h.lock], fun.name,
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}
