//! One Criterion group per experiment: running `cargo bench` regenerates
//! every table and figure in EXPERIMENTS.md (CI-sized parameters; the
//! `experiments` binary in `dcmaint-scenarios` prints the full-sized
//! tables).

use criterion::{criterion_group, criterion_main, Criterion};
use dcmaint_scenarios::experiments as exp;
use std::hint::black_box;

fn bench_e1_service_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_service_window");
    g.sample_size(10);
    g.bench_function("level_sweep", |b| {
        b.iter(|| exp::e1::run_experiment(black_box(&exp::e1::E1Params::quick(1))))
    });
    g.finish();
}

fn bench_e2_escalation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_escalation");
    g.sample_size(10);
    g.bench_function("ladder", |b| {
        b.iter(|| exp::e2::run_experiment(black_box(&exp::e2::E2Params::quick(2))))
    });
    g.finish();
}

fn bench_e3_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_cascade");
    g.sample_size(10);
    g.bench_function("actors", |b| {
        b.iter(|| exp::e3::run_experiment(black_box(&exp::e3::E3Params::quick(3))))
    });
    g.finish();
}

fn bench_e4_proactive(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_proactive");
    g.sample_size(10);
    g.bench_function("policies", |b| {
        b.iter(|| exp::e4::run_experiment(black_box(&exp::e4::E4Params::quick(4))))
    });
    g.finish();
}

fn bench_e5_provisioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_provisioning");
    g.bench_function("advisor_sweep", |b| {
        b.iter(|| exp::e5::run_experiment(black_box(&exp::e5::E5Params::standard())))
    });
    g.finish();
}

fn bench_e6_inspection(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_inspection");
    g.sample_size(20);
    g.bench_function("core_sweep", |b| {
        b.iter(|| exp::e6::run_experiment(black_box(&exp::e6::E6Params::quick(6))))
    });
    g.finish();
}

fn bench_e7_cdf(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_repair_cdf");
    g.sample_size(10);
    g.bench_function("cdf_series", |b| {
        b.iter(|| exp::e7::run_experiment(black_box(&exp::e7::E7Params::quick(7))))
    });
    g.finish();
}

fn bench_e8_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_topology");
    g.sample_size(10);
    g.bench_function("maintainability", |b| {
        b.iter(|| exp::e8::run_experiment(black_box(&exp::e8::E8Params::quick(8))))
    });
    g.finish();
}

fn bench_e9_tail(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_tail_latency");
    g.sample_size(10);
    g.bench_function("flap_sweep", |b| {
        b.iter(|| exp::e9::run_experiment(black_box(&exp::e9::E9Params::quick(9))))
    });
    g.finish();
}

fn bench_e10_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_fleet");
    g.sample_size(10);
    g.bench_function("sizing_sweep", |b| {
        b.iter(|| exp::e10::run_experiment(black_box(&exp::e10::E10Params::quick(10))))
    });
    g.finish();
}

fn bench_e12_reconfig(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_reconfig");
    g.sample_size(10);
    g.bench_function("tor_rewires", |b| {
        b.iter(|| exp::e12::run_experiment(black_box(&exp::e12::E12Params::quick(12))))
    });
    g.finish();
}

fn bench_e13_timing(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_timing");
    g.sample_size(10);
    g.bench_function("trough_arms", |b| {
        b.iter(|| exp::e13::run_experiment(black_box(&exp::e13::E13Params::quick(13))))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let p = exp::ablations::AblationParams::quick(20);
    g.bench_function("a1_codesign", |b| {
        b.iter(|| exp::ablations::run_a1(black_box(&p)))
    });
    g.bench_function("a2_ladder", |b| {
        b.iter(|| exp::ablations::run_a2(black_box(&p)))
    });
    g.bench_function("a3_diversity", |b| {
        b.iter(|| exp::ablations::run_a3(black_box(&p)))
    });
    g.finish();
}

fn bench_e11_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_predictive");
    g.sample_size(10);
    g.bench_function("two_arms", |b| {
        b.iter(|| exp::e11::run_experiment(black_box(&exp::e11::E11Params::quick(11))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_e1_service_window,
    bench_e2_escalation,
    bench_e3_cascade,
    bench_e4_proactive,
    bench_e5_provisioning,
    bench_e6_inspection,
    bench_e7_cdf,
    bench_e8_topology,
    bench_e9_tail,
    bench_e10_fleet,
    bench_e11_predict,
    bench_e12_reconfig,
    bench_e13_timing,
    bench_ablations
);
criterion_main!(benches);
