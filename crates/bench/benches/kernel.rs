//! Microbenchmarks of the simulator's hot paths: event-queue
//! throughput, topology generation, routing, the fluid flow allocator,
//! and one simulated day end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use dcmaint_dcnet::flows::{all_to_all, allocate};
use dcmaint_dcnet::routing::{distances_from, ecmp_path};
use dcmaint_dcnet::{gen, DiversityProfile, NetState};
use dcmaint_des::{Scheduler, SimDuration, SimRng, SimTime};
use dcmaint_scenarios::{run, ScenarioConfig};
use maintctl::AutomationLevel;
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_scheduler");
    g.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u32> = Scheduler::new();
            for i in 0..100_000u32 {
                s.schedule(SimTime::from_micros(u64::from(i % 977) * 1000), i);
            }
            let mut acc = 0u64;
            while let Some(f) = s.pop() {
                acc += u64::from(f.payload);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_topology_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_topology_gen");
    let rng = SimRng::root(1);
    g.bench_function("fat_tree_k8", |b| {
        b.iter(|| gen::fat_tree(8, DiversityProfile::cloud_typical(), black_box(&rng)))
    });
    g.bench_function("jellyfish_64x10", |b| {
        b.iter(|| {
            gen::jellyfish(
                64,
                10,
                4,
                DiversityProfile::cloud_typical(),
                black_box(&rng),
            )
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_routing");
    let rng = SimRng::root(2);
    let topo = gen::fat_tree(8, DiversityProfile::cloud_typical(), &rng);
    let state = NetState::new(&topo);
    let servers = topo.servers();
    g.bench_function("bfs_fat_tree_k8", |b| {
        b.iter(|| distances_from(black_box(&topo), &state, servers[0]))
    });
    g.bench_function("ecmp_path_fat_tree_k8", |b| {
        b.iter(|| ecmp_path(black_box(&topo), &state, servers[0], servers[100], 7))
    });
    g.finish();
}

fn bench_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_flows");
    g.sample_size(20);
    let rng = SimRng::root(3);
    let topo = gen::leaf_spine(4, 8, 4, 1, DiversityProfile::standardized(), &rng);
    let state = NetState::new(&topo);
    let demands = all_to_all(&topo.servers(), 10.0);
    g.bench_function("maxmin_allocate_992_demands", |b| {
        b.iter(|| allocate(black_box(&topo), &state, &demands))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_end_to_end");
    g.sample_size(10);
    g.bench_function("one_simulated_day_l3", |b| {
        b.iter(|| {
            let mut cfg = ScenarioConfig::at_level(4, AutomationLevel::L3);
            cfg.duration = SimDuration::from_days(1);
            run(black_box(cfg))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_topology_gen,
    bench_routing,
    bench_flows,
    bench_end_to_end
);
criterion_main!(benches);
