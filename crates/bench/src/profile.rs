//! The engine self-profiling harness behind `selfmaint profile`.
//!
//! Runs one scenario cell per seed with [`dcmaint_obs::ObsConfig`]'s
//! `profiling` knob on,
//! drives the engine event-by-event under a wall clock, takes one
//! explicit mid-run snapshot + restore so the `ckpt` encode/decode
//! spans are exercised, and folds the per-seed `prof/…` registries into
//! a single merged profile — the same [`ObsRegistry::merge`] fold the
//! sweep pool uses, so a one-seed profile and a merged sweep agree on
//! semantics.
//!
//! The split matters: everything derived from registry *counts* is
//! deterministic (same seed → same bytes) and lands in
//! [`BenchReport::deterministic`]; everything derived from the wall
//! clock (span shares, events/sec, RSS) is timing-only and lands in
//! [`BenchReport::timing`], never on seeded stdout.

use std::collections::BTreeMap;

use dcmaint_des::{SimDuration, SimTime};
use dcmaint_obs::ObsRegistry;
use dcmaint_scenarios::{Engine, ScenarioConfig, TopologySpec};
use dcmaint_sweep::derive_seed;
use maintctl::AutomationLevel;

use crate::report::BenchReport;

/// What to profile. Defaults reproduce one E1 cell (the paper's
/// service-window experiment) at L3.
#[derive(Debug, Clone)]
pub struct ProfileParams {
    /// Automation level of the scenario cell.
    pub level: AutomationLevel,
    /// Simulated days per seed.
    pub days: u64,
    /// Base seed; replicates derive via [`derive_seed`].
    pub base_seed: u64,
    /// Seed replicates to run and merge.
    pub seeds: u64,
    /// Use the small CI fabric (same shaping as `sweep --quick`).
    pub quick: bool,
}

impl Default for ProfileParams {
    fn default() -> Self {
        ProfileParams {
            level: AutomationLevel::L3,
            days: 14,
            base_seed: 42,
            seeds: 1,
            quick: false,
        }
    }
}

impl ProfileParams {
    /// The scenario label stamped into the report.
    pub fn scenario_label(&self) -> String {
        format!(
            "E1/{} {}d seed={} seeds={}{}",
            self.level.label(),
            self.days,
            self.base_seed,
            self.seeds,
            if self.quick { " quick" } else { "" }
        )
    }

    /// The config of one replicate — the same fabric shaping as one E1
    /// cell / one `sweep --quick` job, with the self-profiler on.
    fn config(&self, seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::at_level(seed, self.level);
        cfg.duration = SimDuration::from_days(self.days);
        if self.quick {
            cfg.topology = TopologySpec::LeafSpine {
                spines: 2,
                leaves: 6,
                servers_per_leaf: 2,
            };
            cfg.poll_period = SimDuration::from_secs(120);
            cfg.faults.mtbi_per_link = SimDuration::from_days(12);
        }
        cfg.obs.profiling = true;
        cfg
    }
}

/// Everything one profiling run produced.
#[derive(Debug)]
pub struct ProfileOutcome {
    /// The standing artifact (deterministic + timing + host subtrees).
    pub report: BenchReport,
    /// Merged per-seed registries — all `prof/…` counters.
    pub registry: ObsRegistry,
    /// Merged wall spans per subsystem: `(subsystem, total ns, spans)`,
    /// sorted by subsystem. Nondeterministic.
    pub prof_wall: Vec<(&'static str, u64, u64)>,
    /// Per-subsystem wall share in percent, sorted descending. Sums to
    /// ~100 whenever any span was recorded. Nondeterministic.
    pub shares: Vec<(&'static str, f64)>,
    /// Event-kind counts (`prof/ev/*`, prefix stripped), sorted by
    /// count descending then name. Deterministic.
    pub event_kinds: Vec<(String, u64)>,
    /// Total events dispatched across all seeds. Deterministic.
    pub events: u64,
    /// Total wall seconds across all seeds. Nondeterministic.
    pub wall_s: f64,
}

/// Run the profiling harness. Panics only on engine bugs (a snapshot
/// that will not restore); everything else is data in the outcome.
pub fn run_profile(p: &ProfileParams) -> ProfileOutcome {
    let mut merged = ObsRegistry::enabled();
    let mut wall_by_sub: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut queue_high_water = 0u64;
    let mut wall_s = 0.0f64;

    for k in 0..p.seeds.max(1) {
        let seed = derive_seed(p.base_seed, "profile", k);
        let cfg = p.config(seed);
        let mid = SimTime::ZERO + cfg.duration.mul_f64(0.5);
        let mut eng = Engine::new(cfg);

        // lint:allow(wall-clock): the profiling harness is the
        // measurement itself; timings land in BENCH_engine.json and
        // stderr only, never on seeded stdout.
        let t0 = std::time::Instant::now();
        eng.run_until(mid);
        // One explicit snapshot + restore per seed so the ckpt
        // encode/decode spans carry real numbers. `profiled_restore`
        // rebuilds from the snapshot and discards the rebuilt engine,
        // so the simulation itself is untouched.
        let snap = eng.profiled_snapshot();
        eng.profiled_restore(&snap)
            .expect("a just-taken snapshot restores");
        while eng.step_event().is_some() {}
        wall_s += t0.elapsed().as_secs_f64();

        let obs = eng
            .finish_report()
            .obs
            .expect("profiling was on, so finish() packages obs");
        queue_high_water = queue_high_water.max(obs.registry.counter("prof/sched/max-pending"));
        merged.merge(&obs.registry);
        for (sub, ns, spans) in &obs.prof_wall {
            let e = wall_by_sub.entry(sub).or_insert((0, 0));
            e.0 += ns;
            e.1 += spans;
        }
    }

    let prof_wall: Vec<(&'static str, u64, u64)> = wall_by_sub
        .into_iter()
        .map(|(sub, (ns, spans))| (sub, ns, spans))
        .collect();
    let total_ns: u64 = prof_wall.iter().map(|(_, ns, _)| ns).sum();
    let mut shares: Vec<(&'static str, f64)> = prof_wall
        .iter()
        .map(|(sub, ns, _)| {
            let pct = if total_ns == 0 {
                0.0
            } else {
                100.0 * (*ns as f64) / (total_ns as f64)
            };
            (*sub, pct)
        })
        .collect();
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));

    let mut event_kinds: Vec<(String, u64)> = merged
        .counters_sorted()
        .into_iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("prof/ev/")
                .map(|kind| (kind.to_string(), v))
        })
        .collect();
    event_kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let events: u64 = event_kinds.iter().map(|(_, v)| v).sum();

    let mut report = BenchReport::new("engine", &p.scenario_label());
    for (name, v) in merged.counters_sorted() {
        report.deterministic.insert(name.to_string(), v);
    }
    report.deterministic.insert("events".to_string(), events);
    report
        .deterministic
        .insert("queue-high-water".to_string(), queue_high_water);
    report.deterministic.insert("seeds".to_string(), p.seeds);

    let sim_days = (p.days * p.seeds.max(1)) as f64;
    report.timing.insert("wall-s".to_string(), wall_s);
    report.timing.insert(
        "events-per-sec".to_string(),
        if wall_s > 0.0 {
            events as f64 / wall_s
        } else {
            0.0
        },
    );
    report.timing.insert(
        "wall-per-sim-day-s".to_string(),
        if sim_days > 0.0 {
            wall_s / sim_days
        } else {
            0.0
        },
    );
    report
        .timing
        .insert("peak-rss-bytes".to_string(), peak_rss_bytes() as f64);
    for (sub, pct) in &shares {
        report.timing.insert(format!("share/{sub}"), *pct);
    }
    report
        .timing
        .insert("span-ns-total".to_string(), total_ns as f64);

    report
        .host
        .insert("os".to_string(), std::env::consts::OS.to_string());
    report
        .host
        .insert("arch".to_string(), std::env::consts::ARCH.to_string());
    report.host.insert(
        "cores".to_string(),
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .to_string(),
    );

    ProfileOutcome {
        report,
        registry: merged,
        prof_wall,
        shares,
        event_kinds,
        events,
        wall_s,
    }
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` (`VmHWM`). Zero where the proc filesystem is
/// unavailable — the field is informational, never compared.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileParams {
        ProfileParams {
            level: AutomationLevel::L3,
            days: 2,
            base_seed: 9,
            seeds: 1,
            quick: true,
        }
    }

    #[test]
    fn deterministic_fields_are_byte_identical_across_runs() {
        let a = run_profile(&tiny());
        let b = run_profile(&tiny());
        assert_eq!(a.report.deterministic, b.report.deterministic);
        assert_eq!(
            a.registry.snapshot_lines(),
            b.registry.snapshot_lines(),
            "merged registry diverged between same-seed runs"
        );
        assert_eq!(a.event_kinds, b.event_kinds);
        assert!(a.events > 0, "no events dispatched?");
        assert_eq!(
            a.report.deterministic["events"], a.events,
            "report and outcome disagree on the event total"
        );
    }

    #[test]
    fn ckpt_spans_and_shares_are_populated() {
        let out = run_profile(&tiny());
        assert!(out.registry.counter("prof/ckpt/encode") >= 1);
        assert!(out.registry.counter("prof/ckpt/decode") >= 1);
        assert!(out.registry.counter("prof/ckpt/bytes") > 0);
        assert!(out.report.deterministic["queue-high-water"] > 0);
        let total: f64 = out.shares.iter().map(|(_, pct)| pct).sum();
        assert!(
            (total - 100.0).abs() < 0.5,
            "span shares sum to {total}, expected ~100"
        );
        assert!(out.report.timing.contains_key("events-per-sec"));
        assert!(out.report.timing.contains_key("peak-rss-bytes"));
    }

    #[test]
    fn multi_seed_profiles_merge_deterministically() {
        let mut p = tiny();
        p.seeds = 2;
        let a = run_profile(&p);
        let b = run_profile(&p);
        assert_eq!(a.report.deterministic, b.report.deterministic);
        // Two seeds dispatch strictly more events than one.
        assert!(a.events > run_profile(&tiny()).events);
    }

    #[test]
    fn peak_rss_reads_as_nonzero_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
