//! The twin-planner benchmark harness behind `selfmaint plan`.
//!
//! Runs one twin-guided scenario cell per seed with the engine
//! self-profiler on and folds the planner's accounting into a
//! [`BenchReport`] (`BENCH_twin.json`): decision/fork/commit counts and
//! the realized availability (scaled to parts-per-billion so it lands
//! in the byte-diffable `deterministic` subtree), plus wall-clock
//! planner throughput — decisions per second and mean decision latency
//! from the `prof/twin` wall spans — in the `timing` subtree.
//!
//! The ladder baseline runs alongside at the same seeds so the report
//! carries the availability delta the planner bought, not just its
//! price.

use dcmaint_des::SimDuration;
use dcmaint_scenarios::{ScenarioConfig, TopologySpec};
use dcmaint_sweep::derive_seed;
use dcmaint_twin::{TwinConfig, TwinPolicy};
use maintctl::AutomationLevel;

use crate::profile::peak_rss_bytes;
use crate::report::BenchReport;

/// What to benchmark. Defaults reproduce one E15-quick-shaped cell.
#[derive(Debug, Clone)]
pub struct TwinBenchParams {
    /// Automation level of the scenario cell.
    pub level: AutomationLevel,
    /// Simulated days per seed.
    pub days: u64,
    /// Base seed; replicates derive via [`derive_seed`].
    pub base_seed: u64,
    /// Seed replicates to run and merge.
    pub seeds: u64,
    /// Planning horizon in days.
    pub horizon_days: u64,
    /// Branch fan-out worker threads (output-invariant).
    pub jobs: usize,
    /// Use the small CI fabric (same shaping as `sweep --quick`).
    pub quick: bool,
}

impl Default for TwinBenchParams {
    fn default() -> Self {
        TwinBenchParams {
            level: AutomationLevel::L3,
            days: 14,
            base_seed: 42,
            seeds: 1,
            horizon_days: 7,
            jobs: 1,
            quick: true,
        }
    }
}

impl TwinBenchParams {
    /// The scenario label stamped into the report. Deliberately omits
    /// `jobs`: worker count is output-invariant, and CI byte-diffs the
    /// `--jobs 1` and `--jobs N` stdout (label included).
    pub fn scenario_label(&self) -> String {
        format!(
            "twin/{} {}d h{}d seed={} seeds={}{}",
            self.level.label(),
            self.days,
            self.horizon_days,
            self.base_seed,
            self.seeds,
            if self.quick { " quick" } else { "" }
        )
    }

    /// One replicate's config; `twin` switches the planner on.
    fn config(&self, seed: u64, twin: bool) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::at_level(seed, self.level);
        cfg.duration = SimDuration::from_days(self.days);
        if self.quick {
            cfg.topology = TopologySpec::LeafSpine {
                spines: 2,
                leaves: 6,
                servers_per_leaf: 2,
            };
            cfg.poll_period = SimDuration::from_secs(120);
            cfg.faults.mtbi_per_link = SimDuration::from_days(12);
        }
        cfg.obs.profiling = true;
        if twin {
            cfg.twin = TwinPolicy::TwinGuided(TwinConfig {
                horizon: SimDuration::from_days(self.horizon_days),
                jobs: self.jobs,
                ..TwinConfig::default()
            });
        }
        cfg
    }
}

/// Everything one twin benchmark run produced.
#[derive(Debug)]
pub struct TwinBenchOutcome {
    /// The standing artifact (deterministic + timing + host subtrees).
    pub report: BenchReport,
    /// Planner decision points across all seeds.
    pub decisions: u64,
    /// Branch engines forked across all seeds.
    pub forks: u64,
    /// Decisions that committed a non-ladder deviation.
    pub committed: u64,
    /// Mean realized availability of the twin arms.
    pub twin_availability: f64,
    /// Mean realized availability of the ladder arms.
    pub ladder_availability: f64,
    /// Total wall seconds across all seeds (twin arms only).
    pub wall_s: f64,
}

/// Availability scaled to parts-per-billion: deterministic per seed, so
/// it can live in the byte-diffed `deterministic` subtree as a u64.
fn ppb(availability: f64) -> u64 {
    (availability * 1e9).round() as u64
}

/// Run the twin benchmark: ladder + twin arms per seed, planner
/// accounting merged across seeds.
pub fn run_twin_bench(p: &TwinBenchParams) -> TwinBenchOutcome {
    let mut decisions = 0u64;
    let mut forks = 0u64;
    let mut committed = 0u64;
    let mut twin_avail_sum = 0.0f64;
    let mut ladder_avail_sum = 0.0f64;
    let mut pred_avail_sum = 0.0f64;
    let mut twin_span_ns = 0u64;
    let mut twin_spans = 0u64;
    let mut events = 0u64;
    let mut wall_s = 0.0f64;
    let n = p.seeds.max(1);

    for k in 0..n {
        let seed = derive_seed(p.base_seed, "twin-bench", k);

        let ladder = dcmaint_scenarios::run(p.config(seed, false));
        ladder_avail_sum += ladder.availability.availability;

        // lint:allow(wall-clock): the benchmark harness is the
        // measurement itself; timings land in BENCH_twin.json and
        // stderr only, never on seeded stdout.
        let t0 = std::time::Instant::now();
        let twin = dcmaint_scenarios::run(p.config(seed, true));
        wall_s += t0.elapsed().as_secs_f64();

        twin_avail_sum += twin.availability.availability;
        let stats = twin
            .twin
            .as_ref()
            .expect("twin policy was on, so finish() packages stats");
        decisions += stats.decisions;
        forks += stats.forks;
        committed += stats.committed;
        pred_avail_sum += stats.mean_predicted_availability;
        let obs = twin.obs.as_ref().expect("profiling was on");
        events += obs
            .registry
            .counters_sorted()
            .into_iter()
            .filter(|(name, _)| name.starts_with("prof/ev/"))
            .map(|(_, v)| v)
            .sum::<u64>();
        for (sub, ns, spans) in &obs.prof_wall {
            if *sub == "twin" {
                twin_span_ns += ns;
                twin_spans += spans;
            }
        }
    }

    let mut report = BenchReport::new("twin", &p.scenario_label());
    report
        .deterministic
        .insert("decisions".to_string(), decisions);
    report.deterministic.insert("forks".to_string(), forks);
    report
        .deterministic
        .insert("committed".to_string(), committed);
    report.deterministic.insert("events".to_string(), events);
    report.deterministic.insert("seeds".to_string(), n);
    report.deterministic.insert(
        "twin-availability-ppb".to_string(),
        ppb(twin_avail_sum / n as f64),
    );
    report.deterministic.insert(
        "ladder-availability-ppb".to_string(),
        ppb(ladder_avail_sum / n as f64),
    );
    report.deterministic.insert(
        "predicted-availability-ppb".to_string(),
        ppb(pred_avail_sum / n as f64),
    );

    report.timing.insert("wall-s".to_string(), wall_s);
    let span_s = twin_span_ns as f64 / 1e9;
    report.timing.insert("twin-span-s".to_string(), span_s);
    report.timing.insert(
        "decisions-per-sec".to_string(),
        if span_s > 0.0 {
            decisions as f64 / span_s
        } else {
            0.0
        },
    );
    // Deterministic in substance (a ratio of two deterministic counts)
    // but a float, so it lives in `timing`; the counts themselves are
    // what CI byte-diffs.
    report.timing.insert(
        "forks-per-decision".to_string(),
        if decisions > 0 {
            forks as f64 / decisions as f64
        } else {
            0.0
        },
    );
    report.timing.insert(
        "mean-decision-latency-s".to_string(),
        if twin_spans > 0 {
            span_s / twin_spans as f64
        } else {
            0.0
        },
    );
    report
        .timing
        .insert("peak-rss-bytes".to_string(), peak_rss_bytes() as f64);

    report
        .host
        .insert("os".to_string(), std::env::consts::OS.to_string());
    report
        .host
        .insert("arch".to_string(), std::env::consts::ARCH.to_string());
    report.host.insert(
        "cores".to_string(),
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .to_string(),
    );

    TwinBenchOutcome {
        report,
        decisions,
        forks,
        committed,
        twin_availability: twin_avail_sum / n as f64,
        ladder_availability: ladder_avail_sum / n as f64,
        wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TwinBenchParams {
        TwinBenchParams {
            days: 6,
            horizon_days: 3,
            base_seed: 9,
            ..TwinBenchParams::default()
        }
    }

    #[test]
    fn deterministic_fields_are_byte_identical_across_runs() {
        let a = run_twin_bench(&tiny());
        let b = run_twin_bench(&tiny());
        assert_eq!(a.report.deterministic, b.report.deterministic);
        assert!(a.decisions > 0, "planner never fired");
        assert!(a.forks >= a.decisions, "fewer forks than decisions");
        assert_eq!(a.report.deterministic["decisions"], a.decisions);
    }

    #[test]
    fn jobs_do_not_change_deterministic_fields() {
        let mut four = tiny();
        four.jobs = 4;
        let a = run_twin_bench(&tiny());
        let b = run_twin_bench(&four);
        assert_eq!(
            a.report.deterministic, b.report.deterministic,
            "branch fan-out workers leaked into the deterministic subtree"
        );
    }

    #[test]
    fn timing_fields_are_populated() {
        let out = run_twin_bench(&tiny());
        assert!(out.report.timing.contains_key("decisions-per-sec"));
        assert!(out.report.timing.contains_key("mean-decision-latency-s"));
        assert!(out.report.timing["wall-s"] > 0.0);
        assert!(out.report.timing["twin-span-s"] > 0.0, "no twin spans");
    }
}
