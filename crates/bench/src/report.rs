//! The shared `BENCH_*` artifact schema.
//!
//! Every standing perf artifact the workspace writes (`BENCH_engine.json`
//! today; the `BENCH_sweep.json` / `BENCH_obs.json` writers predate this
//! schema and migrate as they are touched) is a [`BenchReport`]: a flat
//! envelope with three subtrees whose contract differs —
//!
//! * `deterministic` — integer counts that must be byte-identical across
//!   same-seed runs (event counts, span counts, queue high-water). CI
//!   diffs exactly this subtree between two runs.
//! * `timing` — wall-clock measurements (events/sec, seconds per
//!   simulated day, peak RSS, span shares). Nondeterministic by nature;
//!   never compared for equality, only against regression thresholds.
//! * `host` — free-form machine metadata so a perf delta can be traced
//!   to a hardware change.
//!
//! The module carries its own minimal JSON reader ([`parse_json`])
//! because the vendored `serde_json` stub is serializer-only: baseline
//! comparison (`selfmaint profile --baseline`) has to read artifacts
//! written by older builds, so the reader accepts any standard JSON
//! document, not just our own output.

use std::collections::BTreeMap;

use serde_json::{Map, Number, Value};

/// Schema version stamped into every report; bump on field-layout
/// changes so `--baseline` can refuse incomparable artifacts loudly.
pub const SCHEMA_VERSION: u64 = 1;

/// One standing benchmark artifact. See the module docs for the
/// deterministic / timing split.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Which bench family produced this (`engine`, `sweep`, …).
    pub bench: String,
    /// Human label of what ran, e.g. `E1/L3 14d seed=42 seeds=1`.
    pub scenario: String,
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema: u64,
    /// Byte-identical-across-same-seed-runs integer counts.
    pub deterministic: BTreeMap<String, u64>,
    /// Wall-clock measurements; compared only against thresholds.
    pub timing: BTreeMap<String, f64>,
    /// Machine metadata (os, arch, cores, …).
    pub host: BTreeMap<String, String>,
}

impl BenchReport {
    /// An empty report for the given bench family and scenario label.
    pub fn new(bench: &str, scenario: &str) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            scenario: scenario.to_string(),
            schema: SCHEMA_VERSION,
            deterministic: BTreeMap::new(),
            timing: BTreeMap::new(),
            host: BTreeMap::new(),
        }
    }

    /// The report as a JSON value. Map keys are BTreeMap-ordered, so
    /// the rendering is byte-stable for identical contents.
    pub fn to_value(&self) -> Value {
        let mut root = Map::default();
        root.insert("bench".to_string(), Value::String(self.bench.clone()));
        root.insert("scenario".to_string(), Value::String(self.scenario.clone()));
        root.insert("schema".to_string(), Value::Number(Number::U(self.schema)));
        let det: Map = self
            .deterministic
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::U(*v))))
            .collect();
        root.insert("deterministic".to_string(), Value::Object(det));
        let timing: Map = self
            .timing
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::F(*v))))
            .collect();
        root.insert("timing".to_string(), Value::Object(timing));
        let host: Map = self
            .host
            .iter()
            .map(|(k, v)| (k.clone(), Value::String(v.clone())))
            .collect();
        root.insert("host".to_string(), Value::Object(host));
        Value::Object(root)
    }

    /// Pretty-printed JSON with a trailing newline — the exact bytes
    /// the `BENCH_*.json` writers put on disk.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_value()).expect("serializable");
        s.push('\n');
        s
    }

    /// Only the `deterministic` subtree, pretty-printed. This is what
    /// CI diffs between two same-seed runs.
    pub fn deterministic_json(&self) -> String {
        let det: Map = self
            .deterministic
            .iter()
            .map(|(k, v)| (k.clone(), Value::Number(Number::U(*v))))
            .collect();
        let mut s = serde_json::to_string_pretty(&Value::Object(det)).expect("serializable");
        s.push('\n');
        s
    }

    /// Parse a report previously written by [`BenchReport::to_json`].
    /// Unknown top-level keys are ignored (forward compatibility);
    /// missing or mistyped required fields are errors.
    pub fn from_json(s: &str) -> Result<BenchReport, String> {
        let v = parse_json(s)?;
        let bench = str_field(&v, "bench")?;
        let scenario = str_field(&v, "scenario")?;
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer \"schema\"")?;
        let mut report = BenchReport::new(&bench, &scenario);
        report.schema = schema;
        for (k, val) in obj_field(&v, "deterministic")?.iter() {
            let n = val
                .as_u64()
                .ok_or_else(|| format!("deterministic.{k} is not an unsigned integer"))?;
            report.deterministic.insert(k.clone(), n);
        }
        for (k, val) in obj_field(&v, "timing")?.iter() {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("timing.{k} is not a number"))?;
            report.timing.insert(k.clone(), n);
        }
        for (k, val) in obj_field(&v, "host")?.iter() {
            let s = val
                .as_str()
                .ok_or_else(|| format!("host.{k} is not a string"))?;
            report.host.insert(k.clone(), s.to_string());
        }
        Ok(report)
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn obj_field<'a>(v: &'a Value, key: &str) -> Result<&'a Map, String> {
    v.get(key)
        .and_then(Value::as_object)
        .ok_or_else(|| format!("missing or non-object {key:?}"))
}

/// Parse a JSON document into the vendored [`Value`] tree. Standard
/// grammar (objects, arrays, strings with escapes, numbers, literals);
/// trailing garbage after the top-level value is an error.
pub fn parse_json(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {other:?} at byte {} (expected a JSON value)",
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = Map::default();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number span");
        if float {
            let v: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
            Ok(Value::Number(Number::F(v)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::U(u)))
        } else {
            let v: i64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
            Ok(Value::Number(Number::I(v)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("engine", "E1/L3 14d seed=42 seeds=1");
        r.deterministic.insert("events".to_string(), 123_456);
        r.deterministic.insert("prof/ev/fault".to_string(), 77);
        r.deterministic.insert("queue-high-water".to_string(), 42);
        r.timing.insert("events-per-sec".to_string(), 1_234_567.89);
        r.timing.insert("share/sched".to_string(), 12.5);
        r.timing.insert("wall-s".to_string(), 0.125);
        r.host.insert("os".to_string(), "linux".to_string());
        r.host.insert("cores".to_string(), "8".to_string());
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // And the canonical rendering is a fixed point.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn serialization_is_byte_stable() {
        assert_eq!(sample().to_json(), sample().to_json());
        let det = sample().deterministic_json();
        assert!(det.contains("\"events\": 123456"));
        assert!(!det.contains("events-per-sec"), "timing leaked: {det}");
    }

    #[test]
    fn reader_accepts_standard_json_shapes() {
        let v = parse_json("{\"a\": [1, -2, 3.5, true, false, null], \"s\": \"x\\n\\\"y\\u0041\"}")
            .unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\n\"yA"));
    }

    #[test]
    fn reader_rejects_malformed_documents() {
        for (doc, needle) in [
            ("", "expected a JSON value"),
            ("{\"a\": 1} extra", "trailing garbage"),
            ("{\"a\" 1}", "expected ':'"),
            ("[1, 2", "expected ',' or ']'"),
            ("\"open", "unterminated string"),
            ("truth", "malformed literal"),
        ] {
            let err = parse_json(doc).unwrap_err();
            assert!(err.contains(needle), "{doc:?} → {err}");
        }
    }

    #[test]
    fn from_json_reports_schema_violations() {
        assert!(BenchReport::from_json("{}").unwrap_err().contains("bench"));
        let bad = "{\"bench\":\"engine\",\"scenario\":\"x\",\"schema\":1,\
                   \"deterministic\":{\"k\":1.5},\"timing\":{},\"host\":{}}";
        assert!(BenchReport::from_json(bad)
            .unwrap_err()
            .contains("unsigned integer"));
    }
}
