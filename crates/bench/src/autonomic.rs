//! The autonomic-loop benchmark harness behind `selfmaint tune`.
//!
//! Runs the E16 drift cell per seed twice — statically tuned and with
//! the MAPE-K loop on — and folds the loop's accounting into a
//! [`BenchReport`] (`BENCH_autonomic.json`): tick/directive/rollback
//! counts, posterior convergence, and both arms' realized availability
//! (scaled to parts-per-billion so the delta lands in the byte-diffable
//! `deterministic` subtree), plus wall-clock adaptation throughput —
//! decisions per second and mean tick latency from the `prof/autonomic`
//! wall spans — in the `timing` subtree.
//!
//! The static baseline runs at the same seeds on the same fault
//! streams, so the report carries the availability the loop bought,
//! not just its price.

use dcmaint_des::SimDuration;
use dcmaint_scenarios::experiments::e16;
use dcmaint_sweep::derive_seed;
use maintctl::AutomationLevel;

use crate::profile::peak_rss_bytes;
use crate::report::BenchReport;

/// What to benchmark. Defaults reproduce one E16-quick-shaped cell.
#[derive(Debug, Clone)]
pub struct AutonomicBenchParams {
    /// Automation level of the scenario cell (E16 pins L3; kept for the
    /// scenario label only).
    pub level: AutomationLevel,
    /// Simulated days per seed.
    pub days: u64,
    /// Base seed; replicates derive via [`derive_seed`].
    pub base_seed: u64,
    /// Seed replicates to run and merge.
    pub seeds: u64,
    /// MAPE-K loop period in hours.
    pub tick_hours: u64,
    /// Use the small CI fabric (the E16-quick shaping).
    pub quick: bool,
}

impl Default for AutonomicBenchParams {
    fn default() -> Self {
        AutonomicBenchParams {
            level: AutomationLevel::L3,
            days: 14,
            base_seed: 42,
            seeds: 1,
            tick_hours: 2,
            quick: true,
        }
    }
}

impl AutonomicBenchParams {
    /// The scenario label stamped into the report.
    pub fn scenario_label(&self) -> String {
        format!(
            "autonomic/{} {}d tick={}h seed={} seeds={}{}",
            self.level.label(),
            self.days,
            self.tick_hours,
            self.base_seed,
            self.seeds,
            if self.quick { " quick" } else { "" }
        )
    }

    /// The E16 drift world both arms share, reshaped by the params.
    fn experiment_params(&self, seed: u64) -> e16::E16Params {
        let mut p = if self.quick {
            e16::E16Params::quick(&[seed])
        } else {
            e16::E16Params::full(&[seed])
        };
        p.duration = SimDuration::from_days(self.days);
        p.burst_at = dcmaint_des::SimTime::ZERO + SimDuration::from_days(self.days / 2);
        p.tick_period = SimDuration::from_hours(self.tick_hours);
        p
    }
}

/// Everything one autonomic benchmark run produced.
#[derive(Debug)]
pub struct AutonomicBenchOutcome {
    /// The standing artifact (deterministic + timing + host subtrees).
    pub report: BenchReport,
    /// MAPE-K ticks across all seeds.
    pub ticks: u64,
    /// Directives executed across all seeds.
    pub applied: u64,
    /// Guardrail rollbacks across all seeds.
    pub rollbacks: u64,
    /// Mean realized availability of the autonomic arms.
    pub autonomic_availability: f64,
    /// Mean realized availability of the static arms.
    pub static_availability: f64,
    /// Posteriors converged / tracked, summed across seeds.
    pub posteriors: (u64, u64),
    /// Total wall seconds across all seeds (autonomic arms only).
    pub wall_s: f64,
}

/// Availability scaled to parts-per-billion: deterministic per seed, so
/// it can live in the byte-diffed `deterministic` subtree as a u64.
fn ppb(availability: f64) -> u64 {
    (availability * 1e9).round() as u64
}

/// Run the autonomic benchmark: static + autonomic arms per seed, loop
/// accounting merged across seeds.
pub fn run_autonomic_bench(p: &AutonomicBenchParams) -> AutonomicBenchOutcome {
    let mut ticks = 0u64;
    let mut decisions = 0u64;
    let mut applied = 0u64;
    let mut rollbacks = 0u64;
    let mut cap_fallbacks = 0u64;
    let mut converged = 0u64;
    let mut tracked = 0u64;
    let mut auto_avail_sum = 0.0f64;
    let mut static_avail_sum = 0.0f64;
    let mut autonomic_span_ns = 0u64;
    let mut autonomic_spans = 0u64;
    let mut events = 0u64;
    let mut wall_s = 0.0f64;
    let n = p.seeds.max(1);

    for k in 0..n {
        let seed = derive_seed(p.base_seed, "autonomic-bench", k);
        let ep = p.experiment_params(seed);

        let stat = dcmaint_scenarios::run(e16::cell_config(&ep, seed, false));
        static_avail_sum += stat.availability.availability;

        let mut cfg = e16::cell_config(&ep, seed, true);
        cfg.obs.profiling = true;
        // lint:allow(wall-clock): the benchmark harness is the
        // measurement itself; timings land in BENCH_autonomic.json and
        // stderr only, never on seeded stdout.
        let t0 = std::time::Instant::now();
        let auto = dcmaint_scenarios::run(cfg);
        wall_s += t0.elapsed().as_secs_f64();

        auto_avail_sum += auto.availability.availability;
        let stats = auto
            .autonomic
            .as_ref()
            .expect("autonomic was on, so finish() packages stats");
        ticks += stats.ticks;
        decisions += stats.decisions;
        applied += stats.applied;
        rollbacks += stats.rollbacks;
        cap_fallbacks += stats.cap_fallbacks;
        converged += stats.posteriors_converged;
        tracked += stats.posteriors_total;
        let obs = auto.obs.as_ref().expect("profiling was on");
        events += obs
            .registry
            .counters_sorted()
            .into_iter()
            .filter(|(name, _)| name.starts_with("prof/ev/"))
            .map(|(_, v)| v)
            .sum::<u64>();
        for (sub, ns, spans) in &obs.prof_wall {
            if *sub == "autonomic" {
                autonomic_span_ns += ns;
                autonomic_spans += spans;
            }
        }
    }

    let mut report = BenchReport::new("autonomic", &p.scenario_label());
    report.deterministic.insert("ticks".to_string(), ticks);
    report
        .deterministic
        .insert("decisions".to_string(), decisions);
    report.deterministic.insert("applied".to_string(), applied);
    report
        .deterministic
        .insert("rollbacks".to_string(), rollbacks);
    report
        .deterministic
        .insert("cap-fallbacks".to_string(), cap_fallbacks);
    report
        .deterministic
        .insert("posteriors-converged".to_string(), converged);
    report
        .deterministic
        .insert("posteriors-total".to_string(), tracked);
    report.deterministic.insert("events".to_string(), events);
    report.deterministic.insert("seeds".to_string(), n);
    report.deterministic.insert(
        "autonomic-availability-ppb".to_string(),
        ppb(auto_avail_sum / n as f64),
    );
    report.deterministic.insert(
        "static-availability-ppb".to_string(),
        ppb(static_avail_sum / n as f64),
    );

    report.timing.insert("wall-s".to_string(), wall_s);
    let span_s = autonomic_span_ns as f64 / 1e9;
    report.timing.insert("autonomic-span-s".to_string(), span_s);
    report.timing.insert(
        "decisions-per-sec".to_string(),
        if span_s > 0.0 {
            decisions as f64 / span_s
        } else {
            0.0
        },
    );
    report.timing.insert(
        "mean-tick-latency-s".to_string(),
        if autonomic_spans > 0 {
            span_s / autonomic_spans as f64
        } else {
            0.0
        },
    );
    report
        .timing
        .insert("peak-rss-bytes".to_string(), peak_rss_bytes() as f64);

    report
        .host
        .insert("os".to_string(), std::env::consts::OS.to_string());
    report
        .host
        .insert("arch".to_string(), std::env::consts::ARCH.to_string());
    report.host.insert(
        "cores".to_string(),
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .to_string(),
    );

    AutonomicBenchOutcome {
        report,
        ticks,
        applied,
        rollbacks,
        autonomic_availability: auto_avail_sum / n as f64,
        static_availability: static_avail_sum / n as f64,
        posteriors: (converged, tracked),
        wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AutonomicBenchParams {
        AutonomicBenchParams {
            days: 8,
            base_seed: 9,
            ..AutonomicBenchParams::default()
        }
    }

    #[test]
    fn deterministic_fields_are_byte_identical_across_runs() {
        let a = run_autonomic_bench(&tiny());
        let b = run_autonomic_bench(&tiny());
        assert_eq!(a.report.deterministic, b.report.deterministic);
        assert!(a.ticks > 0, "loop never ticked");
        assert_eq!(a.report.deterministic["ticks"], a.ticks);
    }

    #[test]
    fn autonomic_arm_does_not_lose_to_static_in_the_bench_cell() {
        let out = run_autonomic_bench(&tiny());
        assert!(
            out.autonomic_availability >= out.static_availability,
            "autonomic {:.6} < static {:.6}",
            out.autonomic_availability,
            out.static_availability
        );
    }

    #[test]
    fn timing_fields_are_populated() {
        let out = run_autonomic_bench(&tiny());
        assert!(out.report.timing.contains_key("decisions-per-sec"));
        assert!(out.report.timing.contains_key("mean-tick-latency-s"));
        assert!(out.report.timing["wall-s"] > 0.0);
        assert!(
            out.report.timing["autonomic-span-s"] > 0.0,
            "no autonomic spans"
        );
    }
}
