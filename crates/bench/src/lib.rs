//! # dcmaint-bench — benchmark harness
//!
//! Two Criterion bench targets:
//!
//! * `benches/experiments.rs` — one group per experiment (E1–E11),
//!   running the CI-sized parameter set of the exact runner that
//!   regenerates the table/figure in EXPERIMENTS.md. `cargo bench -p
//!   dcmaint-bench` therefore re-executes the entire evaluation.
//! * `benches/kernel.rs` — microbenchmarks of the hot substrate paths:
//!   event-queue throughput, topology generation, BFS/ECMP routing, and
//!   a full end-to-end scenario day.
//!
//! The library portion only re-exports the experiment entry points with
//! their quick parameter presets so benches and the `experiments` binary
//! stay in lockstep.

#![forbid(unsafe_code)]

pub use dcmaint_scenarios::experiments;
