//! # dcmaint-bench — benchmark harness and standing perf artifacts
//!
//! Three pieces:
//!
//! * [`report`] — the shared [`BenchReport`] schema behind the standing
//!   `BENCH_*.json` artifacts: a `deterministic` subtree CI diffs
//!   byte-for-byte across same-seed runs, a `timing` subtree compared
//!   only against regression thresholds, and host metadata. Includes a
//!   minimal JSON reader (the vendored `serde_json` is
//!   serializer-only) so `selfmaint profile --baseline` can load
//!   artifacts written by older builds.
//! * [`profile`] — the engine self-profiling harness behind
//!   `selfmaint profile`: drives one scenario cell per seed with the
//!   `obs::prof` engine profiler on, merges the per-seed `prof/…`
//!   registries, and derives events/sec, per-subsystem wall shares,
//!   queue high-water, and peak RSS into a [`BenchReport`].
//! * [`twin`](mod@twin) — the twin-planner harness behind
//!   `selfmaint plan`: ladder + twin arms per seed, planner accounting
//!   (decisions/forks/commits, availability delta in ppb) in the
//!   deterministic subtree and decision throughput/latency from the
//!   `prof/twin` wall spans in the timing subtree (`BENCH_twin.json`).
//! * [`autonomic`](mod@autonomic) — the MAPE-K loop harness behind
//!   `selfmaint tune`: static + autonomic arms per seed on the E16
//!   drift cell, loop accounting and the availability delta (ppb) in
//!   the deterministic subtree, adaptation decisions/sec and mean tick
//!   latency from the `prof/autonomic` wall spans in the timing
//!   subtree (`BENCH_autonomic.json`).
//! * Two Criterion bench targets: `benches/experiments.rs` (one group
//!   per experiment E1–E11, CI-sized parameters of the exact runners
//!   that regenerate EXPERIMENTS.md) and `benches/kernel.rs`
//!   (event-queue throughput, topology generation, BFS/ECMP routing,
//!   and a full end-to-end scenario day).
//!
//! The experiment entry points are re-exported so benches and the
//! `experiments` binary stay in lockstep.

#![forbid(unsafe_code)]

pub mod autonomic;
pub mod profile;
pub mod report;
pub mod twin;

pub use autonomic::{run_autonomic_bench, AutonomicBenchOutcome, AutonomicBenchParams};
pub use dcmaint_scenarios::experiments;
pub use profile::{peak_rss_bytes, run_profile, ProfileOutcome, ProfileParams};
pub use report::{parse_json, BenchReport, SCHEMA_VERSION};
pub use twin::{run_twin_bench, TwinBenchOutcome, TwinBenchParams};
