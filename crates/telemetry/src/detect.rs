//! Failure detectors: from counters to alerts.
//!
//! Three detectors mirror how fleets actually catch the §1 failure
//! classes:
//!
//! * [`Detector::evaluate`] hard-down — the link reports no light/carrier
//!   (loss ≈ 1) for one sample: immediate, high-severity alert.
//! * flap detection — ≥ `flap_threshold` transitions within the history
//!   window. Hysteresis (a cleared flag that re-arms only after a quiet
//!   period) prevents one flap episode from spawning a ticket storm —
//!   the false-positive amplification §2 wants to manage.
//! * gray detection — loss EWMA above `gray_loss` while the link still
//!   carries traffic: the "Achilles' heel" gray failure.

use dcmaint_dcnet::LinkId;
use dcmaint_des::{SimDuration, SimTime};

use crate::counters::LinkCounters;

/// What kind of misbehavior an alert reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Link hard down.
    LinkDown,
    /// Link flapping (repeated transitions).
    Flapping,
    /// Elevated steady loss while up.
    GrayLoss,
}

impl AlertKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::LinkDown => "down",
            AlertKind::Flapping => "flap",
            AlertKind::GrayLoss => "gray",
        }
    }
}

/// An alert raised against a link.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Affected link.
    pub link: LinkId,
    /// Failure class detected.
    pub kind: AlertKind,
    /// When raised.
    pub at: SimTime,
    /// Severity in `[0, 1]` (drives ticket priority).
    pub severity: f64,
}

/// Per-link detector state machine with hysteresis.
#[derive(Debug, Clone)]
pub struct Detector {
    /// Loss EWMA above which a gray alert fires.
    pub gray_loss: f64,
    /// Transition count within the counter window that constitutes a flap.
    pub flap_threshold: usize,
    /// Quiet period before a cleared condition may alert again.
    pub rearm_after: SimDuration,
    armed: bool,
    last_fire: Option<SimTime>,
}

impl Default for Detector {
    fn default() -> Self {
        Detector {
            gray_loss: 5e-4,
            flap_threshold: 4,
            rearm_after: SimDuration::from_mins(30),
            armed: true,
            last_fire: None,
        }
    }
}

impl Detector {
    /// Evaluate the detectors against current counters and instantaneous
    /// loss; returns at most one alert (highest-severity condition wins).
    pub fn evaluate(
        &mut self,
        link: LinkId,
        counters: &mut LinkCounters,
        instant_loss: f64,
        now: SimTime,
    ) -> Option<Alert> {
        if !self.armed {
            // Re-arm after a quiet period. Purely time-based: if the same
            // episode is still ongoing after the hold-off, firing again is
            // correct (it is a re-escalation, not a storm).
            let quiet = self
                .last_fire
                .is_none_or(|t| now.since(t) >= self.rearm_after);
            if quiet {
                self.armed = true;
            } else {
                return None;
            }
        }
        let alert = if instant_loss >= 0.999 {
            Some(Alert {
                link,
                kind: AlertKind::LinkDown,
                at: now,
                severity: 1.0,
            })
        } else if counters.recent_transitions(now) >= self.flap_threshold {
            Some(Alert {
                link,
                kind: AlertKind::Flapping,
                at: now,
                severity: 0.7,
            })
        } else if counters.loss_ewma() >= self.gray_loss {
            let sev = 0.3 + 0.4 * (counters.loss_ewma().min(0.05) / 0.05);
            Some(Alert {
                link,
                kind: AlertKind::GrayLoss,
                at: now,
                severity: sev,
            })
        } else {
            None
        };
        if alert.is_some() {
            self.armed = false;
            self.last_fire = Some(now);
        }
        alert
    }

    /// Append this detector's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.f64(self.gray_loss);
        enc.usize(self.flap_threshold);
        enc.u64(self.rearm_after.as_micros());
        enc.bool(self.armed);
        match self.last_fire {
            Some(t) => {
                enc.bool(true);
                enc.u64(t.as_micros());
            }
            None => enc.bool(false),
        }
    }

    /// Inverse of [`Detector::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(Detector {
            gray_loss: dec.f64()?,
            flap_threshold: dec.usize()?,
            rearm_after: SimDuration::from_micros(dec.u64()?),
            armed: dec.bool()?,
            last_fire: if dec.bool()? {
                Some(SimTime::from_micros(dec.u64()?))
            } else {
                None
            },
        })
    }

    /// Whether the detector may fire.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Force re-arm (after maintenance verified the link healthy).
    pub fn rearm(&mut self) {
        self.armed = true;
        self.last_fire = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn setup() -> (Detector, LinkCounters) {
        (
            Detector::default(),
            LinkCounters::new(SimDuration::from_mins(30)),
        )
    }

    #[test]
    fn down_fires_immediately() {
        let (mut d, mut c) = setup();
        let a = d.evaluate(LinkId(0), &mut c, 1.0, t(1)).unwrap();
        assert_eq!(a.kind, AlertKind::LinkDown);
        assert_eq!(a.severity, 1.0);
    }

    #[test]
    fn gray_needs_sustained_loss() {
        let (mut d, mut c) = setup();
        // One sample is not enough to push EWMA over threshold at alpha=0.3
        // only if loss small; feed sustained 1% loss.
        c.record_sample(t(0), 0.01);
        assert!(d.evaluate(LinkId(0), &mut c, 0.01, t(0)).is_some());
    }

    #[test]
    fn clean_link_never_alerts() {
        let (mut d, mut c) = setup();
        for i in 0..100 {
            c.record_sample(t(i), 0.0);
            assert!(d.evaluate(LinkId(0), &mut c, 0.0, t(i)).is_none());
        }
    }

    #[test]
    fn flap_detector_counts_transitions() {
        let (mut d, mut c) = setup();
        for i in 0..3 {
            c.record_transition(t(i * 10));
        }
        assert!(d.evaluate(LinkId(0), &mut c, 0.0, t(30)).is_none());
        c.record_transition(t(40));
        let a = d.evaluate(LinkId(0), &mut c, 0.0, t(40)).unwrap();
        assert_eq!(a.kind, AlertKind::Flapping);
    }

    #[test]
    fn hysteresis_blocks_ticket_storm() {
        let (mut d, mut c) = setup();
        for i in 0..6 {
            c.record_transition(t(i));
        }
        assert!(d.evaluate(LinkId(0), &mut c, 0.0, t(6)).is_some());
        // Continued flapping does NOT fire again immediately.
        for i in 7..20 {
            c.record_transition(t(i));
            assert!(d.evaluate(LinkId(0), &mut c, 0.0, t(i)).is_none());
        }
    }

    #[test]
    fn rearms_after_quiet_period() {
        let (mut d, mut c) = setup();
        c.record_sample(t(0), 0.01);
        assert!(d.evaluate(LinkId(0), &mut c, 0.01, t(0)).is_some());
        assert!(!d.is_armed());
        // 31 minutes later, telemetry clean again (e.g. self-healed, then
        // a new incident). EWMA decayed via clean samples.
        for i in 1..60 {
            c.record_sample(t(i * 40), 0.0);
        }
        // Quiet + clean → re-armed; a new hard-down fires.
        let a = d.evaluate(LinkId(0), &mut c, 1.0, t(40 * 60));
        assert!(a.is_some());
    }

    #[test]
    fn manual_rearm_after_maintenance() {
        let (mut d, mut c) = setup();
        c.record_sample(t(0), 1.0);
        assert!(d.evaluate(LinkId(0), &mut c, 1.0, t(0)).is_some());
        d.rearm();
        assert!(d.is_armed());
        assert!(d.evaluate(LinkId(0), &mut c, 1.0, t(1)).is_some());
    }

    #[test]
    fn down_outranks_flap() {
        let (mut d, mut c) = setup();
        for i in 0..10 {
            c.record_transition(t(i));
        }
        let a = d.evaluate(LinkId(0), &mut c, 1.0, t(10)).unwrap();
        assert_eq!(a.kind, AlertKind::LinkDown);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        // The hysteresis invariant §2 motivates: however a single flap
        // episode is shaped — any number of transitions (at or past the
        // flap threshold), any spacing — it produces exactly ONE alert,
        // never a ticket storm. The episode is kept shorter than the
        // 30-minute re-arm hold-off so the detector cannot legitimately
        // re-escalate mid-episode (40 transitions × ≤30 s ≤ 20 min).
        #[test]
        fn one_flap_episode_yields_exactly_one_alert(
            gaps in proptest::prop::collection::vec(1u64..31, 4..41),
        ) {
            let (mut d, mut c) = setup();
            let mut now_s = 0u64;
            let mut alerts = 0usize;
            let mut first_at = None;
            for (i, gap) in gaps.iter().enumerate() {
                now_s += gap;
                c.record_transition(t(now_s));
                if let Some(a) = d.evaluate(LinkId(0), &mut c, 0.0, t(now_s)) {
                    proptest::prop_assert_eq!(a.kind, AlertKind::Flapping);
                    alerts += 1;
                    first_at = first_at.or(Some(i));
                }
            }
            proptest::prop_assert_eq!(alerts, 1);
            // It fired the moment the threshold was crossed (4th
            // transition, index 3) — not late, not early.
            proptest::prop_assert_eq!(first_at, Some(3));
            proptest::prop_assert!(!d.is_armed());
        }
    }

    #[test]
    fn gray_severity_scales_with_loss() {
        let (mut d1, mut c1) = setup();
        let (mut d2, mut c2) = setup();
        for i in 0..20 {
            c1.record_sample(t(i), 0.001);
            c2.record_sample(t(i), 0.04);
        }
        let a1 = d1.evaluate(LinkId(0), &mut c1, 0.001, t(20)).unwrap();
        let a2 = d2.evaluate(LinkId(1), &mut c2, 0.04, t(20)).unwrap();
        assert!(a2.severity > a1.severity);
    }
}
