//! Feature extraction for predictive maintenance.
//!
//! §4: "new opportunities to use machine learning techniques to predict
//! failures and detect related network behavior patterns, potentially
//! leveraging data collected by robotic systems". The online predictor in
//! `maintctl` consumes a fixed-width feature vector per link; this module
//! defines it in one place so training and scoring cannot skew.
//!
//! Features are normalized to roughly `[0, 1]` so a logistic model with
//! small weights behaves; names are exported for report tables.

use dcmaint_dcnet::LinkId;
use dcmaint_dcnet::Topology;
use dcmaint_des::SimTime;

use crate::counters::LinkCounters;

/// Number of features per link.
pub const FEATURE_DIM: usize = 7;

/// Feature names, index-aligned with [`extract`].
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "loss_ewma",
    "recent_flaps",
    "errored_frac",
    "incidents_lifetime",
    "days_since_maint",
    "is_separable_optic",
    "mpo_core_count",
];

/// Extract the feature vector for one link at time `now`.
pub fn extract(
    topo: &Topology,
    link: LinkId,
    counters: &mut LinkCounters,
    now: SimTime,
) -> [f64; FEATURE_DIM] {
    let medium = topo.link(link).cable.medium;
    [
        // Smoothed loss, saturating at 5% → 1.0.
        (counters.loss_ewma() / 0.05).min(1.0),
        // Flap edges in the retention window, saturating at 10.
        (counters.recent_transitions(now) as f64 / 10.0).min(1.0),
        counters.errored_fraction(),
        // Lifetime incidents, saturating at 5 (repeat offenders matter).
        (counters.incidents_total() as f64 / 5.0).min(1.0),
        // Staleness of maintenance, saturating at 90 days.
        (counters.since_maintenance(now).as_days_f64() / 90.0).min(1.0),
        if medium.is_separable() { 1.0 } else { 0.0 },
        f64::from(medium.cores()) / 16.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::CableMedium;
    use dcmaint_dcnet::DiversityProfile;
    use dcmaint_des::{SimDuration, SimRng};

    fn topo() -> Topology {
        leaf_spine(
            2,
            2,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn dimensions_line_up() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        let topo = topo();
        let mut c = LinkCounters::new(SimDuration::from_mins(30));
        let f = extract(&topo, LinkId(0), &mut c, t(0));
        assert_eq!(f.len(), FEATURE_DIM);
    }

    #[test]
    fn features_bounded() {
        let topo = topo();
        let mut c = LinkCounters::new(SimDuration::from_mins(30));
        for i in 0..50 {
            c.record_sample(t(i), 0.5);
            c.record_transition(t(i));
            c.record_incident();
        }
        let f = extract(&topo, LinkId(0), &mut c, t(365 * 24 * 3600));
        for (i, &x) in f.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&x),
                "feature {} = {x} out of range",
                FEATURE_NAMES[i]
            );
        }
    }

    #[test]
    fn noisy_link_scores_higher_features() {
        let topo = topo();
        let mut clean = LinkCounters::new(SimDuration::from_mins(30));
        let mut noisy = LinkCounters::new(SimDuration::from_mins(30));
        for i in 0..20 {
            clean.record_sample(t(i), 0.0);
            noisy.record_sample(t(i), 0.02);
            if i % 3 == 0 {
                noisy.record_transition(t(i));
            }
        }
        noisy.record_incident();
        let fc = extract(&topo, LinkId(0), &mut clean, t(20));
        let fn_ = extract(&topo, LinkId(0), &mut noisy, t(20));
        assert!(fn_[0] > fc[0]);
        assert!(fn_[1] > fc[1]);
        assert!(fn_[3] > fc[3]);
    }

    #[test]
    fn medium_features_distinguish_links() {
        let topo = topo();
        // Find a DAC (server) link and an MPO/optical (uplink) link.
        let dac = topo
            .link_ids()
            .find(|&l| topo.link(l).cable.medium == CableMedium::Dac);
        let sep = topo
            .link_ids()
            .find(|&l| topo.link(l).cable.medium.is_separable());
        let mut c = LinkCounters::new(SimDuration::from_mins(30));
        if let Some(l) = dac {
            let f = extract(&topo, l, &mut c, t(0));
            assert_eq!(f[5], 0.0);
            assert_eq!(f[6], 0.0);
        }
        if let Some(l) = sep {
            let f = extract(&topo, l, &mut c, t(0));
            assert_eq!(f[5], 1.0);
            assert!(f[6] > 0.0);
        }
    }
}
