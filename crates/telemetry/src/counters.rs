//! Per-link telemetry counters.
//!
//! "Today's services are already good at detecting hardware failures"
//! (§2) — because switches export counters. [`LinkCounters`] is the
//! per-link slice of that export: periodic loss-rate samples (derived
//! from CRC/FEC counters in real fleets), link up/down transition
//! timestamps, and EWMA smoothing. Detectors read these; the predictive
//! scorer reads the longer-horizon aggregates.

use std::collections::VecDeque;

use dcmaint_des::{SimDuration, SimTime};

/// Rolling telemetry for one link.
#[derive(Debug, Clone)]
pub struct LinkCounters {
    /// EWMA of sampled loss rate.
    loss_ewma: f64,
    /// EWMA smoothing factor per sample.
    alpha: f64,
    /// Recent up/down-ish transitions (flap edges), timestamped.
    transitions: VecDeque<SimTime>,
    /// How long transition history is retained.
    transition_window: SimDuration,
    /// Cumulative transition count (never trimmed).
    transitions_total: u64,
    /// Seconds observed with loss above the errored threshold.
    errored_samples: u64,
    /// Total samples observed.
    samples: u64,
    /// Last sample time.
    last_sample: SimTime,
    /// Lifetime incident count (maintained by the pipeline, used as a
    /// predictive feature).
    incidents_total: u64,
    /// Time of last completed maintenance on this link.
    last_maintenance: Option<SimTime>,
}

impl LinkCounters {
    /// Loss rate above which a sample counts as an errored interval.
    pub const ERRORED_THRESHOLD: f64 = 1e-4;

    /// Fresh counters with the given flap-history window.
    pub fn new(transition_window: SimDuration) -> Self {
        LinkCounters {
            loss_ewma: 0.0,
            alpha: 0.3,
            transitions: VecDeque::new(),
            transition_window,
            transitions_total: 0,
            errored_samples: 0,
            samples: 0,
            last_sample: SimTime::ZERO,
            incidents_total: 0,
            last_maintenance: None,
        }
    }

    /// Record one periodic loss-rate sample.
    pub fn record_sample(&mut self, t: SimTime, loss: f64) {
        let loss = loss.clamp(0.0, 1.0);
        self.loss_ewma = self.alpha * loss + (1.0 - self.alpha) * self.loss_ewma;
        self.samples += 1;
        if loss > Self::ERRORED_THRESHOLD {
            self.errored_samples += 1;
        }
        self.last_sample = t;
    }

    /// Record a link state transition (up↔down edge or flap phase edge).
    pub fn record_transition(&mut self, t: SimTime) {
        self.transitions.push_back(t);
        self.transitions_total += 1;
        self.trim(t);
    }

    /// Record that an incident was opened against this link.
    pub fn record_incident(&mut self) {
        self.incidents_total += 1;
    }

    /// Record completed maintenance. Short-horizon signals reset — the
    /// hardware state they described was just serviced — so
    /// [`LinkCounters::errored_fraction`] reads "errored fraction since
    /// last maintenance", the discriminative input of the predictive
    /// scorer.
    pub fn record_maintenance(&mut self, t: SimTime) {
        self.last_maintenance = Some(t);
        self.loss_ewma = 0.0;
        self.transitions.clear();
        self.errored_samples = 0;
        self.samples = 0;
    }

    fn trim(&mut self, now: SimTime) {
        while let Some(&front) = self.transitions.front() {
            if now.since(front) > self.transition_window {
                self.transitions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Smoothed loss rate.
    pub fn loss_ewma(&self) -> f64 {
        self.loss_ewma
    }

    /// Transitions within the retention window ending at `now`.
    pub fn recent_transitions(&mut self, now: SimTime) -> usize {
        self.trim(now);
        self.transitions.len()
    }

    /// Lifetime transition count.
    pub fn transitions_total(&self) -> u64 {
        self.transitions_total
    }

    /// Lifetime incident count.
    pub fn incidents_total(&self) -> u64 {
        self.incidents_total
    }

    /// Fraction of samples that were errored.
    pub fn errored_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.errored_samples as f64 / self.samples as f64
        }
    }

    /// Append this link's counter state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.f64(self.loss_ewma);
        enc.f64(self.alpha);
        enc.usize(self.transitions.len());
        for &t in &self.transitions {
            enc.u64(t.as_micros());
        }
        enc.u64(self.transition_window.as_micros());
        enc.u64(self.transitions_total);
        enc.u64(self.errored_samples);
        enc.u64(self.samples);
        enc.u64(self.last_sample.as_micros());
        enc.u64(self.incidents_total);
        match self.last_maintenance {
            Some(t) => {
                enc.bool(true);
                enc.u64(t.as_micros());
            }
            None => enc.bool(false),
        }
    }

    /// Inverse of [`LinkCounters::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let loss_ewma = dec.f64()?;
        let alpha = dec.f64()?;
        let n = dec.usize()?;
        let mut transitions = VecDeque::with_capacity(n.min(4096));
        for _ in 0..n {
            transitions.push_back(SimTime::from_micros(dec.u64()?));
        }
        let transition_window = SimDuration::from_micros(dec.u64()?);
        let transitions_total = dec.u64()?;
        let errored_samples = dec.u64()?;
        let samples = dec.u64()?;
        let last_sample = SimTime::from_micros(dec.u64()?);
        let incidents_total = dec.u64()?;
        let last_maintenance = if dec.bool()? {
            Some(SimTime::from_micros(dec.u64()?))
        } else {
            None
        };
        Ok(LinkCounters {
            loss_ewma,
            alpha,
            transitions,
            transition_window,
            transitions_total,
            errored_samples,
            samples,
            last_sample,
            incidents_total,
            last_maintenance,
        })
    }

    /// Time since last maintenance, or since time zero if never.
    pub fn since_maintenance(&self, now: SimTime) -> SimDuration {
        match self.last_maintenance {
            Some(t) => now.since(t),
            None => now.since(SimTime::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn ewma_converges_to_input() {
        let mut c = LinkCounters::new(SimDuration::from_hours(1));
        for i in 0..50 {
            c.record_sample(t(i), 0.02);
        }
        assert!((c.loss_ewma() - 0.02).abs() < 1e-6);
    }

    #[test]
    fn ewma_decays_after_recovery() {
        let mut c = LinkCounters::new(SimDuration::from_hours(1));
        for i in 0..10 {
            c.record_sample(t(i), 0.05);
        }
        let peak = c.loss_ewma();
        for i in 10..40 {
            c.record_sample(t(i), 0.0);
        }
        assert!(c.loss_ewma() < peak / 10.0);
    }

    #[test]
    fn transition_window_trims() {
        let mut c = LinkCounters::new(SimDuration::from_secs(100));
        c.record_transition(t(0));
        c.record_transition(t(50));
        c.record_transition(t(120));
        assert_eq!(c.recent_transitions(t(120)), 2); // t=0 expired
        assert_eq!(c.transitions_total(), 3);
        assert_eq!(c.recent_transitions(t(500)), 0);
        assert_eq!(c.transitions_total(), 3);
    }

    #[test]
    fn errored_fraction_counts_threshold() {
        let mut c = LinkCounters::new(SimDuration::from_hours(1));
        c.record_sample(t(0), 0.0);
        c.record_sample(t(1), 1e-5); // below threshold
        c.record_sample(t(2), 0.01);
        c.record_sample(t(3), 0.02);
        assert!((c.errored_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn maintenance_resets_short_horizon() {
        let mut c = LinkCounters::new(SimDuration::from_hours(1));
        c.record_sample(t(0), 0.1);
        c.record_transition(t(1));
        c.record_incident();
        c.record_maintenance(t(10));
        assert_eq!(c.loss_ewma(), 0.0);
        assert_eq!(c.recent_transitions(t(10)), 0);
        assert_eq!(c.errored_fraction(), 0.0, "errored counters reset too");
        // Lifetime aggregates survive.
        assert_eq!(c.incidents_total(), 1);
        assert_eq!(c.transitions_total(), 1);
        assert_eq!(c.since_maintenance(t(70)), SimDuration::from_secs(60));
    }

    #[test]
    fn since_maintenance_defaults_to_age() {
        let c = LinkCounters::new(SimDuration::from_hours(1));
        assert_eq!(c.since_maintenance(t(500)), SimDuration::from_secs(500));
    }

    #[test]
    fn sample_clamps_loss() {
        let mut c = LinkCounters::new(SimDuration::from_hours(1));
        c.record_sample(t(0), 42.0);
        assert!(c.loss_ewma() <= 1.0);
    }
}
