//! The telemetry plane: one counters + detector pair per link.
//!
//! Scenarios drive it with two calls: [`TelemetryPlane::on_transition`]
//! whenever the fault model changes a link's health, and
//! [`TelemetryPlane::sample`] on the periodic polling tick (switches
//! export counters every few seconds; we poll at a configurable period).
//! `sample` returns the alerts that fired this tick; the control plane
//! turns them into maintenance requests.

use dcmaint_dcnet::{LinkId, NetState, Topology};
use dcmaint_des::{SimDuration, SimTime};

use crate::counters::LinkCounters;
use crate::detect::{Alert, Detector};

/// Fleet-wide telemetry state.
#[derive(Debug)]
pub struct TelemetryPlane {
    counters: Vec<LinkCounters>,
    detectors: Vec<Detector>,
    /// Polling period (drives EWMA timescale interpretation).
    pub poll_period: SimDuration,
}

impl TelemetryPlane {
    /// New plane for `topo` with default detectors and a 15 s poll.
    pub fn new(topo: &Topology) -> Self {
        Self::with_config(topo, SimDuration::from_secs(15), Detector::default())
    }

    /// New plane with explicit poll period and detector template.
    pub fn with_config(topo: &Topology, poll_period: SimDuration, detector: Detector) -> Self {
        let n = topo.link_count();
        TelemetryPlane {
            counters: (0..n)
                .map(|_| LinkCounters::new(SimDuration::from_mins(30)))
                .collect(),
            detectors: vec![detector; n],
            poll_period,
        }
    }

    /// Counters for one link.
    pub fn counters(&mut self, l: LinkId) -> &mut LinkCounters {
        &mut self.counters[l.index()]
    }

    /// Immutable counters access.
    pub fn counters_ref(&self, l: LinkId) -> &LinkCounters {
        &self.counters[l.index()]
    }

    /// Notify of a health transition on a link (flap edge, down, up).
    pub fn on_transition(&mut self, l: LinkId, now: SimTime) {
        self.counters[l.index()].record_transition(now);
    }

    /// Notify that an incident was opened (feature bookkeeping).
    pub fn on_incident(&mut self, l: LinkId) {
        self.counters[l.index()].record_incident();
    }

    /// Notify that maintenance completed and verified on a link.
    pub fn on_maintenance(&mut self, l: LinkId, now: SimTime) {
        self.counters[l.index()].record_maintenance(now);
        self.detectors[l.index()].rearm();
    }

    /// Append the whole plane's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.u64(self.poll_period.as_micros());
        enc.usize(self.counters.len());
        for c in &self.counters {
            c.save(enc);
        }
        for d in &self.detectors {
            d.save(enc);
        }
    }

    /// Inverse of [`TelemetryPlane::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let poll_period = SimDuration::from_micros(dec.u64()?);
        let n = dec.usize()?;
        let mut counters = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            counters.push(LinkCounters::load(dec)?);
        }
        let mut detectors = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            detectors.push(Detector::load(dec)?);
        }
        Ok(TelemetryPlane {
            counters,
            detectors,
            poll_period,
        })
    }

    /// Poll every link once: record loss samples from the live state and
    /// evaluate detectors. Returns alerts raised this tick.
    pub fn sample(&mut self, topo: &Topology, state: &NetState, now: SimTime) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for l in topo.link_ids() {
            let loss = state.link(l).loss_rate;
            let c = &mut self.counters[l.index()];
            c.record_sample(now, loss);
            if let Some(a) = self.detectors[l.index()].evaluate(l, c, loss, now) {
                alerts.push(a);
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::AlertKind;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::{DiversityProfile, LinkHealth};
    use dcmaint_des::SimRng;

    fn setup() -> (Topology, NetState, TelemetryPlane) {
        let t = leaf_spine(
            2,
            2,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        );
        let s = NetState::new(&t);
        let p = TelemetryPlane::new(&t);
        (t, s, p)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn healthy_fabric_is_silent() {
        let (t, s, mut p) = setup();
        for i in 0..20 {
            assert!(p.sample(&t, &s, at(i * 15)).is_empty());
        }
    }

    #[test]
    fn down_link_alerts_once() {
        let (t, mut s, mut p) = setup();
        s.set_health(LinkId(0), LinkHealth::Down, 1.0);
        let a = p.sample(&t, &s, at(0));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AlertKind::LinkDown);
        assert_eq!(a[0].link, LinkId(0));
        // Hysteresis: next tick silent.
        assert!(p.sample(&t, &s, at(15)).is_empty());
    }

    #[test]
    fn gray_loss_detected_after_a_few_samples() {
        let (t, mut s, mut p) = setup();
        s.set_health(LinkId(1), LinkHealth::Degraded, 0.01);
        let mut fired = false;
        for i in 0..10 {
            if !p.sample(&t, &s, at(i * 15)).is_empty() {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn maintenance_rearms_and_clears() {
        let (t, mut s, mut p) = setup();
        s.set_health(LinkId(0), LinkHealth::Down, 1.0);
        assert_eq!(p.sample(&t, &s, at(0)).len(), 1);
        // Repair completes; link healthy; detectors re-armed.
        s.set_health(LinkId(0), LinkHealth::Up, 0.0);
        p.on_maintenance(LinkId(0), at(300));
        // Fails again later — alert fires again immediately.
        s.set_health(LinkId(0), LinkHealth::Down, 1.0);
        assert_eq!(p.sample(&t, &s, at(600)).len(), 1);
    }

    #[test]
    fn flap_transitions_surface_as_flap_alert() {
        let (t, mut s, mut p) = setup();
        // Simulate Gilbert-Elliott edges arriving via on_transition; loss
        // stays low in Good phase when sampled.
        s.set_health(LinkId(2), LinkHealth::Flapping, 0.0001);
        for i in 0..5 {
            p.on_transition(LinkId(2), at(i * 60));
        }
        let alerts = p.sample(&t, &s, at(301));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Flapping);
    }

    #[test]
    fn incident_bookkeeping_reaches_counters() {
        let (_t, _s, mut p) = setup();
        p.on_incident(LinkId(3));
        p.on_incident(LinkId(3));
        assert_eq!(p.counters(LinkId(3)).incidents_total(), 2);
    }
}
