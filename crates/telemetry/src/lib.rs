//! # dcmaint-telemetry — the monitoring plane
//!
//! "Today's services are already good at detecting hardware failures"
//! (§2); this crate is that capability for the simulated fabric:
//!
//! * [`counters`] — per-link loss EWMA, flap-edge history, errored
//!   seconds, lifetime incident counts;
//! * [`detect`] — hard-down / flapping / gray-loss detectors with
//!   hysteresis (one alert per episode, not a ticket storm);
//! * [`plane`] — the fleet-wide [`TelemetryPlane`] the scenario polls;
//! * [`features`] — the fixed feature vector consumed by the §4
//!   predictive-maintenance scorer in `maintctl`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod detect;
pub mod features;
pub mod plane;

pub use counters::LinkCounters;
pub use detect::{Alert, AlertKind, Detector};
pub use features::{extract, FEATURE_DIM, FEATURE_NAMES};
pub use plane::TelemetryPlane;
