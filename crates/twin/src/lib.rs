//! # dcmaint-twin — digital-twin forking for model-predictive repair planning
//!
//! The paper's closing provocation is a maintenance plane that does not
//! merely *react* to its own state but *rehearses* its options: before
//! committing a repair decision, fork the whole simulated datacenter
//! into short-lived digital twins, play each candidate forward a few
//! virtual days, and commit whichever branch the scored futures prefer.
//! This crate is the decision half of that loop — candidate enumeration,
//! branch-score bookkeeping, and the deterministic argmax — kept free of
//! any engine dependency so the scenario crate can drive it without a
//! cycle.
//!
//! The execution half (in-memory engine forks on the sweep pool) lives
//! in `dcmaint-scenarios`; see DESIGN.md §3.14 for the fork-tree
//! architecture and the determinism argument. The short version of that
//! argument:
//!
//! * The parent consumes **zero RNG draws** while planning — candidates
//!   are enumerated from inspectable state only.
//! * Branch RNG is fully derived: the foresight sample replays the
//!   parent's own tape (deterministic state), and hedge samples
//!   re-derive their streams under `root(seed)/twin/<decision-id>`, so
//!   all candidates of one sample face *common random numbers* (the
//!   classic variance-reduction trick) and two same-seed runs plan
//!   identically.
//! * Branch outcomes merge in candidate order via the sweep pool's
//!   canonical merge, so `--jobs 1` ≡ `--jobs N` byte-for-byte.
//! * Ties (and an empty/failed branch set) fall back to candidate 0 —
//!   the pure degradation-ladder branch — so twin guidance can only
//!   *deviate* from the ladder when a rehearsed future strictly wins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcmaint_des::{SimDuration, SimTime};
use dcmaint_faults::RepairAction;

/// Controller policy for repair decisions: the classic degradation
/// ladder, or the ladder wrapped in model-predictive twin planning.
#[derive(Debug, Clone)]
pub enum TwinPolicy {
    /// Plain degradation-ladder decisions (the pre-twin engine).
    Ladder,
    /// Fork-and-score every repair decision point.
    TwinGuided(TwinConfig),
}

impl TwinPolicy {
    /// Whether twin planning is active.
    pub fn is_twin(&self) -> bool {
        matches!(self, TwinPolicy::TwinGuided(_))
    }
}

/// Tuning for twin-guided planning.
#[derive(Debug, Clone)]
pub struct TwinConfig {
    /// Virtual lookahead horizon per branch.
    pub horizon: SimDuration,
    /// Worker threads for branch fan-out (results are merged in
    /// canonical candidate order, so this never affects output).
    pub jobs: usize,
    /// Maximum branches per decision (candidate list is truncated).
    pub max_branches: usize,
    /// Sampled futures per candidate. Sample 0 is always the *foresight*
    /// world — the branch replays the parent's RNG tape, rehearsing the
    /// future this run will actually live (perfect-model MPC). Samples
    /// beyond the first reseed under `twin/<decision>/<sample>` and are
    /// averaged in: alternative futures that hedge the plan against
    /// tape-specific luck, at the price of diluting foresight. All
    /// candidates share each sample's RNG namespace (common random
    /// numbers), so scores differ through the decision, not the draw.
    pub samples: usize,
    /// Also rehearse handing the action to a human when the ladder
    /// would have booked a robot.
    pub explore_executors: bool,
    /// Also rehearse deferring routine (P2) work to the next diurnal
    /// utilization trough.
    pub explore_defer: bool,
    /// Minimum score advantage over the ladder branch before a deviation
    /// is committed. Branch scores are noisy samples of one simulated
    /// future; the argmax of many noisy branches is biased upward
    /// (winner's curse), so committing every nominal winner trades away
    /// realized availability. Deviations below this margin fall back to
    /// the ladder.
    pub commit_margin: f64,
    /// Branch scoring weights.
    pub weights: ScoreWeights,
}

impl Default for TwinConfig {
    fn default() -> Self {
        TwinConfig {
            horizon: SimDuration::from_days(2),
            jobs: 1,
            max_branches: 8,
            samples: 1,
            explore_executors: true,
            explore_defer: true,
            commit_margin: 1e-4,
            weights: ScoreWeights::default(),
        }
    }
}

/// Weights for [`score`]. Availability dominates by construction: the
/// cost and open-ticket terms are tiebreakers scaled far below one
/// availability ULP-of-interest, matching the acceptance criterion
/// "twin ≥ ladder on availability".
#[derive(Debug, Clone)]
pub struct ScoreWeights {
    /// Reward per unit predicted availability.
    pub availability: f64,
    /// Penalty per predicted cost dollar (tiny: tiebreak only).
    pub cost: f64,
    /// Penalty per ticket still open at the branch horizon.
    pub open_tickets: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        ScoreWeights {
            availability: 1.0,
            cost: 1e-9,
            open_tickets: 1e-6,
        }
    }
}

/// One candidate decision to rehearse. Candidate 0 is always
/// [`Candidate::ladder`] — the do-what-the-ladder-does branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Override the controller's action choice (`None`: let the ladder
    /// decide inside the branch).
    pub action: Option<RepairAction>,
    /// Force human execution regardless of the automation level.
    pub human: bool,
    /// Defer dispatch to this absolute sim time (act-now when `None`).
    pub defer_until: Option<SimTime>,
}

impl Candidate {
    /// The pure degradation-ladder branch (no overrides).
    pub fn ladder() -> Self {
        Candidate {
            action: None,
            human: false,
            defer_until: None,
        }
    }
}

/// The committed form of a winning candidate, consumed by the engine's
/// dispatch path. Identical content to [`Candidate`]; a separate type so
/// the engine's per-ticket map documents "this was committed", not
/// "this is being explored".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwinPlan {
    /// Action override (`None`: ladder decides).
    pub action: Option<RepairAction>,
    /// Force human execution.
    pub human: bool,
    /// Reschedule the dispatch to this time before acting.
    pub defer_until: Option<SimTime>,
}

impl From<&Candidate> for TwinPlan {
    fn from(c: &Candidate) -> Self {
        TwinPlan {
            action: c.action,
            human: c.human,
            defer_until: c.defer_until,
        }
    }
}

/// What one simulated branch predicted at its horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchOutcome {
    /// Predicted fleet availability (cumulative, shared prefix included
    /// — branches differ only in their post-fork suffix, so cumulative
    /// comparisons rank identically to suffix-only ones).
    pub availability: f64,
    /// Predicted total operating cost at the branch horizon.
    pub cost: f64,
    /// Tickets still open (board + in-flight) at the branch horizon
    /// (fractional after cross-sample averaging).
    pub open_tickets: f64,
    /// Incidents observed by the branch horizon (risk proxy).
    pub incidents: u64,
}

/// Scalar score of one branch outcome (higher is better).
pub fn score(o: &BranchOutcome, w: &ScoreWeights) -> f64 {
    w.availability * o.availability - w.cost * o.cost - w.open_tickets * o.open_tickets
}

/// Mean outcome over one candidate's sampled futures. Returns `None`
/// when any sample failed: a candidate whose rehearsal crashed in *any*
/// world must not win the argmax.
pub fn mean(samples: &[Option<BranchOutcome>]) -> Option<BranchOutcome> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let mut acc = BranchOutcome {
        availability: 0.0,
        cost: 0.0,
        open_tickets: 0.0,
        incidents: 0,
    };
    for s in samples {
        let s = s.as_ref()?;
        acc.availability += s.availability;
        acc.cost += s.cost;
        acc.open_tickets += s.open_tickets;
        acc.incidents += s.incidents;
    }
    Some(BranchOutcome {
        availability: acc.availability / n,
        cost: acc.cost / n,
        open_tickets: acc.open_tickets / n,
        incidents: (acc.incidents as f64 / n).round() as u64,
    })
}

/// Argmax over branch outcomes, biased toward candidate 0 (the ladder
/// branch): a deviation wins only if its score beats the ladder's by
/// more than `margin`, and exact ties among deviations break toward the
/// lowest index. Failed branches are `None` slots and never win. NaN
/// scores lose to everything (a poisoned branch must not hijack the
/// real engine).
pub fn choose(outcomes: &[Option<BranchOutcome>], w: &ScoreWeights, margin: f64) -> usize {
    let baseline = outcomes
        .first()
        .and_then(|o| o.as_ref())
        .map(|o| score(o, w))
        .filter(|s| !s.is_nan())
        .unwrap_or(f64::NEG_INFINITY);
    let mut best = 0usize;
    let mut best_score = baseline;
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        let Some(o) = o else { continue };
        let s = score(o, w);
        if s.is_nan() {
            continue;
        }
        if s > best_score && s > baseline + margin {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(avail: f64, cost: f64, open: f64) -> Option<BranchOutcome> {
        Some(BranchOutcome {
            availability: avail,
            cost,
            open_tickets: open,
            incidents: 0,
        })
    }

    #[test]
    fn availability_dominates_cost_and_open_tickets() {
        let w = ScoreWeights::default();
        let outs = vec![
            outcome(0.99, 0.0, 0.0),
            outcome(0.991, 100_000.0, 50.0), // higher availability wins anyway
        ];
        assert_eq!(choose(&outs, &w, 0.0), 1);
    }

    #[test]
    fn cost_breaks_availability_ties() {
        let w = ScoreWeights::default();
        let outs = vec![outcome(0.99, 500.0, 0.0), outcome(0.99, 100.0, 0.0)];
        assert_eq!(choose(&outs, &w, 0.0), 1);
    }

    #[test]
    fn exact_ties_fall_back_to_the_ladder_branch() {
        let w = ScoreWeights::default();
        let outs = vec![outcome(0.99, 100.0, 1.0), outcome(0.99, 100.0, 1.0)];
        assert_eq!(choose(&outs, &w, 0.0), 0, "candidate 0 wins exact ties");
    }

    #[test]
    fn failed_and_nan_branches_never_win() {
        let w = ScoreWeights::default();
        let outs = vec![
            outcome(0.5, 0.0, 0.0),
            None,
            outcome(f64::NAN, 0.0, 0.0),
            outcome(0.6, 0.0, 0.0),
        ];
        assert_eq!(choose(&outs, &w, 0.0), 3);
        // An all-failed set still resolves to the ladder branch.
        assert_eq!(choose(&[None, None], &w, 0.0), 0);
    }

    #[test]
    fn commit_margin_filters_marginal_deviations() {
        let w = ScoreWeights::default();
        let outs = vec![outcome(0.990, 0.0, 0.0), outcome(0.9905, 0.0, 0.0)];
        assert_eq!(choose(&outs, &w, 0.0), 1, "no margin: deviation wins");
        assert_eq!(
            choose(&outs, &w, 1e-3),
            0,
            "advantage below the margin falls back to the ladder"
        );
        assert_eq!(choose(&outs, &w, 4e-4), 1, "advantage above margin wins");
    }

    #[test]
    fn default_config_is_bounded() {
        let c = TwinConfig::default();
        assert!(c.max_branches >= 2);
        assert!(c.samples >= 1);
        assert!(c.commit_margin >= 0.0);
        assert!(c.horizon > SimDuration::ZERO);
        assert!(TwinPolicy::TwinGuided(c).is_twin());
        assert!(!TwinPolicy::Ladder.is_twin());
    }

    #[test]
    fn plan_mirrors_candidate() {
        let c = Candidate {
            action: Some(RepairAction::CleanEndFace),
            human: true,
            defer_until: Some(SimTime::ZERO + SimDuration::from_hours(7)),
        };
        let p = TwinPlan::from(&c);
        assert_eq!(p.action, c.action);
        assert_eq!(p.human, c.human);
        assert_eq!(p.defer_until, c.defer_until);
        let l = Candidate::ladder();
        assert_eq!(l.action, None);
        assert!(!l.human);
        assert_eq!(l.defer_until, None);
    }
}
