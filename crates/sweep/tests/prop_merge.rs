//! Property: sweep output is completion-order invariant.
//!
//! The pool records completions in whatever order the OS produces; the
//! determinism contract says the *merged* output — report tables and
//! journal bytes — is a pure function of the plan. These tests drive
//! `merge_canonical` + `aggregate_tables` with adversarially shuffled
//! completion schedules and assert the rendered bytes never move.

use dcmaint_metrics::{fnum, Align, Table};
use dcmaint_sweep::{aggregate_tables, derive_seed, merge_canonical, Completed, JobResult};
use proptest::prelude::*;

/// Deterministic Fisher–Yates driven by a splitmix-style seed, so the
/// shuffle itself is reproducible from the proptest case.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// What one synthetic "job" produces: a table row value plus journal
/// lines — a miniature of what real sweep jobs return.
#[derive(Debug, Clone, PartialEq)]
struct FakeRun {
    value: f64,
    journal: Vec<String>,
}

fn fake_run(replicate: u64, base: u64) -> FakeRun {
    // A pure function of the derived seed, like a real engine run.
    let seed = derive_seed(base, "prop", replicate);
    let value = (seed % 1000) as f64 / 10.0;
    FakeRun {
        value,
        journal: vec![
            format!("{{\"ev\":\"sweep-job\",\"replicate\":{replicate},\"seed\":{seed}}}"),
            format!("{{\"ev\":\"sample\",\"value\":{value}}}"),
        ],
    }
}

fn render_outcome(merged: &[JobResult<FakeRun>]) -> (String, String) {
    // Table path: one replicate table per job, folded with the CI
    // aggregator; journal path: concatenation in plan order.
    let tables: Vec<Table> = merged
        .iter()
        .map(|r| {
            let run = r.as_ref().expect("no panics in this property");
            let mut t = Table::new("prop", &[("k", Align::Left), ("v", Align::Right)]);
            t.row(vec!["row".to_string(), fnum(run.value, 1)]);
            t
        })
        .collect();
    let table_bytes = aggregate_tables(&tables).expect("same shape").render();
    let journal_bytes = merged
        .iter()
        .flat_map(|r| r.as_ref().unwrap().journal.iter().cloned())
        .collect::<Vec<_>>()
        .join("\n");
    (table_bytes, journal_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shuffling the completion schedule changes nothing the user sees:
    /// merged tables and journal bytes are identical to the plan-order
    /// schedule's, for any plan size and any shuffle.
    #[test]
    fn merged_bytes_are_completion_order_invariant(
        n in 1usize..24,
        base in 0u64..10_000,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // Precompute each job's output once — the pool never changes
        // *what* a job computes, only *when* it completes.
        let outputs: Vec<FakeRun> = (0..n).map(|k| fake_run(k as u64, base)).collect();

        let plan_order: Vec<Completed<FakeRun>> = outputs
            .iter()
            .enumerate()
            .map(|(i, o)| Completed { index: i, result: Ok(o.clone()) })
            .collect();
        let mut shuffled = plan_order.clone();
        shuffle(&mut shuffled, shuffle_seed);

        let a = render_outcome(&merge_canonical(plan_order));
        let b = render_outcome(&merge_canonical(shuffled));
        prop_assert_eq!(&a.0, &b.0, "table bytes diverged");
        prop_assert_eq!(&a.1, &b.1, "journal bytes diverged");
    }

    /// merge_canonical restores exactly the plan indices 0..n in order,
    /// regardless of schedule.
    #[test]
    fn merge_restores_every_index_once(
        n in 1usize..64,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let mut completions: Vec<Completed<usize>> = (0..n)
            .map(|i| Completed { index: i, result: Ok(i * 7) })
            .collect();
        shuffle(&mut completions, shuffle_seed);
        let merged = merge_canonical(completions);
        prop_assert_eq!(merged.len(), n);
        for (i, r) in merged.iter().enumerate() {
            prop_assert_eq!(*r.as_ref().unwrap(), i * 7);
        }
    }
}
