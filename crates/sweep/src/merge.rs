//! Canonical-order merge: the sweep determinism contract, isolated.
//!
//! Workers finish jobs in whatever order the OS scheduler produces. All
//! of that nondeterminism is quarantined here: a completion is a
//! `(plan index, result)` pair, and [`merge_canonical`] restores plan
//! order before anything downstream (table aggregation, journal
//! concatenation, stdout) sees the results. The property test in
//! `tests/` drives this with arbitrary completion schedules and asserts
//! the merged bytes never change.

use crate::pool::JobResult;

/// One finished job as the pool observed it: plan index + outcome.
#[derive(Debug, Clone)]
pub struct Completed<T> {
    /// Index of the job in the submitted plan.
    pub index: usize,
    /// The job's value, or its contained panic.
    pub result: JobResult<T>,
}

/// Restore plan order over completions gathered in arbitrary
/// (scheduler-dependent) order. The output is a dense vector: slot `i`
/// holds job `i`'s result.
///
/// Panics if two completions claim the same index or an index is out of
/// range — both would mean the pool lost or duplicated a job, which is a
/// bug, not an input condition.
pub fn merge_canonical<T>(mut done: Vec<Completed<T>>) -> Vec<JobResult<T>> {
    done.sort_by_key(|c| c.index);
    for (slot, c) in done.iter().enumerate() {
        assert_eq!(
            slot, c.index,
            "sweep pool lost or duplicated a job (have completion for #{}, expected #{slot})",
            c.index
        );
    }
    done.into_iter().map(|c| c.result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::JobError;

    #[test]
    fn restores_plan_order() {
        let done = vec![
            Completed {
                index: 2,
                result: Ok("c"),
            },
            Completed {
                index: 0,
                result: Ok("a"),
            },
            Completed {
                index: 1,
                result: Err(JobError {
                    index: 1,
                    message: "boom".into(),
                }),
            },
        ];
        let merged = merge_canonical(done);
        assert_eq!(merged[0], Ok("a"));
        assert!(merged[1].is_err());
        assert_eq!(merged[2], Ok("c"));
    }

    #[test]
    #[should_panic(expected = "lost or duplicated")]
    fn duplicate_indices_are_a_bug() {
        let done = vec![
            Completed {
                index: 0,
                result: Ok(1u32),
            },
            Completed {
                index: 0,
                result: Ok(2u32),
            },
        ];
        merge_canonical(done);
    }

    #[test]
    fn empty_is_empty() {
        assert!(merge_canonical(Vec::<Completed<u8>>::new()).is_empty());
    }
}
