//! # dcmaint-sweep — deterministic parallel sweep engine
//!
//! Every experiment in this reproduction is a statistical claim, but a
//! single seeded run reports a point estimate with no error bars and
//! uses one core. This crate supplies the missing substrate: fan a sweep
//! plan — (experiment × config × seed-replicate) jobs — across a
//! hand-rolled work-stealing thread pool, then merge results in
//! canonical plan order so the output is **byte-identical for
//! `--jobs 1` and `--jobs N`**.
//!
//! The determinism contract, in layers:
//!
//! 1. Each job is a pure function of its derived root seed
//!    ([`derive_seed`]) — jobs share nothing, so scheduling cannot
//!    perturb them.
//! 2. The pool ([`run_jobs`]) records completions in whatever order the
//!    OS produces and quarantines that nondeterminism behind
//!    [`merge_canonical`], which restores plan order before anything
//!    renders.
//! 3. Replicate aggregation ([`aggregate_tables`]) and CI math
//!    (`dcmaint_metrics::mean_ci95`) are pure folds over plan-ordered
//!    inputs.
//!
//! Worker panics are contained per job ([`JobError`]), never hang the
//! pool, and render identically at any worker count. Wall-clock scaling
//! is measured by the CLI's `--bench-sweep`, which writes
//! `BENCH_sweep.json` off the deterministic stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod merge;
mod pool;
mod replicate;

pub use merge::{merge_canonical, Completed};
pub use pool::{run_jobs, JobError, JobResult};
pub use replicate::aggregate_tables;

use dcmaint_des::SimRng;

/// Derive the root seed for one sweep replicate.
///
/// Replicate 0 **is** the base seed: a `--seeds 1` sweep reproduces the
/// legacy single-seed run byte-for-byte. Later replicates derive through
/// the `SimRng` child-namespace machinery (`sweep / <label> / <k>`), so
/// they are decorrelated from the base run and from each other, and
/// stable across platforms and code changes elsewhere.
pub fn derive_seed(base: u64, label: &str, replicate: u64) -> u64 {
    if replicate == 0 {
        return base;
    }
    SimRng::root(base)
        .child("sweep")
        .child(label)
        .child(&replicate.to_string())
        .seed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_zero_is_the_base_seed() {
        assert_eq!(derive_seed(2024, "e1", 0), 2024);
        assert_eq!(derive_seed(42, "anything", 0), 42);
    }

    #[test]
    fn replicates_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|k| derive_seed(2024, "e1", k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "replicate seeds collide");
        // Stable: same inputs, same derivation.
        assert_eq!(derive_seed(2024, "e1", 3), derive_seed(2024, "e1", 3));
        // Label participates.
        assert_ne!(derive_seed(2024, "e1", 3), derive_seed(2024, "e2", 3));
        // Base participates.
        assert_ne!(derive_seed(2024, "e1", 3), derive_seed(2025, "e1", 3));
    }
}
