//! Hand-rolled work-stealing thread pool for sweep jobs.
//!
//! Built on `std::thread::scope` only — the vendor policy is offline, so
//! no crossbeam/rayon. The shape is the classic one: each worker owns a
//! deque seeded round-robin with jobs; a worker pops from the *front* of
//! its own deque and, when empty, steals from the *back* of a victim's.
//! Because sweep jobs never spawn further jobs, a worker that finds every
//! deque empty can retire — the jobs still in flight belong to other
//! workers, so the pool drains without a condvar.
//!
//! Two properties the sweep engine's determinism contract leans on:
//!
//! * **Completion order is irrelevant.** Every job carries its plan
//!   index; the pool records completions as they happen and hands them to
//!   [`merge_canonical`](crate::merge_canonical), which restores plan
//!   order. Output is byte-identical for 1 worker or N.
//! * **Panics are contained.** Each job runs under `catch_unwind`; a
//!   panicking job becomes an `Err(JobError)` in its result slot instead
//!   of poisoning a lock or hanging the pool. The panic payload's message
//!   is preserved so the failure is attributable.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::merge::{merge_canonical, Completed};

/// A sweep job that failed: its plan index plus the panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the job in the submitted plan.
    pub index: usize,
    /// Panic payload rendered as text (`"non-string panic payload"` when
    /// the payload was neither `&str` nor `String`).
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job #{} panicked: {}", self.index, self.message)
    }
}

/// Outcome of one sweep job: its value, or the contained panic.
pub type JobResult<T> = Result<T, JobError>;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one<T, F>(index: usize, job: F) -> Completed<T>
where
    F: FnOnce() -> T,
{
    let result = match catch_unwind(AssertUnwindSafe(job)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(JobError {
            index,
            message: panic_message(payload),
        }),
    };
    Completed { index, result }
}

/// Run `jobs` on `workers` threads and return their results **in plan
/// order**, one slot per job. `workers <= 1` (or a single job) runs
/// inline on the caller's thread with the same panic containment.
///
/// The worker count is a cap, not a demand: at most `jobs.len()` threads
/// are spawned.
pub fn run_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<JobResult<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        let done = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| run_one(i, job))
            .collect();
        return merge_canonical(done);
    }

    // One deque per worker, seeded round-robin so every worker starts
    // with local work; idle workers steal from the back of a victim.
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back((i, job));
    }
    let completions: Mutex<Vec<Completed<T>>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let completions = &completions;
            scope.spawn(move || loop {
                // Own deque first (front), then steal round-robin (back).
                let mut task = deques[me].lock().unwrap().pop_front();
                if task.is_none() {
                    for k in 1..deques.len() {
                        let victim = (me + k) % deques.len();
                        task = deques[victim].lock().unwrap().pop_back();
                        if task.is_some() {
                            break;
                        }
                    }
                }
                let Some((index, job)) = task else {
                    // All deques empty: remaining jobs are already owned
                    // by other workers. Retire.
                    return;
                };
                let done = run_one(index, job);
                completions.lock().unwrap().push(done);
            });
        }
    });

    let done = completions.into_inner().unwrap();
    debug_assert_eq!(done.len(), n);
    merge_canonical(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_come_back_in_plan_order() {
        let jobs: Vec<_> = (0..50u64).map(|i| move || i * i).collect();
        for workers in [1, 2, 4, 8] {
            let out = run_jobs(jobs.clone(), workers);
            let vals: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(vals, (0..50u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let out: Vec<JobResult<u32>> = run_jobs(Vec::<fn() -> u32>::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        let jobs: Vec<_> = (0..3u32).map(|i| move || i + 1).collect();
        let out = run_jobs(jobs, 16);
        assert_eq!(
            out.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn panic_is_contained_as_job_error() {
        for workers in [1, 4] {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 7),
                Box::new(|| panic!("injected failure")),
                Box::new(|| 9),
            ];
            let out = run_jobs(jobs, workers);
            assert_eq!(out[0], Ok(7));
            assert_eq!(out[2], Ok(9));
            let err = out[1].as_ref().unwrap_err();
            assert_eq!(err.index, 1);
            assert_eq!(err.message, "injected failure");
            assert_eq!(err.to_string(), "job #1 panicked: injected failure");
        }
    }

    #[test]
    fn string_panic_payload_is_preserved() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("{} {}", "formatted", 42))];
        let out = run_jobs(jobs, 2);
        assert_eq!(out[0].as_ref().unwrap_err().message, "formatted 42");
    }

    #[test]
    fn all_jobs_panicking_still_drains_the_pool() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8)
            .map(|i| {
                Box::new(move || -> u32 { panic!("boom {i}") }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let out = run_jobs(jobs, 4);
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            let e = r.as_ref().unwrap_err();
            assert_eq!(e.index, i);
            assert_eq!(e.message, format!("boom {i}"));
        }
    }

    #[test]
    fn jobs_actually_run_concurrently() {
        // Two jobs that each wait (politely, with sleeps) until both have
        // started. With 2 workers this completes; with 1 it could not.
        let started = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> bool + Send>> = (0..2)
            .map(|_| {
                let started = &started;
                Box::new(move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..10_000 {
                        if started.load(Ordering::SeqCst) >= 2 {
                            return true;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    false
                }) as Box<dyn FnOnce() -> bool + Send>
            })
            .collect();
        let out = run_jobs(jobs, 2);
        assert!(out.into_iter().all(|r| r.unwrap()), "jobs never overlapped");
    }

    #[test]
    fn work_stealing_covers_uneven_deques() {
        // 64 jobs, one very long job seeded into worker 0's deque: the
        // rest of worker 0's local work must be stolen and finished by
        // the other workers while it is stuck.
        let done = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 0 {
                        // Hold worker 0 until nearly everything else ran.
                        for _ in 0..10_000 {
                            if done.load(Ordering::SeqCst) >= 60 {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = run_jobs(jobs, 4);
        let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..64).collect::<Vec<_>>());
    }
}
