//! Seed-replicate aggregation of experiment tables.
//!
//! A sweep runs the same experiment K times under derived seeds; every
//! replicate renders the same table shape (same title, columns, row
//! count — the row set is determined by the experiment's configuration,
//! not its randomness). [`aggregate_tables`] folds those K tables into
//! one, cell by cell:
//!
//! * cells identical across replicates (labels, config columns) pass
//!   through untouched;
//! * numeric cells — plain numbers, percentages (`12.3%`), ratios
//!   (`2.00x`), and rendered durations (`1.50m`, `12us`) — become
//!   `mean ±half` with a t-distribution 95% CI over the replicates;
//! * anything else that varies renders as `(varies)` rather than
//!   pretending one replicate speaks for all.
//!
//! Aggregation happens on the *rendered* cells, so the CI reflects the
//! table's own precision; that keeps the machinery experiment-agnostic
//! (no per-experiment numeric adapters) and is documented as such in
//! EXPERIMENTS.md. The fold is pure and order-preserving: replicates are
//! always presented in replicate order by the caller, so the output is
//! byte-stable regardless of which worker finished first.

use dcmaint_des::SimDuration;
use dcmaint_metrics::{fnum, mean_ci95, Align, Table};

/// What a rendered cell parsed as.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CellValue {
    /// Plain number, with the decimal places it was rendered at.
    Plain(f64, usize),
    /// Percentage (`fpct` output): value *as displayed* (already ×100).
    Percent(f64, usize),
    /// Ratio (`fratio` output): `2.00x`.
    Ratio(f64, usize),
    /// Duration (`SimDuration` display): seconds.
    Duration(f64),
}

fn decimals(s: &str) -> usize {
    s.split_once('.').map_or(0, |(_, frac)| {
        frac.chars().take_while(|c| c.is_ascii_digit()).count()
    })
}

fn parse_cell(s: &str) -> Option<CellValue> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // Duration units first — longest suffix wins so "ms"/"us" are not
    // mistaken for a trailing "s".
    for (suffix, scale) in [
        ("us", 1e-6),
        ("ms", 1e-3),
        ("d", 86_400.0),
        ("h", 3_600.0),
        ("m", 60.0),
        ("s", 1.0),
    ] {
        if let Some(num) = s.strip_suffix(suffix) {
            if let Ok(v) = num.parse::<f64>() {
                return Some(CellValue::Duration(v * scale));
            }
        }
    }
    if let Some(num) = s.strip_suffix('%') {
        if let Ok(v) = num.parse::<f64>() {
            return Some(CellValue::Percent(v, decimals(num)));
        }
    }
    if let Some(num) = s.strip_suffix('x') {
        if let Ok(v) = num.parse::<f64>() {
            return Some(CellValue::Ratio(v, decimals(num)));
        }
    }
    s.parse::<f64>()
        .ok()
        .map(|v| CellValue::Plain(v, decimals(s)))
}

fn fdur_ci(mean_s: f64, half_s: f64) -> String {
    format!(
        "{} ±{}",
        SimDuration::from_secs_f64(mean_s),
        SimDuration::from_secs_f64(half_s)
    )
}

/// Aggregate one cell position across replicates.
fn aggregate_cell(cells: &[&str]) -> String {
    debug_assert!(!cells.is_empty());
    if cells.iter().all(|c| *c == cells[0]) {
        return cells[0].to_string();
    }
    let parsed: Option<Vec<CellValue>> = cells.iter().map(|c| parse_cell(c)).collect();
    let Some(parsed) = parsed else {
        return "(varies)".into();
    };
    // All replicates must agree on the cell's kind; a column that
    // renders seconds in one replicate and minutes in another is still
    // one Duration kind, but a mix of, say, Percent and Plain is not a
    // column — refuse to average it.
    let same_kind = |a: &CellValue, b: &CellValue| {
        matches!(
            (a, b),
            (CellValue::Plain(..), CellValue::Plain(..))
                | (CellValue::Percent(..), CellValue::Percent(..))
                | (CellValue::Ratio(..), CellValue::Ratio(..))
                | (CellValue::Duration(..), CellValue::Duration(..))
        )
    };
    if !parsed.iter().all(|v| same_kind(v, &parsed[0])) {
        return "(varies)".into();
    }
    let values: Vec<f64> = parsed
        .iter()
        .map(|v| match v {
            CellValue::Plain(x, _)
            | CellValue::Percent(x, _)
            | CellValue::Ratio(x, _)
            | CellValue::Duration(x) => *x,
        })
        .collect();
    let ci = mean_ci95(&values);
    let digits = parsed
        .iter()
        .map(|v| match v {
            CellValue::Plain(_, d) | CellValue::Percent(_, d) | CellValue::Ratio(_, d) => *d,
            CellValue::Duration(_) => 0,
        })
        .max()
        .unwrap_or(0);
    match parsed[0] {
        CellValue::Duration(_) => fdur_ci(ci.mean, ci.half),
        CellValue::Percent(..) => {
            format!("{}% ±{}%", fnum(ci.mean, digits), fnum(ci.half, digits))
        }
        CellValue::Ratio(..) => {
            format!("{}x ±{}x", fnum(ci.mean, digits), fnum(ci.half, digits))
        }
        CellValue::Plain(..) => ci.cell(digits),
    }
}

/// Fold K same-shaped replicate tables into one mean ± 95% CI table.
///
/// Errors (rather than panicking) on shape mismatches — a replicate that
/// produced a different title, column set, or row count indicates the
/// sweep plan was built wrong, and the caller surfaces that as a failed
/// experiment, not a crash.
pub fn aggregate_tables(replicates: &[Table]) -> Result<Table, String> {
    let Some(first) = replicates.first() else {
        return Err("no replicates to aggregate".into());
    };
    if replicates.len() == 1 {
        return Ok(first.clone());
    }
    for (k, t) in replicates.iter().enumerate() {
        if t.title() != first.title() {
            return Err(format!(
                "replicate {k} title {:?} != {:?}",
                t.title(),
                first.title()
            ));
        }
        if t.headers() != first.headers() {
            return Err(format!("replicate {k} columns differ"));
        }
        if t.len() != first.len() {
            return Err(format!(
                "replicate {k} has {} rows, expected {}",
                t.len(),
                first.len()
            ));
        }
    }
    let headers = first.headers();
    let columns: Vec<(&str, Align)> = headers
        .iter()
        .enumerate()
        // Alignment isn't exposed by Table; numbers are right-aligned by
        // convention and labels sit in column 0 in every experiment
        // table, which is exactly the convention the originals follow.
        .map(|(i, h)| (*h, if i == 0 { Align::Left } else { Align::Right }))
        .collect();
    let mut out = Table::new(
        &format!(
            "{} — {} seeds, mean ±95% CI",
            first.title(),
            replicates.len()
        ),
        &columns,
    );
    for r in 0..first.len() {
        let mut row: Vec<String> = Vec::with_capacity(headers.len());
        for c in 0..headers.len() {
            let cells: Vec<&str> = replicates.iter().map(|t| t.rows()[r][c].as_str()).collect();
            row.push(aggregate_cell(&cells));
        }
        out.row(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(title: &str, rows: &[[&str; 3]]) -> Table {
        let mut t = Table::new(
            title,
            &[
                ("level", Align::Left),
                ("value", Align::Right),
                ("window", Align::Right),
            ],
        );
        for r in rows {
            t.row(r.to_vec());
        }
        t
    }

    #[test]
    fn identical_cells_pass_through() {
        let a = table("t", &[["L0", "3.00", "1.50m"]]);
        let b = table("t", &[["L0", "3.00", "1.50m"]]);
        let agg = aggregate_tables(&[a, b]).unwrap();
        assert_eq!(agg.rows()[0], vec!["L0", "3.00", "1.50m"]);
        assert_eq!(agg.title(), "t — 2 seeds, mean ±95% CI");
    }

    #[test]
    fn numeric_cells_become_mean_ci() {
        let a = table("t", &[["L0", "1.00", "60.00s"]]);
        let b = table("t", &[["L0", "3.00", "3.00m"]]);
        let agg = aggregate_tables(&[a, b]).unwrap();
        // {1,3}: mean 2, half 12.706 (df=1 t-interval, se exactly 1).
        assert_eq!(agg.rows()[0][1], "2.00 ±12.71");
        // {60 s, 180 s}: mean 120 s → 2.00m.
        assert!(
            agg.rows()[0][2].starts_with("2.00m ±"),
            "{}",
            agg.rows()[0][2]
        );
    }

    #[test]
    fn mixed_unit_durations_aggregate_in_seconds() {
        let a = table("t", &[["L0", "1", "30.00s"]]);
        let b = table("t", &[["L0", "1", "1.50m"]]);
        let agg = aggregate_tables(&[a, b]).unwrap();
        // {30 s, 90 s}: mean 60 s renders as 1.00m.
        assert!(agg.rows()[0][2].starts_with("1.00m ±"));
    }

    #[test]
    fn percent_and_ratio_cells_keep_their_suffix() {
        let a = table("t", &[["L0", "12.0%", "2.00x"]]);
        let b = table("t", &[["L0", "14.0%", "4.00x"]]);
        let agg = aggregate_tables(&[a, b]).unwrap();
        assert!(
            agg.rows()[0][1].starts_with("13.0% ±"),
            "{}",
            agg.rows()[0][1]
        );
        assert!(
            agg.rows()[0][2].starts_with("3.00x ±"),
            "{}",
            agg.rows()[0][2]
        );
    }

    #[test]
    fn unparseable_variation_is_flagged_not_averaged() {
        let a = table("t", &[["L0", "reseat", "1"]]);
        let b = table("t", &[["L0", "clean", "1"]]);
        let agg = aggregate_tables(&[a, b]).unwrap();
        assert_eq!(agg.rows()[0][1], "(varies)");
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let a = table("t", &[["L0", "12.0%", "1"]]);
        let b = table("t", &[["L0", "12.5", "1"]]);
        let agg = aggregate_tables(&[a, b]).unwrap();
        assert_eq!(agg.rows()[0][1], "(varies)");
    }

    #[test]
    fn shape_mismatches_error() {
        let a = table("t", &[["L0", "1", "1"]]);
        let b = table("u", &[["L0", "1", "1"]]);
        assert!(aggregate_tables(&[a.clone(), b]).is_err());
        let short = table("t", &[]);
        assert!(aggregate_tables(&[a.clone(), short]).is_err());
        assert!(aggregate_tables(&[]).is_err());
        // A single replicate passes through unchanged.
        let solo = aggregate_tables(std::slice::from_ref(&a)).unwrap();
        assert_eq!(solo.title(), "t");
    }

    #[test]
    fn aggregation_is_replicate_order_sensitive_only_in_name() {
        // Mean/CI are symmetric; swapping replicate order must not
        // change a single byte of the rendered table.
        let a = table("t", &[["L0", "1.00", "30.00s"]]);
        let b = table("t", &[["L0", "5.00", "2.50m"]]);
        let ab = aggregate_tables(&[a.clone(), b.clone()]).unwrap().render();
        let ba = aggregate_tables(&[b, a]).unwrap().render();
        assert_eq!(ab, ba);
    }

    #[test]
    fn duration_parser_disambiguates_suffixes() {
        let secs = |s: &str| match parse_cell(s) {
            Some(CellValue::Duration(v)) => v,
            other => panic!("{s:?} parsed as {other:?}, expected a duration"),
        };
        assert!((secs("12us") - 12e-6).abs() < 1e-12);
        assert!((secs("1.50ms") - 0.0015).abs() < 1e-12);
        assert!((secs("1.50s") - 1.5).abs() < 1e-12);
        assert!((secs("1.50m") - 90.0).abs() < 1e-9);
        assert!((secs("2.00h") - 7200.0).abs() < 1e-9);
        assert!((secs("2.00d") - 172_800.0).abs() < 1e-9);
        assert_eq!(parse_cell("0.99987"), Some(CellValue::Plain(0.99987, 5)));
        assert_eq!(parse_cell("42"), Some(CellValue::Plain(42.0, 0)));
        assert_eq!(parse_cell("12.3%"), Some(CellValue::Percent(12.3, 1)));
        assert_eq!(parse_cell("2.00x"), Some(CellValue::Ratio(2.0, 2)));
        assert_eq!(parse_cell("reseat"), None);
        assert_eq!(parse_cell(""), None);
    }
}
