//! The robot fleet: modular units, mobility scopes, dispatch.
//!
//! §3.4: "rather than a small number of large robots (e.g., humanoids),
//! there will be many small robotic units that will need to collaborate"
//! and "there are several potential deployment scopes … device-level
//! within the rack, rack-level, row-level, hall level". The fleet model
//! places units per row (the paper's row-level XY-plane mobility) or
//! hall-wide, dispatches the nearest available unit in seconds (vs the
//! technician pool's hours), and accounts for the robots' own downtime —
//! robots are hardware too, and §4 warns against technicians "becoming
//! the technicians of robots".

use dcmaint_dcnet::{HallLayout, RackLoc};
use dcmaint_des::{Dist, SimDuration, SimRng, SimTime, Stream};
use dcmaint_obs::{JVal, Journal};

use crate::ops::OpTimings;
use crate::vision::VisionModel;

/// Deployment scope of a mobility unit (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityScope {
    /// Unit is pinned to one row, moving along it (XY gantry).
    Row,
    /// Unit can travel anywhere in the hall (AGV base).
    Hall,
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Mobility scope of every unit.
    pub scope: MobilityScope,
    /// Software dispatch latency (queueing, planning) — seconds, the
    /// robotic replacement for the technician triage queue.
    pub dispatch_latency: SimDuration,
    /// Probability a unit breaks down at the end of an operation.
    pub breakdown_prob: f64,
    /// Median robot repair time (a human fixes the robot).
    pub repair_median: SimDuration,
    /// Spare transceivers carried per unit (§3.3.2: "the robots can carry
    /// spares").
    pub spares_per_unit: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            scope: MobilityScope::Row,
            dispatch_latency: SimDuration::from_secs(30),
            breakdown_prob: 0.008,
            repair_median: SimDuration::from_hours(4),
            spares_per_unit: 4,
        }
    }
}

/// Health of a robot unit. The lifecycle is Healthy → Degraded (after
/// a fault involvement, e.g. a stall or abort) → Down (breakdown) →
/// repaired back to Healthy; a unit can also go straight Healthy →
/// Down on a hard breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitHealth {
    /// Fully operational.
    Healthy,
    /// Operational but suspect after a fault: subsequent hands-on work
    /// runs at [`RobotFleet::DEGRADED_SLOWDOWN`].
    Degraded,
    /// Broken down, awaiting human repair.
    Down,
}

impl UnitHealth {
    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            UnitHealth::Healthy => "healthy",
            UnitHealth::Degraded => "degraded",
            UnitHealth::Down => "down",
        }
    }
}

/// One robot unit's live state.
#[derive(Debug, Clone)]
pub struct RobotUnit {
    /// Home row (Row scope) or garage row (Hall scope).
    pub home_row: u32,
    /// Busy with an operation until this instant.
    pub busy_until: SimTime,
    /// Broken down until this instant.
    pub down_until: SimTime,
    /// Spare transceivers remaining on board.
    pub spares: u32,
    /// Operations completed.
    pub ops_done: u64,
    /// Cumulative busy time.
    pub busy_time: SimDuration,
    /// Sticky degraded flag (cleared by repair / `mark_repaired`).
    pub degraded: bool,
    /// Breakdowns suffered (post-op and mid-op).
    pub breakdowns: u64,
    /// Repairs completed on this unit.
    pub repairs: u64,
}

impl RobotUnit {
    fn fresh(home_row: u32, spares: u32) -> Self {
        RobotUnit {
            home_row,
            busy_until: SimTime::ZERO,
            down_until: SimTime::ZERO,
            spares,
            ops_done: 0,
            busy_time: SimDuration::ZERO,
            degraded: false,
            breakdowns: 0,
            repairs: 0,
        }
    }

    /// Effective health at `now`.
    pub fn health(&self, now: SimTime) -> UnitHealth {
        if self.down_until > now {
            UnitHealth::Down
        } else if self.degraded {
            UnitHealth::Degraded
        } else {
            UnitHealth::Healthy
        }
    }
}

/// A booked robot dispatch.
#[derive(Debug, Clone, Copy)]
pub struct RobotAssignment {
    /// Index of the unit.
    pub unit: usize,
    /// When the unit starts moving (dispatch granted).
    pub start: SimTime,
    /// Travel distance covered, meters.
    pub travel_m: f64,
    /// Total occupancy: travel (per this unit's actual distance) plus
    /// the hands-on work.
    pub total: SimDuration,
}

/// The fleet.
#[derive(Debug)]
pub struct RobotFleet {
    cfg: FleetConfig,
    /// Shared operation timing calibration.
    pub timings: OpTimings,
    /// Shared vision model.
    pub vision: VisionModel,
    units: Vec<RobotUnit>,
    rng: Stream,
    journal: Journal,
}

impl RobotFleet {
    /// Deploy `per_row` units in each of the layout's rows.
    pub fn per_row(layout: &HallLayout, per_row: usize, cfg: FleetConfig, rng: &SimRng) -> Self {
        let mut units = Vec::new();
        for row in 0..layout.rows {
            for _ in 0..per_row {
                units.push(RobotUnit::fresh(row, cfg.spares_per_unit));
            }
        }
        RobotFleet {
            cfg,
            timings: OpTimings::default(),
            vision: VisionModel::default(),
            units,
            rng: rng.stream("robot-fleet", 0),
            journal: Journal::disabled(),
        }
    }

    /// Deploy a fixed number of hall-scope units (garaged in row 0).
    pub fn hall_pool(count: usize, cfg: FleetConfig, rng: &SimRng) -> Self {
        let cfg = FleetConfig {
            scope: MobilityScope::Hall,
            ..cfg
        };
        let units = (0..count)
            .map(|_| RobotUnit::fresh(0, cfg.spares_per_unit))
            .collect();
        RobotFleet {
            cfg,
            timings: OpTimings::default(),
            vision: VisionModel::default(),
            units,
            rng: rng.stream("robot-fleet", 0),
            journal: Journal::disabled(),
        }
    }

    /// Attach an event journal; unit-health transitions (degrade,
    /// freeze, breakdown, repair) are emitted into it. Disabled by
    /// default.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// Configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the fleet has no units (Level-0 deployments).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Access a unit.
    pub fn unit(&self, i: usize) -> &RobotUnit {
        &self.units[i]
    }

    fn travel_distance(&self, layout: &HallLayout, unit: &RobotUnit, rack: RackLoc) -> Option<f64> {
        match self.cfg.scope {
            MobilityScope::Row => {
                if unit.home_row != rack.row {
                    return None;
                }
                // Gantry runs the row; average position is mid-row.
                Some(f64::from(layout.racks_per_row) * layout.rack_width_m / 2.0)
            }
            MobilityScope::Hall => Some(layout.walk_distance_m(
                RackLoc {
                    row: unit.home_row,
                    col: 0,
                },
                rack,
            )),
        }
    }

    /// Book the best unit for hands-on work of `hands_on` at `rack`,
    /// starting no earlier than `now`. Travel time is computed from the
    /// chosen unit's actual distance (hall AGVs pay cross-row trips that
    /// row gantries don't) and added to the unit's occupancy. Returns
    /// `None` if no unit can ever reach the rack (wrong row under Row
    /// scope) — the caller falls back to a human.
    pub fn assign(
        &mut self,
        layout: &HallLayout,
        now: SimTime,
        rack: RackLoc,
        hands_on: SimDuration,
    ) -> Option<RobotAssignment> {
        self.assign_excluding(layout, now, rack, hands_on, None)
    }

    /// Hands-on slowdown applied to work booked on a Degraded unit.
    pub const DEGRADED_SLOWDOWN: f64 = 1.25;

    /// [`RobotFleet::assign`], but never picking unit `exclude` — the
    /// recovery ladder's "reassign to another unit" step must not hand
    /// the operation back to the robot that just failed it.
    pub fn assign_excluding(
        &mut self,
        layout: &HallLayout,
        now: SimTime,
        rack: RackLoc,
        hands_on: SimDuration,
        exclude: Option<usize>,
    ) -> Option<RobotAssignment> {
        let ready = now + self.cfg.dispatch_latency;
        let mut best: Option<(usize, SimTime, f64)> = None;
        for (i, u) in self.units.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            // A frozen unit (down_until pushed ~a century out) must not
            // be booked against at all: committing a booking advances
            // `busy_until` past the freeze sentinel, and that outlives
            // the repair that eventually clears `down_until`.
            if u.down_until.since(now) > SimDuration::from_days(365) {
                continue;
            }
            let Some(dist) = self.travel_distance(layout, u, rack) else {
                continue;
            };
            let avail = u.busy_until.max(u.down_until).max(ready);
            // Earliest *completion* wins: availability plus this unit's
            // travel.
            let eta = avail + self.timings.travel(dist);
            if best
                .as_ref()
                .is_none_or(|&(_, s, d)| eta < s || (eta == s && dist < d))
            {
                best = Some((i, eta, dist));
            }
        }
        let (unit, _, travel_m) = best?;
        let u = &mut self.units[unit];
        let start = u.busy_until.max(u.down_until).max(ready);
        let work = if u.degraded {
            hands_on.mul_f64(Self::DEGRADED_SLOWDOWN)
        } else {
            hands_on
        };
        let total = self.timings.travel(travel_m) + work;
        u.busy_until = start + total;
        u.busy_time += total;
        u.ops_done += 1;
        Some(RobotAssignment {
            unit,
            start,
            travel_m,
            total,
        })
    }

    /// Mark a unit Degraded after a fault involvement (stall cleared by
    /// a human nudge, abort, jam). Idempotent; no effect on Down units'
    /// downtime.
    pub fn mark_degraded(&mut self, unit: usize) {
        if !self.units[unit].degraded {
            self.journal.emit(
                "robot-health",
                &[
                    ("unit", JVal::U(unit as u64)),
                    ("state", JVal::S("degraded")),
                ],
            );
        }
        self.units[unit].degraded = true;
    }

    /// Freeze a unit where it stands (actuator stall / mid-operation
    /// breakdown): it stops accepting work until someone explicitly
    /// repairs it via [`RobotFleet::mark_repaired`]. Unlike
    /// [`RobotFleet::mark_down`] no repair is scheduled — a frozen unit
    /// announces nothing; only a controller watchdog notices it.
    pub fn freeze(&mut self, unit: usize, now: SimTime) {
        let far = now + SimDuration::from_days(365 * 100);
        let u = &mut self.units[unit];
        u.down_until = u.down_until.max(far);
        self.journal.emit(
            "robot-health",
            &[("unit", JVal::U(unit as u64)), ("state", JVal::S("frozen"))],
        );
    }

    /// Take a unit Down at `now` (mid-operation breakdown or a stall
    /// the watchdog declared dead). Repair duration is sampled
    /// log-normal around the configured median; returns it so the
    /// caller can schedule the recovered event.
    pub fn mark_down(&mut self, unit: usize, now: SimTime) -> SimDuration {
        let repair = Dist::LogNormal {
            median: self.cfg.repair_median.as_secs_f64(),
            sigma: 0.5,
        }
        .sample_duration(&mut self.rng);
        let u = &mut self.units[unit];
        u.down_until = u.down_until.max(now + repair);
        u.breakdowns += 1;
        self.journal.emit(
            "robot-health",
            &[
                ("unit", JVal::U(unit as u64)),
                ("state", JVal::S("down")),
                ("repair_us", JVal::U(repair.as_micros())),
            ],
        );
        repair
    }

    /// Complete a unit's repair: Down/Degraded → Healthy.
    pub fn mark_repaired(&mut self, unit: usize, now: SimTime) {
        let u = &mut self.units[unit];
        u.down_until = u.down_until.min(now);
        u.degraded = false;
        u.repairs += 1;
        self.journal.emit(
            "robot-health",
            &[
                ("unit", JVal::U(unit as u64)),
                ("state", JVal::S("healthy")),
            ],
        );
    }

    /// Effective health of a unit at `now`.
    pub fn health(&self, unit: usize, now: SimTime) -> UnitHealth {
        self.units[unit].health(now)
    }

    /// True when every unit that could ever reach `rack` is Down at
    /// `now` — the recovery ladder's queue-until-fleet-recovers
    /// predicate.
    pub fn all_reachable_down(&self, layout: &HallLayout, rack: RackLoc, now: SimTime) -> bool {
        let mut reachable = 0usize;
        let mut down = 0usize;
        for u in &self.units {
            if self.travel_distance(layout, u, rack).is_none() {
                continue;
            }
            reachable += 1;
            if u.health(now) == UnitHealth::Down {
                down += 1;
            }
        }
        reachable > 0 && reachable == down
    }

    /// Fleet-wide breakdown count.
    pub fn total_breakdowns(&self) -> u64 {
        self.units.iter().map(|u| u.breakdowns).sum()
    }

    /// Roll the post-operation breakdown dice for a unit; if it breaks,
    /// mark it down (repair by a human, log-normal around the configured
    /// median) and return the downtime.
    pub fn breakdown_check(&mut self, unit: usize, now: SimTime) -> Option<SimDuration> {
        if !self.rng.chance(self.cfg.breakdown_prob) {
            return None;
        }
        Some(self.mark_down(unit, now))
    }

    /// Consume one spare transceiver from a unit; returns false if empty
    /// (unit must restock — modeled as a dispatch to the depot by the
    /// caller).
    pub fn take_spare(&mut self, unit: usize) -> bool {
        let u = &mut self.units[unit];
        if u.spares == 0 {
            return false;
        }
        u.spares -= 1;
        true
    }

    /// Refill a unit's spares to the configured level.
    pub fn restock(&mut self, unit: usize) {
        self.units[unit].spares = self.cfg.spares_per_unit;
    }

    /// Append the fleet's mutable state (per-unit ledgers and the RNG
    /// stream position) to a checkpoint. Configuration, timings, vision
    /// model, and the journal handle are not recorded — the restoring
    /// side rebuilds them from the same `FleetConfig`.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.usize(self.units.len());
        for u in &self.units {
            enc.u32(u.home_row);
            enc.u64(u.busy_until.as_micros());
            enc.u64(u.down_until.as_micros());
            enc.u32(u.spares);
            enc.u64(u.ops_done);
            enc.u64(u.busy_time.as_micros());
            enc.bool(u.degraded);
            enc.u64(u.breakdowns);
            enc.u64(u.repairs);
        }
        enc.u64(self.rng.draws());
    }

    /// Restore checkpointed state into a freshly constructed fleet.
    /// Inverse of [`RobotFleet::save`]. `rng` picks how the stream
    /// position is reinstated: replay the recorded draw count (disk
    /// restore), adopt the live donor fleet's stream (in-memory fork),
    /// or reseed under a branch root (twin planning).
    pub fn restore(
        &mut self,
        dec: &mut dcmaint_ckpt::Dec,
        rng: dcmaint_des::RngRestore<'_, RobotFleet>,
    ) -> Result<(), dcmaint_ckpt::CkptError> {
        let n = dec.usize()?;
        let mut units = Vec::with_capacity(n);
        for _ in 0..n {
            units.push(RobotUnit {
                home_row: dec.u32()?,
                busy_until: SimTime::from_micros(dec.u64()?),
                down_until: SimTime::from_micros(dec.u64()?),
                spares: dec.u32()?,
                ops_done: dec.u64()?,
                busy_time: SimDuration::from_micros(dec.u64()?),
                degraded: dec.bool()?,
                breakdowns: dec.u64()?,
                repairs: dec.u64()?,
            });
        }
        self.units = units;
        self.rng.restore_pos(dec.u64()?, rng.stream(|f| &f.rng));
        Ok(())
    }

    /// Fleet-wide cumulative busy time (for cost accounting).
    pub fn total_busy(&self) -> SimDuration {
        self.units
            .iter()
            .fold(SimDuration::ZERO, |acc, u| acc + u.busy_time)
    }

    /// Fleet-wide completed operations.
    pub fn total_ops(&self) -> u64 {
        self.units.iter().map(|u| u.ops_done).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> HallLayout {
        HallLayout::new(3, 10)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn per_row_deployment_counts() {
        let f = RobotFleet::per_row(&layout(), 2, FleetConfig::default(), &SimRng::root(1));
        assert_eq!(f.len(), 6);
        assert_eq!(f.unit(0).home_row, 0);
        assert_eq!(f.unit(5).home_row, 2);
    }

    #[test]
    fn row_scope_refuses_other_rows() {
        let mut f = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(1));
        // Remove rows 1-2 robots by making a single-row fleet manually:
        // assign to a row with a robot works, a row without would need
        // hall scope. All rows have robots here, so test via a 1-row
        // fleet covering a 3-row hall.
        let small = HallLayout::new(1, 10);
        let mut one_row = RobotFleet::per_row(&small, 1, FleetConfig::default(), &SimRng::root(1));
        assert!(one_row
            .assign(
                &layout(),
                at(0),
                RackLoc { row: 2, col: 3 },
                SimDuration::from_mins(2)
            )
            .is_none());
        assert!(f
            .assign(
                &layout(),
                at(0),
                RackLoc { row: 2, col: 3 },
                SimDuration::from_mins(2)
            )
            .is_some());
    }

    #[test]
    fn hall_scope_reaches_everywhere_but_pays_travel() {
        let mut f = RobotFleet::hall_pool(1, FleetConfig::default(), &SimRng::root(1));
        let a = f
            .assign(
                &layout(),
                at(0),
                RackLoc { row: 2, col: 9 },
                SimDuration::from_mins(2),
            )
            .unwrap();
        assert!(a.travel_m > 0.0);
        // Far corner from the row-0 garage: the AGV trip dominates.
        let mut row = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(1));
        let ar = row
            .assign(
                &layout(),
                at(0),
                RackLoc { row: 2, col: 9 },
                SimDuration::from_mins(2),
            )
            .unwrap();
        assert!(
            a.total > ar.total,
            "hall {:?} vs row {:?}",
            a.total,
            ar.total
        );
    }

    #[test]
    fn dispatch_latency_is_seconds_scale() {
        let mut f = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(1));
        let a = f
            .assign(
                &layout(),
                at(0),
                RackLoc { row: 0, col: 0 },
                SimDuration::from_mins(2),
            )
            .unwrap();
        assert_eq!(a.start, at(30), "30 s dispatch, robot idle");
        // Occupancy includes the gantry's travel along the row.
        assert!(a.total > SimDuration::from_mins(2));
    }

    #[test]
    fn busy_unit_queues_work() {
        let mut f = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(1));
        let hands_on = SimDuration::from_mins(10);
        let rack = RackLoc { row: 1, col: 4 };
        let a1 = f.assign(&layout(), at(0), rack, hands_on).unwrap();
        let a2 = f.assign(&layout(), at(0), rack, hands_on).unwrap();
        assert_eq!(a1.unit, a2.unit, "only one robot in the row");
        assert_eq!(a2.start, a1.start + a1.total);
    }

    #[test]
    fn multiple_units_parallelize() {
        let mut f = RobotFleet::per_row(&layout(), 2, FleetConfig::default(), &SimRng::root(1));
        let hands_on = SimDuration::from_mins(10);
        let rack = RackLoc { row: 1, col: 4 };
        let a1 = f.assign(&layout(), at(0), rack, hands_on).unwrap();
        let a2 = f.assign(&layout(), at(0), rack, hands_on).unwrap();
        assert_ne!(a1.unit, a2.unit);
        assert_eq!(a1.start, a2.start);
    }

    #[test]
    fn breakdown_takes_unit_offline() {
        let cfg = FleetConfig {
            breakdown_prob: 1.0,
            ..FleetConfig::default()
        };
        let mut f = RobotFleet::per_row(&layout(), 1, cfg, &SimRng::root(2));
        let rack = RackLoc { row: 0, col: 0 };
        let a = f
            .assign(&layout(), at(0), rack, SimDuration::from_mins(5))
            .unwrap();
        let down = f.breakdown_check(a.unit, a.start + SimDuration::from_mins(5));
        assert!(down.is_some());
        // Next assignment to this row waits for the repair.
        let a2 = f
            .assign(&layout(), at(400), rack, SimDuration::from_mins(5))
            .unwrap();
        assert!(a2.start >= f.unit(a.unit).down_until);
    }

    #[test]
    fn spares_deplete_and_restock() {
        let cfg = FleetConfig {
            spares_per_unit: 2,
            ..FleetConfig::default()
        };
        let mut f = RobotFleet::per_row(&HallLayout::new(1, 4), 1, cfg, &SimRng::root(3));
        assert!(f.take_spare(0));
        assert!(f.take_spare(0));
        assert!(!f.take_spare(0), "third spare unavailable");
        f.restock(0);
        assert!(f.take_spare(0));
    }

    #[test]
    fn accounting_accumulates() {
        let mut f = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(4));
        let rack = RackLoc { row: 0, col: 1 };
        let a1 = f
            .assign(&layout(), at(0), rack, SimDuration::from_mins(3))
            .unwrap();
        let a2 = f
            .assign(&layout(), at(0), rack, SimDuration::from_mins(4))
            .unwrap();
        assert_eq!(f.total_ops(), 2);
        assert_eq!(f.total_busy(), a1.total + a2.total);
        assert!(f.total_busy() >= SimDuration::from_mins(7));
    }

    #[test]
    fn empty_fleet_assigns_nothing() {
        let mut f = RobotFleet::hall_pool(0, FleetConfig::default(), &SimRng::root(5));
        assert!(f.is_empty());
        assert!(f
            .assign(
                &layout(),
                at(0),
                RackLoc { row: 0, col: 0 },
                SimDuration::from_mins(1)
            )
            .is_none());
    }

    #[test]
    fn health_machine_walks_the_ladder() {
        let mut f = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(6));
        assert_eq!(f.health(0, at(0)), UnitHealth::Healthy);
        f.mark_degraded(0);
        assert_eq!(f.health(0, at(0)), UnitHealth::Degraded);
        let repair = f.mark_down(0, at(100));
        assert!(repair > SimDuration::ZERO);
        assert_eq!(f.health(0, at(101)), UnitHealth::Down);
        assert_eq!(f.unit(0).breakdowns, 1);
        // Repaired → Healthy, sticky degraded flag cleared.
        let healed_at = at(100) + repair;
        f.mark_repaired(0, healed_at);
        assert_eq!(f.health(0, healed_at), UnitHealth::Healthy);
        assert_eq!(f.unit(0).repairs, 1);
    }

    #[test]
    fn degraded_units_run_slower() {
        let hands_on = SimDuration::from_mins(10);
        let rack = RackLoc { row: 0, col: 2 };
        let mut a = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(7));
        let healthy = a.assign(&layout(), at(0), rack, hands_on).unwrap();
        let mut b = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(7));
        b.mark_degraded(0);
        let degraded = b.assign(&layout(), at(0), rack, hands_on).unwrap();
        assert_eq!(
            degraded.total.saturating_sub(healthy.total),
            hands_on.mul_f64(RobotFleet::DEGRADED_SLOWDOWN - 1.0)
        );
    }

    #[test]
    fn assign_excluding_skips_the_failed_unit() {
        let mut f = RobotFleet::per_row(&layout(), 2, FleetConfig::default(), &SimRng::root(8));
        let rack = RackLoc { row: 1, col: 4 };
        let first = f
            .assign(&layout(), at(0), rack, SimDuration::from_mins(5))
            .unwrap();
        let retry = f
            .assign_excluding(
                &layout(),
                at(0),
                rack,
                SimDuration::from_mins(5),
                Some(first.unit),
            )
            .unwrap();
        assert_ne!(retry.unit, first.unit);
        // With only one unit in the row, exclusion leaves nothing.
        let small = HallLayout::new(1, 4);
        let mut lone = RobotFleet::per_row(&small, 1, FleetConfig::default(), &SimRng::root(8));
        assert!(lone
            .assign_excluding(
                &small,
                at(0),
                RackLoc { row: 0, col: 1 },
                SimDuration::from_mins(5),
                Some(0)
            )
            .is_none());
    }

    #[test]
    fn frozen_units_are_never_booked_and_repair_cleanly() {
        let small = HallLayout::new(1, 4);
        let mut f = RobotFleet::per_row(&small, 1, FleetConfig::default(), &SimRng::root(10));
        let rack = RackLoc { row: 0, col: 1 };
        let hands_on = SimDuration::from_mins(5);
        f.freeze(0, at(60));
        // A frozen unit must yield "no robot", not a booking a century
        // out — and crucially the attempt must not advance `busy_until`
        // past the freeze sentinel (that would outlive the repair).
        assert!(f.assign(&small, at(120), rack, hands_on).is_none());
        let busy_before = f.unit(0).busy_until;
        f.mark_repaired(0, at(300));
        assert_eq!(f.unit(0).busy_until, busy_before);
        let a = f
            .assign(&small, at(300), rack, hands_on)
            .expect("repaired unit books");
        assert!(
            a.start.since(at(300)) < SimDuration::from_mins(5),
            "start {:?}",
            a.start
        );
    }

    #[test]
    fn all_reachable_down_tracks_row_fleet() {
        let mut f = RobotFleet::per_row(&layout(), 1, FleetConfig::default(), &SimRng::root(9));
        let rack = RackLoc { row: 1, col: 0 };
        assert!(!f.all_reachable_down(&layout(), rack, at(0)));
        // Down the row-1 unit (index 1): rack in row 1 now has no live
        // robot, but rows 0/2 still do.
        f.mark_down(1, at(0));
        assert!(f.all_reachable_down(&layout(), rack, at(1)));
        assert!(!f.all_reachable_down(&layout(), RackLoc { row: 0, col: 0 }, at(1)));
        assert_eq!(f.total_breakdowns(), 1);
    }
}
