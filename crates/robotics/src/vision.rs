//! Robot perception model.
//!
//! §3.3.3: "The largest challenges have been the diversity of components
//! and high cabling density, which complicate perception and planning."
//! §5: occlusion and cable tracking "continue to pose substantial
//! difficulties for state-of-the-art robotic systems".
//!
//! The model compresses all of that into a per-attempt recognition
//! probability driven by two fleet-level quantities the substrate already
//! knows: the component *diversity index* (how many transceiver design
//! families exist — §4's standardization argument) and the local *cable
//! density* (how cluttered the faceplate is). Attempts cost time; after
//! `max_attempts` failures the robot requests human support (§3.3.2).

use dcmaint_des::{SimDuration, Stream};

/// Perception configuration.
#[derive(Debug, Clone)]
pub struct VisionModel {
    /// Per-attempt success probability on a standardized, uncluttered
    /// fleet.
    pub base_success: f64,
    /// Success penalty at full diversity (diversity index 1.0).
    pub diversity_penalty: f64,
    /// Success penalty at full clutter (density 1.0).
    pub density_penalty: f64,
    /// Time per recognition/localization attempt.
    pub attempt_time: SimDuration,
    /// Attempts before escalating to a human.
    pub max_attempts: u32,
}

impl Default for VisionModel {
    fn default() -> Self {
        VisionModel {
            base_success: 0.985,
            diversity_penalty: 0.22,
            density_penalty: 0.12,
            attempt_time: SimDuration::from_secs(8),
            max_attempts: 3,
        }
    }
}

/// Result of a perception task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisionOutcome {
    /// Whether the target was recognized/localized.
    pub success: bool,
    /// Attempts consumed.
    pub attempts: u32,
    /// Total time spent.
    pub elapsed_micros: u64,
}

impl VisionOutcome {
    /// Elapsed time as a duration.
    pub fn elapsed(&self) -> SimDuration {
        SimDuration::from_micros(self.elapsed_micros)
    }
}

impl VisionModel {
    /// Per-attempt success probability for the given fleet diversity and
    /// local density (both in `[0, 1]`).
    pub fn attempt_success(&self, diversity: f64, density: f64) -> f64 {
        (self.base_success
            - self.diversity_penalty * diversity.clamp(0.0, 1.0)
            - self.density_penalty * density.clamp(0.0, 1.0))
        .clamp(0.05, 1.0)
    }

    /// Run the recognize-retry loop.
    pub fn recognize(&self, diversity: f64, density: f64, rng: &mut Stream) -> VisionOutcome {
        let p = self.attempt_success(diversity, density);
        let mut attempts = 0;
        let mut elapsed = SimDuration::ZERO;
        while attempts < self.max_attempts {
            attempts += 1;
            elapsed += self.attempt_time;
            if rng.chance(p) {
                return VisionOutcome {
                    success: true,
                    attempts,
                    elapsed_micros: elapsed.as_micros(),
                };
            }
        }
        VisionOutcome {
            success: false,
            attempts,
            elapsed_micros: elapsed.as_micros(),
        }
    }

    /// Probability the whole retry loop fails (human escalation).
    pub fn escalation_prob(&self, diversity: f64, density: f64) -> f64 {
        (1.0 - self.attempt_success(diversity, density)).powi(self.max_attempts as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    #[test]
    fn standardized_fleet_recognized_reliably() {
        let v = VisionModel::default();
        let mut rng = SimRng::root(1).stream("vision", 0);
        let n = 5000;
        let fails = (0..n)
            .filter(|_| !v.recognize(0.0, 0.1, &mut rng).success)
            .count();
        assert!(
            (fails as f64 / f64::from(n)) < 0.001,
            "{fails} escalations on a standardized fleet"
        );
    }

    #[test]
    fn diversity_hurts_recognition() {
        let v = VisionModel::default();
        assert!(v.attempt_success(1.0, 0.5) < v.attempt_success(0.0, 0.5));
        assert!(v.escalation_prob(1.0, 1.0) > 50.0 * v.escalation_prob(0.0, 0.0));
    }

    #[test]
    fn attempts_bounded_and_timed() {
        let v = VisionModel::default();
        let mut rng = SimRng::root(2).stream("vision", 0);
        for _ in 0..500 {
            let o = v.recognize(1.0, 1.0, &mut rng);
            assert!(o.attempts >= 1 && o.attempts <= v.max_attempts);
            assert_eq!(
                o.elapsed(),
                v.attempt_time * u64::from(o.attempts),
                "time = attempts x attempt_time"
            );
        }
    }

    #[test]
    fn success_prob_floor() {
        let v = VisionModel {
            base_success: 0.1,
            diversity_penalty: 1.0,
            density_penalty: 1.0,
            ..VisionModel::default()
        };
        assert!(v.attempt_success(1.0, 1.0) >= 0.05);
    }

    #[test]
    fn escalation_frequency_matches_analytic() {
        let v = VisionModel::default();
        let mut rng = SimRng::root(3).stream("vision", 0);
        let (div, den) = (0.8, 0.9);
        let n = 20_000;
        let fails = (0..n)
            .filter(|_| !v.recognize(div, den, &mut rng).success)
            .count();
        let got = fails as f64 / f64::from(n);
        let want = v.escalation_prob(div, den);
        assert!((got - want).abs() < 0.01, "got {got}, want {want}");
    }
}
