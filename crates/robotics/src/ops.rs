//! Robot operation state machines: phase-timed plans for the two
//! prototype units.
//!
//! **Transceiver manipulation** (Figure 1, §3.3.1): navigate to the port,
//! visually localize it among cluttered cabling, part the neighboring
//! cables, grip the pull tab (pressure on the transceiver body only),
//! extract, dwell, re-insert, verify. The grip is the mechanically risky
//! step; failures retry and ultimately escalate to a human.
//!
//! **Fiber + transceiver cleaning** (Figure 2, §3.3.2): detach the cable
//! from the transceiver, inspect every fiber core (< 30 s for 8 cores —
//! faster than a trained human), dry-clean, re-inspect, wet-clean if
//! needed, re-inspect, reassemble. "When the robot fails to verify the
//! cleanliness … it requests human support."
//!
//! Plans are produced as phase lists with sampled durations so traces can
//! show exactly where time goes (the Figure-2 demo in
//! `examples/cleaning_robot.rs` prints one).

use dcmaint_des::{SimDuration, Stream};
use dcmaint_faults::{EndFace, RobotFault, RobotFaultConfig, RobotPhaseClass};

use crate::vision::VisionModel;

/// One phase of a robot operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPhase {
    /// Drive/slide to the target rack position.
    Navigate,
    /// Vision: recognize and localize the target port/component.
    Localize,
    /// Gently part neighboring cables to create access.
    PartCables,
    /// Grip the transceiver pull tab.
    Grip,
    /// Extract the module from the cage.
    Extract,
    /// Power-drain dwell between extract and insert (the reseat "wait a
    /// few seconds", §3.2).
    Dwell,
    /// Re-insert the module.
    Insert,
    /// Detach the fiber cable from the transceiver (cleaning unit).
    DetachCable,
    /// Inspect fiber cores (per-core imaging).
    InspectCores,
    /// Dry cleaning pass.
    CleanDry,
    /// Wet cleaning pass.
    CleanWet,
    /// Reassemble cable onto transceiver.
    Reassemble,
    /// Route a replacement cable along the tray path (§3.2: "the laying
    /// of a new fiber in trunks running beside and above the racks").
    RouteCable,
    /// Swap a hardware unit (spare transceiver or switch chassis).
    SwapHardware,
    /// Post-operation link verification (light levels, BER soak).
    Verify,
}

impl OpPhase {
    /// Mechanical class of this phase for the maintenance-plane fault
    /// model (`dcmaint_faults::robot`).
    pub fn class(self) -> RobotPhaseClass {
        match self {
            OpPhase::Navigate => RobotPhaseClass::Motion,
            OpPhase::Localize | OpPhase::InspectCores => RobotPhaseClass::Vision,
            OpPhase::Grip => RobotPhaseClass::Grip,
            OpPhase::PartCables
            | OpPhase::Extract
            | OpPhase::Insert
            | OpPhase::DetachCable
            | OpPhase::CleanDry
            | OpPhase::CleanWet
            | OpPhase::Reassemble
            | OpPhase::RouteCable => RobotPhaseClass::Actuation,
            OpPhase::SwapHardware => RobotPhaseClass::Magazine,
            OpPhase::Dwell | OpPhase::Verify => RobotPhaseClass::Passive,
        }
    }

    /// True while the serviced component is out of its cage/socket: a
    /// fault here cannot be backed out safely (§3.4's half-extracted
    /// transceiver problem).
    pub fn component_exposed(self) -> bool {
        matches!(
            self,
            OpPhase::Extract | OpPhase::Dwell | OpPhase::Insert | OpPhase::SwapHardware
        )
    }

    /// Short label for traces.
    pub fn label(self) -> &'static str {
        match self {
            OpPhase::Navigate => "navigate",
            OpPhase::Localize => "localize",
            OpPhase::PartCables => "part-cables",
            OpPhase::Grip => "grip",
            OpPhase::Extract => "extract",
            OpPhase::Dwell => "dwell",
            OpPhase::Insert => "insert",
            OpPhase::DetachCable => "detach-cable",
            OpPhase::InspectCores => "inspect-cores",
            OpPhase::CleanDry => "clean-dry",
            OpPhase::CleanWet => "clean-wet",
            OpPhase::Reassemble => "reassemble",
            OpPhase::RouteCable => "route-cable",
            OpPhase::SwapHardware => "swap-hardware",
            OpPhase::Verify => "verify",
        }
    }
}

/// A timed phase in an executed plan.
#[derive(Debug, Clone, Copy)]
pub struct TimedPhase {
    /// The phase.
    pub phase: OpPhase,
    /// Sampled duration.
    pub duration: SimDuration,
}

/// How an operation ended once maintenance-plane faults are in play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// Completed autonomously.
    Completed,
    /// Could not finish the task; requested human support cleanly
    /// (vision gave up, cleanliness unverifiable, grip retries
    /// exhausted). The worksite is left safe.
    Escalated,
    /// The unit froze mid-operation (actuator stall or whole-unit
    /// breakdown). Nothing signals completion — only a watchdog
    /// notices.
    Stalled,
    /// The robot aborted but backed out safely: the component is
    /// re-inserted and the worksite is clean.
    AbortedSafe,
    /// The robot aborted with the component half-extracted: the link
    /// stays down and the port must be flagged for a human (§3.4).
    AbortedUnsafe,
}

impl OpOutcome {
    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            OpOutcome::Completed => "completed",
            OpOutcome::Escalated => "escalated",
            OpOutcome::Stalled => "stalled",
            OpOutcome::AbortedSafe => "aborted-safe",
            OpOutcome::AbortedUnsafe => "aborted-unsafe",
        }
    }

    /// True for the two abort outcomes.
    pub fn is_abort(self) -> bool {
        matches!(self, OpOutcome::AbortedSafe | OpOutcome::AbortedUnsafe)
    }
}

/// Outcome of executing an operation plan.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// The executed phases in order, with durations.
    pub phases: Vec<TimedPhase>,
    /// Whether the operation completed autonomously.
    pub success: bool,
    /// Whether the robot requested human support.
    pub escalated: bool,
    /// Full outcome classification (redundant with `success` /
    /// `escalated` for the two legacy outcomes; richer once
    /// [`afflict`] has run).
    pub outcome: OpOutcome,
    /// The maintenance-plane fault that ended the operation, if any.
    pub fault: Option<RobotFault>,
}

impl OpResult {
    /// A plan that completed autonomously.
    pub fn completed(phases: Vec<TimedPhase>) -> Self {
        OpResult {
            phases,
            success: true,
            escalated: false,
            outcome: OpOutcome::Completed,
            fault: None,
        }
    }

    /// A plan that ended in a clean request for human support.
    pub fn escalated(phases: Vec<TimedPhase>) -> Self {
        OpResult {
            phases,
            success: false,
            escalated: true,
            outcome: OpOutcome::Escalated,
            fault: None,
        }
    }

    /// Total hands-on time.
    pub fn total(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// Time spent in one phase kind.
    pub fn time_in(&self, phase: OpPhase) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| p.phase == phase)
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }
}

/// Run a planned operation through the maintenance-plane fault model:
/// roll each phase's hazards in order and truncate the plan at the
/// first fault. The faulted phase is charged a partial duration (the
/// fault strikes uniformly within it). Outcome classification:
///
/// * any fault while the component is exposed → [`OpOutcome::AbortedUnsafe`];
/// * a freezing fault (stall / unit breakdown) elsewhere → [`OpOutcome::Stalled`];
/// * any other fault elsewhere → [`OpOutcome::AbortedSafe`] (the robot
///   backs out and re-inserts).
///
/// With hazards disabled this makes no RNG draws and returns the plan
/// unchanged, so fault-free runs are byte-identical to the
/// pre-fault-model simulator.
pub fn afflict(plan: OpResult, cfg: &RobotFaultConfig, rng: &mut Stream) -> OpResult {
    if !cfg.enabled {
        return plan;
    }
    for (i, p) in plan.phases.iter().enumerate() {
        let Some(fault) = cfg.sample_phase_fault(p.phase.class(), p.duration, rng) else {
            continue;
        };
        let mut phases: Vec<TimedPhase> = plan.phases[..i].to_vec();
        phases.push(TimedPhase {
            phase: p.phase,
            duration: p.duration.mul_f64(rng.uniform()),
        });
        let outcome = if p.phase.component_exposed() {
            OpOutcome::AbortedUnsafe
        } else if fault.freezes_unit() {
            OpOutcome::Stalled
        } else {
            OpOutcome::AbortedSafe
        };
        return OpResult {
            phases,
            success: false,
            escalated: false,
            outcome,
            fault: Some(fault),
        };
    }
    plan
}

/// Timing calibration for robot operations. Defaults reproduce the
/// paper's stated numbers (§3.3.2): per-core inspection sized so 8 cores
/// finish in < 30 s, whole reseat/clean cycles in minutes.
#[derive(Debug, Clone)]
pub struct OpTimings {
    /// Travel speed along a row (gantry/AGV), m/s.
    pub travel_speed: f64,
    /// Fixed setup/undock time per dispatch.
    pub dispatch_overhead: SimDuration,
    /// Parting neighboring cables.
    pub part_cables: SimDuration,
    /// Grip attempt time.
    pub grip: SimDuration,
    /// Extract / insert move time.
    pub extract_insert: SimDuration,
    /// Reseat dwell ("waiting a few seconds", §3.2).
    pub dwell: SimDuration,
    /// Per-core end-face imaging time. 3 s/core + setup ⇒ 8 cores ≈ 27 s,
    /// satisfying the "< 30 s, less than a well-trained human" claim.
    pub inspect_per_core: SimDuration,
    /// Inspection rig setup per inspection pass.
    pub inspect_setup: SimDuration,
    /// Dry-clean pass (all cores).
    pub clean_dry: SimDuration,
    /// Wet-clean pass (all cores).
    pub clean_wet: SimDuration,
    /// Cable detach / reassemble.
    pub detach_reassemble: SimDuration,
    /// Link verification soak after physical work.
    pub verify: SimDuration,
    /// Mechanical grip failure probability per attempt (diversity adds).
    pub grip_failure_base: f64,
    /// Grip retries before escalation.
    pub grip_retries: u32,
    /// Routing a replacement cable, per meter of tray path (the slow,
    /// §3.2 "not trivial" part of a cable swap).
    pub route_cable_per_m: SimDuration,
    /// Fixed overhead of a cable swap (terminate, label, clean ends).
    pub route_cable_setup: SimDuration,
    /// Swapping a transceiver module from the on-board spares.
    pub swap_transceiver: SimDuration,
    /// Robotic switch-chassis swap (L4 only; includes re-plugging every
    /// cabled port).
    pub swap_switch: SimDuration,
}

impl Default for OpTimings {
    fn default() -> Self {
        OpTimings {
            travel_speed: 0.5,
            dispatch_overhead: SimDuration::from_secs(20),
            part_cables: SimDuration::from_secs(15),
            grip: SimDuration::from_secs(8),
            extract_insert: SimDuration::from_secs(6),
            dwell: SimDuration::from_secs(10),
            inspect_per_core: SimDuration::from_secs(3),
            inspect_setup: SimDuration::from_secs(3),
            clean_dry: SimDuration::from_secs(25),
            clean_wet: SimDuration::from_secs(40),
            detach_reassemble: SimDuration::from_secs(20),
            verify: SimDuration::from_secs(45),
            grip_failure_base: 0.015,
            grip_retries: 3,
            route_cable_per_m: SimDuration::from_secs(150),
            route_cable_setup: SimDuration::from_mins(18),
            swap_transceiver: SimDuration::from_secs(90),
            swap_switch: SimDuration::from_mins(95),
        }
    }
}

impl OpTimings {
    /// Travel time over `distance_m` meters plus dispatch overhead.
    pub fn travel(&self, distance_m: f64) -> SimDuration {
        self.dispatch_overhead
            + SimDuration::from_secs_f64(distance_m.max(0.0) / self.travel_speed.max(0.05))
    }

    /// Inspection time for an end-face with `cores` cores (one pass).
    pub fn inspection(&self, cores: u8) -> SimDuration {
        self.inspect_setup + self.inspect_per_core * u64::from(cores.max(1))
    }
}

/// Jitter a nominal duration by ±20% (mechanical repeatability).
fn jitter(d: SimDuration, rng: &mut Stream) -> SimDuration {
    d.mul_f64(rng.uniform_range(0.8, 1.2))
}

/// Execute a transceiver *reseat* (Figure 1 robot). `diversity` and
/// `density` drive the vision model; grip failures retry then escalate.
pub fn run_reseat(
    t: &OpTimings,
    vision: &VisionModel,
    travel_m: f64,
    diversity: f64,
    density: f64,
    rng: &mut Stream,
) -> OpResult {
    let mut phases = vec![TimedPhase {
        phase: OpPhase::Navigate,
        duration: t.travel(travel_m),
    }];
    // Vision.
    let v = vision.recognize(diversity, density, rng);
    phases.push(TimedPhase {
        phase: OpPhase::Localize,
        duration: v.elapsed(),
    });
    if !v.success {
        return OpResult::escalated(phases);
    }
    phases.push(TimedPhase {
        phase: OpPhase::PartCables,
        duration: jitter(t.part_cables, rng),
    });
    // Grip with retries.
    let p_fail = (t.grip_failure_base + 0.05 * diversity).clamp(0.0, 0.9);
    let mut gripped = false;
    for _ in 0..t.grip_retries.max(1) {
        phases.push(TimedPhase {
            phase: OpPhase::Grip,
            duration: jitter(t.grip, rng),
        });
        if !rng.chance(p_fail) {
            gripped = true;
            break;
        }
    }
    if !gripped {
        return OpResult::escalated(phases);
    }
    for phase in [
        (OpPhase::Extract, t.extract_insert),
        (OpPhase::Dwell, t.dwell),
        (OpPhase::Insert, t.extract_insert),
        (OpPhase::Verify, t.verify),
    ] {
        phases.push(TimedPhase {
            phase: phase.0,
            duration: jitter(phase.1, rng),
        });
    }
    OpResult::completed(phases)
}

/// Execute the full cleaning pipeline (Figure 2 robot) against real
/// contamination state. Mutates `end_face` through inspection/cleaning
/// passes; on success the end-face passes IEC inspection and is mated in
/// a clean environment. Escalates to a human if it cannot verify
/// cleanliness after the wet pass (§3.3.2).
pub fn run_clean(
    t: &OpTimings,
    vision: &VisionModel,
    travel_m: f64,
    diversity: f64,
    density: f64,
    end_face: &mut EndFace,
    rng: &mut Stream,
) -> OpResult {
    let cores = end_face.core_count() as u8;
    let mut phases = vec![TimedPhase {
        phase: OpPhase::Navigate,
        duration: t.travel(travel_m),
    }];
    // The cleaning unit also needs to recognize transceiver/cable type
    // (§3.3.2: "cameras and recognition models to determine the type").
    let v = vision.recognize(diversity, density, rng);
    phases.push(TimedPhase {
        phase: OpPhase::Localize,
        duration: v.elapsed(),
    });
    if !v.success {
        return OpResult::escalated(phases);
    }
    phases.push(TimedPhase {
        phase: OpPhase::DetachCable,
        duration: jitter(t.detach_reassemble, rng),
    });
    // Inspect.
    // The robot cleans to a margin below the IEC pass threshold so the
    // final reassembly mating (which transfers a trace of dirt even in
    // the controlled environment) cannot push a marginal face back over.
    const REASSEMBLY_MARGIN: f64 = 0.04;
    let clean_enough =
        |ef: &EndFace| ef.worst() <= dcmaint_faults::EndFace::PASS_THRESHOLD - REASSEMBLY_MARGIN;
    phases.push(TimedPhase {
        phase: OpPhase::InspectCores,
        duration: t.inspection(cores),
    });
    if !clean_enough(end_face) {
        // Dry pass + re-inspect.
        phases.push(TimedPhase {
            phase: OpPhase::CleanDry,
            duration: jitter(t.clean_dry, rng),
        });
        end_face.clean_dry(rng);
        phases.push(TimedPhase {
            phase: OpPhase::InspectCores,
            duration: t.inspection(cores),
        });
        if !clean_enough(end_face) {
            // Wet pass + re-inspect.
            phases.push(TimedPhase {
                phase: OpPhase::CleanWet,
                duration: jitter(t.clean_wet, rng),
            });
            end_face.clean_wet(rng);
            phases.push(TimedPhase {
                phase: OpPhase::InspectCores,
                duration: t.inspection(cores),
            });
        }
    }
    if !clean_enough(end_face) {
        // §3.3.2: request human support.
        return OpResult::escalated(phases);
    }
    // Reassemble in the controlled environment (minimal recontamination).
    end_face.mate(false, rng);
    phases.push(TimedPhase {
        phase: OpPhase::Reassemble,
        duration: jitter(t.detach_reassemble, rng),
    });
    phases.push(TimedPhase {
        phase: OpPhase::Verify,
        duration: jitter(t.verify, rng),
    });
    OpResult::completed(phases)
}

/// What a replacement operation swaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplaceKind {
    /// Spare transceiver from the robot's magazine (§3.3.2: "the robots
    /// can carry spares").
    Transceiver,
    /// A whole cable, re-laid along its tray route of `route_m` meters.
    Cable {
        /// Tray-route length of the cable being replaced, meters.
        route_m: f64,
    },
    /// Switch chassis (Level-4 automation only).
    SwitchHardware,
}

/// Execute a hardware replacement. Structure mirrors [`run_reseat`]:
/// navigate, localize, part cables, then the kind-specific swap work,
/// then verification. Vision failures and grip failures escalate.
pub fn run_replace(
    t: &OpTimings,
    vision: &VisionModel,
    travel_m: f64,
    diversity: f64,
    density: f64,
    kind: ReplaceKind,
    rng: &mut Stream,
) -> OpResult {
    let mut phases = vec![TimedPhase {
        phase: OpPhase::Navigate,
        duration: t.travel(travel_m),
    }];
    let v = vision.recognize(diversity, density, rng);
    phases.push(TimedPhase {
        phase: OpPhase::Localize,
        duration: v.elapsed(),
    });
    if !v.success {
        return OpResult::escalated(phases);
    }
    phases.push(TimedPhase {
        phase: OpPhase::PartCables,
        duration: jitter(t.part_cables, rng),
    });
    let p_fail = (t.grip_failure_base + 0.05 * diversity).clamp(0.0, 0.9);
    let mut gripped = false;
    for _ in 0..t.grip_retries.max(1) {
        phases.push(TimedPhase {
            phase: OpPhase::Grip,
            duration: jitter(t.grip, rng),
        });
        if !rng.chance(p_fail) {
            gripped = true;
            break;
        }
    }
    if !gripped {
        return OpResult::escalated(phases);
    }
    match kind {
        ReplaceKind::Transceiver => {
            phases.push(TimedPhase {
                phase: OpPhase::Extract,
                duration: jitter(t.extract_insert, rng),
            });
            phases.push(TimedPhase {
                phase: OpPhase::SwapHardware,
                duration: jitter(t.swap_transceiver, rng),
            });
            phases.push(TimedPhase {
                phase: OpPhase::Insert,
                duration: jitter(t.extract_insert, rng),
            });
        }
        ReplaceKind::Cable { route_m } => {
            phases.push(TimedPhase {
                phase: OpPhase::DetachCable,
                duration: jitter(t.detach_reassemble, rng),
            });
            let routing = t.route_cable_setup + t.route_cable_per_m.mul_f64(route_m.max(1.0));
            phases.push(TimedPhase {
                phase: OpPhase::RouteCable,
                duration: jitter(routing, rng),
            });
            phases.push(TimedPhase {
                phase: OpPhase::Reassemble,
                duration: jitter(t.detach_reassemble, rng),
            });
        }
        ReplaceKind::SwitchHardware => {
            phases.push(TimedPhase {
                phase: OpPhase::SwapHardware,
                duration: jitter(t.swap_switch, rng),
            });
        }
    }
    phases.push(TimedPhase {
        phase: OpPhase::Verify,
        duration: jitter(t.verify, rng),
    });
    OpResult::completed(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    fn rng() -> Stream {
        SimRng::root(11).stream("ops", 0)
    }

    #[test]
    fn replacement_durations_ordered_by_heft() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let mean = |kind: ReplaceKind, r: &mut Stream| -> f64 {
            let mut tot = 0.0;
            let mut n = 0;
            for _ in 0..100 {
                let res = run_replace(&t, &v, 5.0, 0.2, 0.2, kind, r);
                if res.success {
                    tot += res.total().as_secs_f64();
                    n += 1;
                }
            }
            tot / f64::from(n.max(1))
        };
        let xcvr = mean(ReplaceKind::Transceiver, &mut r);
        let cable = mean(ReplaceKind::Cable { route_m: 12.0 }, &mut r);
        let switch = mean(ReplaceKind::SwitchHardware, &mut r);
        assert!(xcvr < cable && cable < switch, "{xcvr} {cable} {switch}");
        // Transceiver swap: minutes. Cable re-lay: ~an hour for 12 m.
        assert!(xcvr < 10.0 * 60.0, "xcvr {xcvr}s");
        assert!(
            (20.0 * 60.0..120.0 * 60.0).contains(&cable),
            "cable {cable}s"
        );
    }

    #[test]
    fn cable_replacement_scales_with_route_length() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let total = |m: f64, r: &mut Stream| {
            run_replace(&t, &v, 0.0, 0.0, 0.0, ReplaceKind::Cable { route_m: m }, r)
                .total()
                .as_secs_f64()
        };
        let short: f64 = (0..20).map(|_| total(2.0, &mut r)).sum();
        let long: f64 = (0..20).map(|_| total(40.0, &mut r)).sum();
        assert!(long > 2.0 * short, "short {short} long {long}");
    }

    #[test]
    fn replace_ops_escalate_on_vision_failure() {
        let t = OpTimings::default();
        let v = VisionModel {
            base_success: 0.05,
            ..VisionModel::default()
        };
        let mut r = rng();
        let res = run_replace(&t, &v, 5.0, 1.0, 1.0, ReplaceKind::Transceiver, &mut r);
        assert!(res.escalated);
    }

    #[test]
    fn eight_core_inspection_under_30s() {
        let t = OpTimings::default();
        assert!(
            t.inspection(8) < SimDuration::from_secs(30),
            "paper claim C1: {} for 8 cores",
            t.inspection(8)
        );
        // And scales with core count.
        assert!(t.inspection(16) > t.inspection(8));
    }

    #[test]
    fn reseat_takes_minutes_not_hours() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let mut totals = Vec::new();
        for _ in 0..200 {
            let res = run_reseat(&t, &v, 10.0, 0.3, 0.3, &mut r);
            if res.success {
                totals.push(res.total().as_secs_f64());
            }
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        assert!(
            mean > 60.0 && mean < 600.0,
            "reseat mean {mean} s should be minutes-scale"
        );
    }

    #[test]
    fn clean_cycle_is_a_few_minutes() {
        // Paper claim C2: "This entire operation currently takes a few
        // minutes."
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let mut totals = Vec::new();
        for _ in 0..200 {
            let mut ef = EndFace::contaminated(8, 0.8, &mut r);
            let res = run_clean(&t, &v, 10.0, 0.3, 0.3, &mut ef, &mut r);
            if res.success {
                totals.push(res.total().as_secs_f64());
                assert!(ef.passes_inspection());
            }
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        assert!(
            mean > 120.0 && mean < 900.0,
            "clean mean {mean} s should be a few minutes"
        );
    }

    #[test]
    fn clean_skips_wet_pass_when_dry_suffices() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let mut wet_used = 0;
        let mut dry_only = 0;
        for _ in 0..300 {
            let mut ef = EndFace::contaminated(8, 1.0, &mut r);
            let res = run_clean(&t, &v, 0.0, 0.0, 0.0, &mut ef, &mut r);
            if !res.success {
                continue;
            }
            if res.time_in(OpPhase::CleanWet) > SimDuration::ZERO {
                wet_used += 1;
            } else if res.time_in(OpPhase::CleanDry) > SimDuration::ZERO {
                dry_only += 1;
            }
        }
        assert!(dry_only > 0, "some cleanings finish with dry pass only");
        assert!(wet_used > 0, "stubborn contamination triggers wet pass");
    }

    #[test]
    fn clean_on_pristine_face_skips_cleaning_entirely() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let mut ef = EndFace::pristine(8);
        let res = run_clean(&t, &v, 0.0, 0.0, 0.0, &mut ef, &mut r);
        assert!(res.success);
        assert_eq!(res.time_in(OpPhase::CleanDry), SimDuration::ZERO);
        assert_eq!(res.time_in(OpPhase::CleanWet), SimDuration::ZERO);
    }

    #[test]
    fn high_diversity_causes_escalations() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let esc = (0..2000)
            .filter(|_| {
                let res = run_reseat(&t, &v, 0.0, 1.0, 1.0, &mut r);
                res.escalated
            })
            .count();
        assert!(esc > 10, "diverse cluttered fleets escalate: {esc}/2000");
        let esc0 = (0..2000)
            .filter(|_| run_reseat(&t, &v, 0.0, 0.0, 0.0, &mut r).escalated)
            .count();
        assert!(esc0 < esc / 4, "standardized fleet escalates less: {esc0}");
    }

    #[test]
    fn travel_time_scales_with_distance() {
        let t = OpTimings::default();
        let near = t.travel(1.0);
        let far = t.travel(50.0);
        assert!(far > near);
        assert_eq!(
            far.saturating_sub(near),
            SimDuration::from_secs_f64(49.0 / 0.5)
        );
    }

    #[test]
    fn phases_ordered_sensibly() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let res = run_reseat(&t, &v, 5.0, 0.0, 0.0, &mut r);
        assert!(res.success);
        let order: Vec<OpPhase> = res.phases.iter().map(|p| p.phase).collect();
        assert_eq!(order[0], OpPhase::Navigate);
        assert_eq!(order[1], OpPhase::Localize);
        assert_eq!(*order.last().unwrap(), OpPhase::Verify);
        let extract_pos = order.iter().position(|&p| p == OpPhase::Extract).unwrap();
        let insert_pos = order.iter().position(|&p| p == OpPhase::Insert).unwrap();
        assert!(extract_pos < insert_pos);
    }

    #[test]
    fn escalated_ops_report_partial_time() {
        // Even failed ops consume robot time (the fleet model charges it).
        let t = OpTimings::default();
        let v = VisionModel {
            base_success: 0.05,
            ..VisionModel::default()
        };
        let mut r = rng();
        let res = run_reseat(&t, &v, 5.0, 1.0, 1.0, &mut r);
        assert!(res.escalated);
        assert!(res.total() > SimDuration::from_secs(10));
    }

    fn one_phase(phase: OpPhase, secs: u64) -> OpResult {
        OpResult::completed(vec![TimedPhase {
            phase,
            duration: SimDuration::from_secs(secs),
        }])
    }

    #[test]
    fn afflict_disabled_is_identity_and_draws_nothing() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let mut r = rng();
        let plan = run_reseat(&t, &v, 5.0, 0.0, 0.0, &mut r);
        let before = plan.total();
        let mut a = rng();
        let mut b = rng();
        let out = afflict(plan, &RobotFaultConfig::default(), &mut a);
        assert_eq!(out.outcome, OpOutcome::Completed);
        assert_eq!(out.total(), before);
        assert_eq!(a.uniform(), b.uniform(), "no draws when disabled");
    }

    #[test]
    fn breakdown_outside_exposed_window_stalls() {
        let cfg = RobotFaultConfig {
            enabled: true,
            unit_mtbf: SimDuration::from_secs(1), // hazard ≈ 1 over 60 s
            ..RobotFaultConfig::default()
        };
        let mut r = rng();
        let out = afflict(one_phase(OpPhase::Navigate, 60), &cfg, &mut r);
        assert_eq!(out.outcome, OpOutcome::Stalled);
        assert_eq!(out.fault, Some(RobotFault::UnitBreakdown));
        assert!(!out.success && !out.escalated);
        assert!(
            out.total() <= SimDuration::from_secs(60),
            "partial phase charged"
        );
    }

    #[test]
    fn fault_in_exposed_window_aborts_unsafe() {
        let cfg = RobotFaultConfig {
            enabled: true,
            unit_mtbf: SimDuration::from_secs(1),
            ..RobotFaultConfig::default()
        };
        let mut r = rng();
        let out = afflict(one_phase(OpPhase::Extract, 60), &cfg, &mut r);
        assert_eq!(out.outcome, OpOutcome::AbortedUnsafe);
        assert!(out.outcome.is_abort());
    }

    #[test]
    fn recoverable_fault_outside_window_aborts_safe() {
        let cfg = RobotFaultConfig {
            enabled: true,
            unit_mtbf: SimDuration::from_hours(1_000_000),
            vision_misid_prob: 1.0,
            ..RobotFaultConfig::default()
        };
        let mut r = rng();
        let out = afflict(one_phase(OpPhase::Localize, 30), &cfg, &mut r);
        assert_eq!(out.outcome, OpOutcome::AbortedSafe);
        assert_eq!(out.fault, Some(RobotFault::VisionMisidentify));
    }

    #[test]
    fn afflict_truncates_at_first_fault() {
        let t = OpTimings::default();
        let v = VisionModel::default();
        let cfg = RobotFaultConfig::chaos();
        let mut r = rng();
        for _ in 0..200 {
            let plan = run_reseat(&t, &v, 5.0, 0.2, 0.2, &mut r);
            let planned = plan.phases.len();
            let planned_total = plan.total();
            let out = afflict(plan, &cfg, &mut r);
            assert!(out.phases.len() <= planned);
            assert!(out.total() <= planned_total);
            if out.fault.is_some() {
                assert_ne!(out.outcome, OpOutcome::Completed);
            }
        }
    }

    #[test]
    fn phase_classes_cover_exposure_semantics() {
        // Exposed phases are exactly the extract→insert/swap window.
        for p in [
            OpPhase::Extract,
            OpPhase::Dwell,
            OpPhase::Insert,
            OpPhase::SwapHardware,
        ] {
            assert!(p.component_exposed(), "{:?}", p);
        }
        for p in [
            OpPhase::Navigate,
            OpPhase::Localize,
            OpPhase::Verify,
            OpPhase::CleanDry,
        ] {
            assert!(!p.component_exposed(), "{:?}", p);
        }
        assert_eq!(OpPhase::Grip.class(), RobotPhaseClass::Grip);
        assert_eq!(OpPhase::SwapHardware.class(), RobotPhaseClass::Magazine);
    }
}
