//! # dcmaint-robotics — the simulated robot fleet
//!
//! Simulation stand-in for the paper's prototype hardware (Figures 1–2),
//! calibrated to its stated timings: per-core end-face inspection sized
//! so 8 cores finish under 30 s, full manipulate-and-clean cycles in
//! minutes, dispatch in seconds.
//!
//! * [`vision`] — perception with diversity/density-driven error and
//!   bounded retries (the §3.3.3 "largest challenges");
//! * [`ops`] — phase-timed state machines for transceiver reseat
//!   (Figure 1) and the inspect → dry → wet → reassemble cleaning
//!   pipeline (Figure 2), operating on real contamination state from
//!   `dcmaint-faults`;
//! * [`fleet`] — modular units with row/hall mobility scopes (§3.4),
//!   nearest-available dispatch, spares, and robot breakdowns.
//!
//! What this crate deliberately does *not* know about: tickets, drains,
//! escalation policy. Robots execute physical operations; deciding what
//! to do and when is `maintctl`'s job — that separation *is* the paper's
//! control-plane thesis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod ops;
pub mod vision;

pub use fleet::{FleetConfig, MobilityScope, RobotAssignment, RobotFleet, RobotUnit, UnitHealth};
pub use ops::{
    afflict, run_clean, run_replace, run_reseat, OpOutcome, OpPhase, OpResult, OpTimings,
    ReplaceKind, TimedPhase,
};
pub use vision::{VisionModel, VisionOutcome};
