//! Online predictive-failure scorer — §4's machine-learning opportunity.
//!
//! "This also creates new opportunities to use machine learning
//! techniques to predict failures and detect related network behavior
//! patterns." The scorer is a deliberately simple online logistic
//! regression over the fixed telemetry feature vector
//! ([`dcmaint_telemetry::features`]): enough ML to demonstrate the
//! control loop (score links → schedule predictive maintenance on the
//! riskiest → measure prevented incidents) without dragging in a
//! framework. Training is SGD on (features, did-it-fail-within-horizon)
//! labels that the scenario harness produces as ground truth unfolds.

use dcmaint_telemetry::FEATURE_DIM;

/// Online logistic model.
#[derive(Debug, Clone)]
pub struct Predictor {
    weights: [f64; FEATURE_DIM],
    bias: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    seen: u64,
}

impl Default for Predictor {
    fn default() -> Self {
        Self::new()
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Predictor {
    /// Fresh model. The bias starts negative: failures are rare, so the
    /// prior risk is low.
    pub fn new() -> Self {
        Predictor {
            weights: [0.0; FEATURE_DIM],
            bias: -2.0,
            learning_rate: 0.15,
            l2: 1e-4,
            seen: 0,
        }
    }

    /// Predicted failure risk in `(0, 1)`.
    pub fn score(&self, features: &[f64; FEATURE_DIM]) -> f64 {
        let z: f64 = self
            .weights
            .iter()
            .zip(features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// One SGD step on an observed outcome (`failed` = the link had an
    /// incident within the label horizon).
    pub fn train(&mut self, features: &[f64; FEATURE_DIM], failed: bool) {
        let y = if failed { 1.0 } else { 0.0 };
        let p = self.score(features);
        let err = p - y;
        for (w, &x) in self.weights.iter_mut().zip(features) {
            *w -= self.learning_rate * (err * x + self.l2 * *w);
        }
        self.bias -= self.learning_rate * err;
        self.seen += 1;
    }

    /// Training examples consumed.
    pub fn examples_seen(&self) -> u64 {
        self.seen
    }

    /// Re-anchor the intercept to an externally estimated base failure
    /// rate (the autonomic plane's drift estimator feeds this).
    ///
    /// The bias is nudged a bounded fraction of the way toward
    /// `logit(base_rate)`, and only while the model is still young
    /// (few SGD examples): once `seen` is large the data already speaks
    /// through the intercept and the nudge decays to zero. Deterministic
    /// — no RNG, and idempotent at convergence.
    pub fn reprior(&mut self, base_rate: f64) {
        let r = base_rate.clamp(1e-6, 1.0 - 1e-6);
        let target = (r / (1.0 - r)).ln();
        // Full trust before any examples, fading out by ~200 examples.
        let trust = 0.5 / (1.0 + self.seen as f64 / 50.0);
        self.bias += trust * (target - self.bias);
    }

    /// Current weights (for report tables — which features the model
    /// learned to care about).
    pub fn weights(&self) -> &[f64; FEATURE_DIM] {
        &self.weights
    }

    /// Append the model's learned state to a checkpoint. Hyperparameters
    /// (`learning_rate`, `l2`) are recorded too — they are public and a
    /// scenario may have tuned them.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        for w in &self.weights {
            enc.f64(*w);
        }
        enc.f64(self.bias);
        enc.f64(self.learning_rate);
        enc.f64(self.l2);
        enc.u64(self.seen);
    }

    /// Restore a model from a checkpoint. Inverse of [`Predictor::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let mut weights = [0.0; FEATURE_DIM];
        for w in &mut weights {
            *w = dec.f64()?;
        }
        Ok(Predictor {
            weights,
            bias: dec.f64()?,
            learning_rate: dec.f64()?,
            l2: dec.f64()?,
            seen: dec.u64()?,
        })
    }
}

/// Running precision/recall bookkeeping for the predictive loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct PredictionStats {
    /// Flagged and did fail.
    pub true_pos: u64,
    /// Flagged but did not fail.
    pub false_pos: u64,
    /// Not flagged but failed.
    pub false_neg: u64,
    /// Not flagged, did not fail.
    pub true_neg: u64,
}

impl PredictionStats {
    /// Record one resolved prediction.
    pub fn record(&mut self, flagged: bool, failed: bool) {
        match (flagged, failed) {
            (true, true) => self.true_pos += 1,
            (true, false) => self.false_pos += 1,
            (false, true) => self.false_neg += 1,
            (false, false) => self.true_neg += 1,
        }
    }

    /// Precision: of flagged links, how many actually failed.
    pub fn precision(&self) -> f64 {
        let d = self.true_pos + self.false_pos;
        if d == 0 {
            0.0
        } else {
            self.true_pos as f64 / d as f64
        }
    }

    /// Recall: of failing links, how many were flagged.
    pub fn recall(&self) -> f64 {
        let d = self.true_pos + self.false_neg;
        if d == 0 {
            0.0
        } else {
            self.true_pos as f64 / d as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total resolved predictions.
    pub fn total(&self) -> u64 {
        self.true_pos + self.false_pos + self.false_neg + self.true_neg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    /// Synthetic ground truth: risk is driven by features 0 (loss) and 1
    /// (flaps); the model should learn that.
    fn synth_example(rng: &mut dcmaint_des::Stream) -> ([f64; FEATURE_DIM], bool) {
        let mut f = [0.0; FEATURE_DIM];
        for x in f.iter_mut() {
            *x = rng.uniform();
        }
        let p_fail = 0.05 + 0.6 * f[0] + 0.3 * f[1];
        (f, rng.chance(p_fail))
    }

    #[test]
    fn untrained_model_predicts_low_risk() {
        let p = Predictor::new();
        let f = [0.0; FEATURE_DIM];
        assert!(p.score(&f) < 0.2);
    }

    #[test]
    fn learns_informative_features() {
        let mut rng = SimRng::root(1).stream("predict", 0);
        let mut model = Predictor::new();
        for _ in 0..20_000 {
            let (f, y) = synth_example(&mut rng);
            model.train(&f, y);
        }
        // Weight on loss (feature 0) should dominate weight on the
        // uninformative medium features (5, 6).
        let w = model.weights();
        assert!(w[0] > 0.5, "loss weight {}", w[0]);
        assert!(w[0] > 3.0 * w[5].abs(), "w0 {} vs w5 {}", w[0], w[5]);
        // Risky input scores much higher than clean input.
        let mut risky = [0.0; FEATURE_DIM];
        risky[0] = 1.0;
        risky[1] = 1.0;
        let clean = [0.0; FEATURE_DIM];
        assert!(model.score(&risky) > 2.0 * model.score(&clean));
    }

    #[test]
    fn discrimination_beats_chance() {
        let mut rng = SimRng::root(2).stream("predict", 0);
        let mut model = Predictor::new();
        for _ in 0..10_000 {
            let (f, y) = synth_example(&mut rng);
            model.train(&f, y);
        }
        // Hold-out AUC-ish check: mean score of failed > mean of ok.
        let mut s_fail = 0.0;
        let mut n_fail = 0.0;
        let mut s_ok = 0.0;
        let mut n_ok = 0.0;
        for _ in 0..5_000 {
            let (f, y) = synth_example(&mut rng);
            let s = model.score(&f);
            if y {
                s_fail += s;
                n_fail += 1.0;
            } else {
                s_ok += s;
                n_ok += 1.0;
            }
        }
        assert!(s_fail / n_fail > 1.3 * (s_ok / n_ok));
    }

    #[test]
    fn reprior_moves_young_models_and_fades_with_evidence() {
        // Fresh model, higher observed base rate: bias rises toward
        // logit(0.3) ≈ -0.847 but stays bounded by the trust factor.
        let mut young = Predictor::new();
        let before = young.score(&[0.0; FEATURE_DIM]);
        young.reprior(0.3);
        let after = young.score(&[0.0; FEATURE_DIM]);
        assert!(after > before, "reprior must raise a too-low prior");
        assert!(after < 0.3, "single nudge stays bounded");
        // Repeated repriors converge toward the target rate.
        for _ in 0..64 {
            young.reprior(0.3);
        }
        assert!((young.score(&[0.0; FEATURE_DIM]) - 0.3).abs() < 0.02);

        // A well-trained model barely moves: the data already spoke.
        let mut rng = SimRng::root(7).stream("predict", 0);
        let mut old = Predictor::new();
        for _ in 0..5_000 {
            let (f, y) = synth_example(&mut rng);
            old.train(&f, y);
        }
        let probe = [0.5; FEATURE_DIM];
        let before = old.score(&probe);
        old.reprior(0.9);
        let after = old.score(&probe);
        assert!(
            (after - before).abs() < 0.05,
            "mature model moved {before} -> {after}"
        );
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_precision_recall() {
        let mut s = PredictionStats::default();
        // 3 TP, 1 FP, 2 FN, 4 TN.
        for _ in 0..3 {
            s.record(true, true);
        }
        s.record(true, false);
        for _ in 0..2 {
            s.record(false, true);
        }
        for _ in 0..4 {
            s.record(false, false);
        }
        assert!((s.precision() - 0.75).abs() < 1e-12);
        assert!((s.recall() - 0.6).abs() < 1e-12);
        assert!(s.f1() > 0.6 && s.f1() < 0.75);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PredictionStats::default();
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }
}
