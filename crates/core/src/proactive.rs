//! Proactive maintenance campaigns — §4's worked example, literally.
//!
//! "During periods of low utilization, automation hardware can be used
//! for proactive maintenance at little to no additional cost. For
//! example, if several links on a switch have been fixed by reseating
//! transceivers, the system could proactively reseat all transceivers on
//! that switch, even if no issues have been reported."
//!
//! The planner keeps a per-switch count of reseat-fixes within a rolling
//! window. When a switch crosses the threshold *and* fabric utilization
//! is below the campaign gate, it emits a campaign: reseat (or clean)
//! every cabled port on that switch. A cooldown prevents re-campaigning
//! the same switch immediately.

use std::collections::BTreeMap;

use dcmaint_dcnet::{LinkId, NodeId, Topology};
use dcmaint_des::{SimDuration, SimTime};

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct ProactiveConfig {
    /// Reseat-fixes on one switch within the window that trigger a
    /// campaign ("several links", §4).
    pub trigger_count: usize,
    /// Rolling window for counting reseat-fixes.
    pub window: SimDuration,
    /// Fabric utilization must be below this to launch (campaigns run in
    /// the diurnal trough).
    pub utilization_gate: f64,
    /// Cooldown before the same switch can campaign again.
    pub cooldown: SimDuration,
}

impl Default for ProactiveConfig {
    fn default() -> Self {
        ProactiveConfig {
            trigger_count: 3,
            window: SimDuration::from_days(7),
            utilization_gate: 0.35,
            cooldown: SimDuration::from_days(14),
        }
    }
}

/// A launched campaign: proactively service these links (all cabled
/// ports of the switch, §4).
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The switch whose ports get serviced.
    pub switch: NodeId,
    /// Links to proactively reseat, in port order.
    pub links: Vec<LinkId>,
    /// When the campaign was decided.
    pub decided_at: SimTime,
}

/// The campaign planner.
#[derive(Debug)]
pub struct ProactivePlanner {
    cfg: ProactiveConfig,
    /// (switch → reseat-fix timestamps within window).
    fixes: BTreeMap<NodeId, Vec<SimTime>>,
    /// (switch → last campaign time).
    last_campaign: BTreeMap<NodeId, SimTime>,
}

impl ProactivePlanner {
    /// Planner with the given config.
    pub fn new(cfg: ProactiveConfig) -> Self {
        ProactivePlanner {
            cfg,
            fixes: BTreeMap::new(),
            last_campaign: BTreeMap::new(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &ProactiveConfig {
        &self.cfg
    }

    /// Retune the campaign trigger online (autonomic Plan step). The
    /// count is clamped to ≥ 1; save/restore deliberately excludes
    /// config, so a tuner must re-apply its knob after a restore (the
    /// autonomic plane snapshots the knob itself and does exactly that).
    pub fn set_trigger_count(&mut self, count: usize) {
        self.cfg.trigger_count = count.max(1);
    }

    /// Record that a reseat fixed a link; both endpoint switches get
    /// credit (the socket could be at fault on either side).
    pub fn record_reseat_fix(&mut self, topo: &Topology, link: LinkId, now: SimTime) {
        let (a, b) = topo.endpoints(link);
        for n in [a, b] {
            if topo.node(n).is_switch() {
                self.fixes.entry(n).or_default().push(now);
            }
        }
    }

    fn trim(&mut self, now: SimTime) {
        let w = self.cfg.window;
        for v in self.fixes.values_mut() {
            v.retain(|&t| now.since(t) <= w);
        }
    }

    /// Evaluate the trigger: given current fabric utilization, return
    /// campaigns to launch now. Launched switches enter cooldown and
    /// their fix history clears.
    pub fn evaluate(&mut self, topo: &Topology, utilization: f64, now: SimTime) -> Vec<Campaign> {
        if utilization >= self.cfg.utilization_gate {
            return Vec::new();
        }
        self.trim(now);
        let mut out = Vec::new();
        let candidates: Vec<NodeId> = self
            .fixes
            .iter()
            .filter(|(_, v)| v.len() >= self.cfg.trigger_count)
            .map(|(&n, _)| n)
            .collect();
        for switch in candidates {
            if let Some(&last) = self.last_campaign.get(&switch) {
                if now.since(last) < self.cfg.cooldown {
                    continue;
                }
            }
            let links = topo.links_of(switch);
            if links.is_empty() {
                continue;
            }
            self.last_campaign.insert(switch, now);
            self.fixes.remove(&switch);
            out.push(Campaign {
                switch,
                links,
                decided_at: now,
            });
        }
        // Deterministic ordering for reproducibility.
        out.sort_by_key(|c| c.switch);
        out
    }

    /// Append the planner's fix history and cooldown ledger to a
    /// checkpoint. Configuration is not recorded — the restoring side
    /// rebuilds the planner from the same `ProactiveConfig`.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.usize(self.fixes.len());
        for (n, times) in &self.fixes {
            enc.u64(n.key());
            enc.usize(times.len());
            for t in times {
                enc.u64(t.as_micros());
            }
        }
        enc.usize(self.last_campaign.len());
        for (n, t) in &self.last_campaign {
            enc.u64(n.key());
            enc.u64(t.as_micros());
        }
    }

    /// Restore checkpointed state into this planner. Inverse of
    /// [`ProactivePlanner::save`].
    pub fn restore(&mut self, dec: &mut dcmaint_ckpt::Dec) -> Result<(), dcmaint_ckpt::CkptError> {
        let n_fixes = dec.usize()?;
        self.fixes.clear();
        for _ in 0..n_fixes {
            let node = NodeId::from_index(dec.u64()? as usize);
            let n_times = dec.usize()?;
            let mut times = Vec::with_capacity(n_times);
            for _ in 0..n_times {
                times.push(SimTime::from_micros(dec.u64()?));
            }
            self.fixes.insert(node, times);
        }
        let n_last = dec.usize()?;
        self.last_campaign.clear();
        for _ in 0..n_last {
            let node = NodeId::from_index(dec.u64()? as usize);
            let t = SimTime::from_micros(dec.u64()?);
            self.last_campaign.insert(node, t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::DiversityProfile;
    use dcmaint_des::SimRng;

    fn topo() -> Topology {
        leaf_spine(
            2,
            2,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        )
    }

    fn at(hours: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(hours)
    }

    fn planner() -> ProactivePlanner {
        ProactivePlanner::new(ProactiveConfig::default())
    }

    #[test]
    fn no_fixes_no_campaign() {
        let t = topo();
        let mut p = planner();
        assert!(p.evaluate(&t, 0.1, at(1)).is_empty());
    }

    #[test]
    fn several_fixes_trigger_campaign_in_trough() {
        let t = topo();
        let mut p = planner();
        // Three different uplinks of spine-0 fixed by reseats.
        let spine = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        let links = t.links_of(spine);
        assert!(links.len() >= 2);
        for (i, &l) in links.iter().take(3).enumerate() {
            p.record_reseat_fix(&t, l, at(i as u64));
        }
        // links.len() is only 2 for this small fabric; add again to hit 3.
        p.record_reseat_fix(&t, links[0], at(5));
        let campaigns = p.evaluate(&t, 0.2, at(6));
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].switch, spine);
        // Campaign covers every cabled port of the switch.
        assert_eq!(campaigns[0].links, t.links_of(spine));
    }

    #[test]
    fn utilization_gate_blocks_campaigns() {
        let t = topo();
        let mut p = planner();
        let spine = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        for i in 0..4 {
            p.record_reseat_fix(&t, t.links_of(spine)[0], at(i));
        }
        assert!(p.evaluate(&t, 0.9, at(5)).is_empty(), "peak hours: hold");
        // Both endpoint switches of the repeatedly-fixed uplink campaign.
        assert_eq!(p.evaluate(&t, 0.1, at(6)).len(), 2, "trough: go");
    }

    #[test]
    fn window_expiry_resets_count() {
        let t = topo();
        let mut p = planner();
        let spine = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        let l = t.links_of(spine)[0];
        // Three fixes, but spread over 3 weeks — never 3 within 7 days.
        p.record_reseat_fix(&t, l, at(0));
        p.record_reseat_fix(&t, l, at(10 * 24));
        p.record_reseat_fix(&t, l, at(20 * 24));
        assert!(p.evaluate(&t, 0.1, at(20 * 24 + 1)).is_empty());
    }

    #[test]
    fn cooldown_prevents_recampaign() {
        let t = topo();
        let mut p = planner();
        let spine = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        let l = t.links_of(spine)[0];
        for i in 0..3 {
            p.record_reseat_fix(&t, l, at(i));
        }
        // Both endpoints (spine and leaf) campaign.
        assert_eq!(p.evaluate(&t, 0.1, at(4)).len(), 2);
        // New fixes right after: cooldown blocks.
        for i in 5..8 {
            p.record_reseat_fix(&t, l, at(i));
        }
        assert!(p.evaluate(&t, 0.1, at(9)).is_empty());
        // After cooldown (14 d), fixes within window re-trigger.
        for i in 0..3 {
            p.record_reseat_fix(&t, l, at(15 * 24 + i));
        }
        assert_eq!(p.evaluate(&t, 0.1, at(15 * 24 + 4)).len(), 2);
    }

    #[test]
    fn both_switch_endpoints_credited() {
        let t = topo();
        let mut p = planner();
        // A leaf-spine uplink credits both the leaf and the spine.
        let uplink = t
            .link_ids()
            .find(|&l| {
                let (a, b) = t.endpoints(l);
                t.node(a).is_switch() && t.node(b).is_switch()
            })
            .unwrap();
        for i in 0..3 {
            p.record_reseat_fix(&t, uplink, at(i));
        }
        let campaigns = p.evaluate(&t, 0.1, at(4));
        assert_eq!(campaigns.len(), 2, "both endpoint switches campaign");
    }

    #[test]
    fn server_endpoint_not_credited() {
        let t = topo();
        let mut p = planner();
        let access = t
            .link_ids()
            .find(|&l| {
                let (a, b) = t.endpoints(l);
                !(t.node(a).is_switch() && t.node(b).is_switch())
            })
            .unwrap();
        for i in 0..5 {
            p.record_reseat_fix(&t, access, at(i));
        }
        let campaigns = p.evaluate(&t, 0.1, at(6));
        // Only the switch side campaigns, never the server.
        assert_eq!(campaigns.len(), 1);
        assert!(t.node(campaigns[0].switch).is_switch());
    }
}
