//! Right-provisioning advisor — §1/§2's economic argument, quantified.
//!
//! "There is real potential for right-provisioning redundant hardware
//! components, thus reducing the need for excessive overprovisioned
//! online redundancy due to greater control over the window of
//! vulnerability during hardware failures."
//!
//! Model: a link group needs `k` working members out of `n` provisioned
//! (k-of-n redundancy, e.g. an 8-uplink leaf that needs 6 for peak
//! load). Each member fails at rate λ = 1/MTBF and is repaired at rate
//! μ = 1/MTTR, independently. Steady-state per-member availability is
//! a = μ/(λ+μ), and group availability is the binomial tail
//! P(X ≥ k), X ~ Bin(n, a).
//!
//! The advisor inverts this: given MTBF, MTTR, k, and a target
//! availability, find the minimum n. Because a human MTTR is days and a
//! robot MTTR is minutes (experiments E1/E7), the required n drops —
//! that delta *is* the right-provisioning saving, priced via
//! [`CostModel::redundant_link_annual`](dcmaint_metrics::CostModel).

use dcmaint_des::SimDuration;

/// Steady-state availability of one member: μ/(λ+μ) with λ=1/MTBF,
/// μ=1/MTTR.
pub fn member_availability(mtbf: SimDuration, mttr: SimDuration) -> f64 {
    let f = mtbf.as_secs_f64();
    let r = mttr.as_secs_f64();
    if f <= 0.0 {
        return 0.0;
    }
    if r <= 0.0 {
        return 1.0;
    }
    f / (f + r)
}

/// P(X ≥ k) for X ~ Bin(n, p): probability at least `k` of `n` members
/// are up. Computed with a numerically-stable incremental binomial.
pub fn k_of_n_availability(n: usize, k: usize, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    // Sum P(X = i) for i in k..=n via log-space terms.
    let mut total = 0.0;
    for i in k..=n {
        total += binom_pmf(n, i, p);
    }
    total.min(1.0)
}

fn binom_pmf(n: usize, i: usize, p: f64) -> f64 {
    if p == 0.0 {
        return if i == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if i == n { 1.0 } else { 0.0 };
    }
    // ln C(n,i) + i ln p + (n-i) ln(1-p)
    let ln_c = ln_factorial(n) - ln_factorial(i) - ln_factorial(n - i);
    (ln_c + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp()
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Advisor output for one (MTTR, target) point.
#[derive(Debug, Clone)]
pub struct ProvisioningAdvice {
    /// Needed working members.
    pub k: usize,
    /// Minimum members to provision.
    pub n: usize,
    /// Spare members beyond k.
    pub spares: usize,
    /// Achieved group availability at n.
    pub achieved: f64,
    /// Per-member availability used.
    pub member_availability: f64,
}

/// Minimum `n ≥ k` such that k-of-n availability meets `target`, given
/// member MTBF/MTTR. Caps the search at `k + 64` (beyond that the
/// request is infeasible for any sane fleet and the cap is returned).
pub fn advise(mtbf: SimDuration, mttr: SimDuration, k: usize, target: f64) -> ProvisioningAdvice {
    let a = member_availability(mtbf, mttr);
    let mut n = k.max(1);
    let cap = k + 64;
    loop {
        let achieved = k_of_n_availability(n, k, a);
        if achieved >= target || n >= cap {
            return ProvisioningAdvice {
                k,
                n,
                spares: n - k,
                achieved,
                member_availability: a,
            };
        }
        n += 1;
    }
}

/// Observed MTBF/MTTR from windowed telemetry counts: `up_time` spread
/// over `failures` gives MTBF, `down_time` over `repairs` gives MTTR.
/// Zero denominators fall back to the supplied priors — early windows
/// with no incidents must not read as "infinite reliability" and drive
/// the advisor to zero spares. The autonomic Plan step feeds this
/// straight into [`advise`].
pub fn observed_rates(
    up_time: SimDuration,
    failures: u64,
    down_time: SimDuration,
    repairs: u64,
    prior_mtbf: SimDuration,
    prior_mttr: SimDuration,
) -> (SimDuration, SimDuration) {
    let mtbf = match up_time.as_micros().checked_div(failures) {
        Some(us) if us > 0 => SimDuration::from_micros(us),
        _ => prior_mtbf,
    };
    let mttr = match down_time.as_micros().checked_div(repairs) {
        Some(us) if us > 0 => SimDuration::from_micros(us),
        _ => prior_mttr,
    };
    (mtbf, mttr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_availability_formula() {
        // MTBF 99 h, MTTR 1 h → 0.99.
        let a = member_availability(SimDuration::from_hours(99), SimDuration::from_hours(1));
        assert!((a - 0.99).abs() < 1e-9);
        assert_eq!(
            member_availability(SimDuration::ZERO, SimDuration::from_hours(1)),
            0.0
        );
        assert_eq!(
            member_availability(SimDuration::from_hours(1), SimDuration::ZERO),
            1.0
        );
    }

    #[test]
    fn k_of_n_edge_cases() {
        assert_eq!(k_of_n_availability(4, 0, 0.5), 1.0);
        assert_eq!(k_of_n_availability(2, 3, 0.99), 0.0);
        // 1-of-1: just p.
        assert!((k_of_n_availability(1, 1, 0.97) - 0.97).abs() < 1e-12);
        // 1-of-2: 1-(1-p)^2.
        let p = 0.9;
        assert!((k_of_n_availability(2, 1, p) - (1.0 - 0.01)).abs() < 1e-9);
    }

    #[test]
    fn binomial_sums_to_one() {
        let n = 12;
        let p = 0.37;
        let total: f64 = (0..=n).map(|i| binom_pmf(n, i, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_members_more_availability() {
        let p = 0.95;
        let mut prev = 0.0;
        for n in 4..10 {
            let a = k_of_n_availability(n, 4, p);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn faster_repair_needs_fewer_spares() {
        // The paper's core economic claim. MTBF 60 d; human MTTR 2 d vs
        // robot MTTR 10 min; need 8 working, target 99.99%.
        let mtbf = SimDuration::from_days(60);
        let human = advise(mtbf, SimDuration::from_days(2), 8, 0.9999);
        let robot = advise(mtbf, SimDuration::from_mins(10), 8, 0.9999);
        assert!(
            human.spares > robot.spares,
            "human {} vs robot {} spares",
            human.spares,
            robot.spares
        );
        assert!(
            robot.spares <= 1,
            "minutes-scale MTTR needs at most one spare, got {}",
            robot.spares
        );
        assert!(human.achieved >= 0.9999);
        assert!(robot.achieved >= 0.9999);
    }

    #[test]
    fn tighter_target_needs_more_spares() {
        let mtbf = SimDuration::from_days(60);
        let mttr = SimDuration::from_days(2);
        let four9 = advise(mtbf, mttr, 8, 0.9999);
        let six9 = advise(mtbf, mttr, 8, 0.999999);
        assert!(six9.spares >= four9.spares);
    }

    #[test]
    fn advice_is_minimal() {
        // n-1 must miss the target (when spares > 0).
        let mtbf = SimDuration::from_days(30);
        let mttr = SimDuration::from_days(3);
        let adv = advise(mtbf, mttr, 4, 0.9999);
        assert!(adv.spares > 0);
        let below = k_of_n_availability(adv.n - 1, adv.k, adv.member_availability);
        assert!(below < 0.9999);
        assert!(adv.achieved >= 0.9999);
    }

    #[test]
    fn observed_rates_divide_and_fall_back() {
        let (mtbf, mttr) = observed_rates(
            SimDuration::from_days(60),
            3,
            SimDuration::from_hours(6),
            3,
            SimDuration::from_days(90),
            SimDuration::from_days(1),
        );
        assert_eq!(mtbf, SimDuration::from_days(20));
        assert_eq!(mttr, SimDuration::from_hours(2));
        // Quiet window: no failures/repairs ⇒ priors, not infinities.
        let (mtbf, mttr) = observed_rates(
            SimDuration::from_days(60),
            0,
            SimDuration::ZERO,
            0,
            SimDuration::from_days(90),
            SimDuration::from_days(1),
        );
        assert_eq!(mtbf, SimDuration::from_days(90));
        assert_eq!(mttr, SimDuration::from_days(1));
    }

    #[test]
    fn infeasible_request_caps() {
        // Member availability 1% (repair 99x slower than failure): even
        // 72 members cannot give 8-of-n six nines — the search caps.
        let adv = advise(
            SimDuration::from_hours(1),
            SimDuration::from_hours(99),
            8,
            0.999999,
        );
        assert_eq!(adv.n, 8 + 64);
        assert!(adv.achieved < 0.999999);
    }
}
