//! # maintctl — the maintenance control plane
//!
//! This crate is the paper's primary contribution, implemented: hardware
//! maintenance as "the lowest layer of the stack" with "cross-layer
//! communication and control" (§2), analogous to how SDN made forwarding
//! — and recent work made power — a software-controlled, first-class
//! resource.
//!
//! Components:
//!
//! * [`levels`] — the §2.1 automation taxonomy (L0–L4) as policy, not
//!   code paths;
//! * [`escalate`] — the §3.2 repair ladder (reseat → clean → replace
//!   transceiver → replace cable → replace switch) with per-link memory;
//! * [`drain`] — cross-layer co-design: deterministic contact sets,
//!   pre-contact announcements, connectivity-checked drains, deferral
//!   when a drain would disconnect service;
//! * [`proactive`] — §4's campaign planner ("reseat all transceivers on
//!   that switch") gated on the diurnal utilization trough;
//! * [`predict`] — online logistic failure scorer over telemetry
//!   features, with precision/recall bookkeeping;
//! * [`provision`] — the right-provisioning advisor: k-of-n binomial
//!   availability inverted to "how many spares does this MTTR need";
//! * [`safety`] — §3.4's human/robot exclusion-zone interlocks;
//! * [`verify`] — window-of-vulnerability what-if checking (the §4
//!   network-verification thread): single-fault exposure and path
//!   diversity under a proposed drain;
//! * [`controller`] — the façade composing all of the above into
//!   per-ticket [`RepairPlan`]s.
//!
//! The controller is pure decision logic — the event loop lives in
//! `dcmaint-scenarios`. That split keeps every policy choice
//! deterministic and unit-testable, and means automation levels are a
//! *configuration*, so experiment E1's level sweep is a true ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod drain;
pub mod escalate;
pub mod levels;
pub mod predict;
pub mod proactive;
pub mod provision;
pub mod recovery;
pub mod safety;
pub mod verify;

pub use controller::{ControllerConfig, MaintenanceController, PredictiveConfig, RepairPlan};
pub use drain::{DrainConfig, DrainDecision, PreContactAnnouncement};
pub use escalate::{EscalationConfig, EscalationEngine};
pub use levels::{AutomationLevel, Executor};
pub use predict::{PredictionStats, Predictor};
pub use proactive::{Campaign, ProactiveConfig, ProactivePlanner};
pub use provision::{advise, k_of_n_availability, member_availability, ProvisioningAdvice};
pub use recovery::{Backoff, RecoveryPolicy, RecoveryState, RecoveryStep, WatchdogConfig};
pub use safety::{ClaimId, SafetyConfig, ZoneActor, ZoneLedger};
pub use verify::{assess_window, WindowRisk};
