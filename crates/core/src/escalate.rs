//! The escalation policy engine — §3.2 as executable rules.
//!
//! "When a network link fails or flaps the first time a ticket is
//! created for that link, the usual first step is to reseat the
//! transceiver. … If the transceiver has been reseated in the past, and
//! another ticket is generated for the same link within a time window,
//! and the transceiver and cable are cleanable, then the next stage is
//! to perform this cleaning process. … the next common action is then to
//! replace the transceivers and ultimately the cable. … the final stage
//! is to replace the NIC, line card, or switch."
//!
//! The engine sees only the link's cable medium and the repair history
//! within the memory window — never the hidden root cause. Non-cleanable
//! media (DAC/AEC/AOC, §3.2: "for many links the cables and transceivers
//! are attached permanently") skip the cleaning rung; fully-integrated
//! cables skip the transceiver-swap rung too (the cable *is* the
//! transceiver pair).

use dcmaint_dcnet::CableMedium;
use dcmaint_des::SimDuration;
use dcmaint_faults::RepairAction;

/// Escalation configuration.
#[derive(Debug, Clone)]
pub struct EscalationConfig {
    /// How long repair history counts against a link ("within a time
    /// window", §3.2).
    pub memory_window: SimDuration,
    /// Re-attempts of the same rung allowed before climbing (reseating
    /// twice is common practice before cleaning).
    pub repeats_per_rung: u32,
}

impl Default for EscalationConfig {
    fn default() -> Self {
        EscalationConfig {
            memory_window: SimDuration::from_days(14),
            repeats_per_rung: 1,
        }
    }
}

/// The policy engine.
#[derive(Debug, Clone, Default)]
pub struct EscalationEngine {
    cfg: EscalationConfig,
}

impl EscalationEngine {
    /// Engine with the given config.
    pub fn new(cfg: EscalationConfig) -> Self {
        EscalationEngine { cfg }
    }

    /// The configured memory window (callers pass it to the ticket board
    /// when fetching history).
    pub fn memory_window(&self) -> SimDuration {
        self.cfg.memory_window
    }

    /// The ladder applicable to a medium, in order.
    pub fn ladder_for(&self, medium: CableMedium) -> Vec<RepairAction> {
        RepairAction::LADDER
            .iter()
            .copied()
            .filter(|a| match a {
                RepairAction::CleanEndFace => medium.is_separable(),
                // Integrated cables: swapping just the transceiver is
                // impossible; the cable replacement covers it.
                RepairAction::ReplaceTransceiver => medium.is_separable(),
                _ => true,
            })
            .collect()
    }

    /// Decide the next action for a link given the actions already taken
    /// within the memory window (from
    /// [`TicketBoard::recent_actions`](dcmaint_tickets::TicketBoard::recent_actions)).
    ///
    /// Rule: walk the medium's ladder; the next action is the first rung
    /// attempted fewer than `1 + repeats_per_rung` times, provided every
    /// earlier rung has been attempted at least once. The top rung
    /// repeats indefinitely (you can always swap the switch again).
    pub fn next_action(&self, medium: CableMedium, recent: &[RepairAction]) -> RepairAction {
        let ladder = self.ladder_for(medium);
        let max_per_rung = 1 + self.cfg.repeats_per_rung;
        for &rung in &ladder {
            let count = recent.iter().filter(|&&a| a == rung).count() as u32;
            if count < max_per_rung {
                return rung;
            }
        }
        // Every medium's ladder ends in a switch-hardware swap (the
        // only rung with no applicability filter); fall back to it
        // rather than panicking the controller if a future filter ever
        // empties the ladder.
        ladder
            .last()
            .copied()
            .unwrap_or(RepairAction::ReplaceSwitchHardware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MPO: CableMedium = CableMedium::FiberMpo { cores: 8 };

    fn engine() -> EscalationEngine {
        EscalationEngine::new(EscalationConfig {
            memory_window: SimDuration::from_days(14),
            repeats_per_rung: 1,
        })
    }

    #[test]
    fn first_incident_reseats() {
        let e = engine();
        assert_eq!(e.next_action(MPO, &[]), RepairAction::Reseat);
        assert_eq!(e.next_action(CableMedium::Dac, &[]), RepairAction::Reseat);
    }

    #[test]
    fn second_rung_is_clean_for_separable_optics() {
        let e = engine();
        // One reseat in window → allowed one repeat; two → clean.
        assert_eq!(
            e.next_action(MPO, &[RepairAction::Reseat]),
            RepairAction::Reseat
        );
        assert_eq!(
            e.next_action(MPO, &[RepairAction::Reseat, RepairAction::Reseat]),
            RepairAction::CleanEndFace
        );
    }

    #[test]
    fn integrated_cables_skip_cleaning_and_xcvr_swap() {
        let e = engine();
        let ladder = e.ladder_for(CableMedium::Aoc);
        assert_eq!(
            ladder,
            vec![
                RepairAction::Reseat,
                RepairAction::ReplaceCable,
                RepairAction::ReplaceSwitchHardware
            ]
        );
        assert_eq!(
            e.next_action(
                CableMedium::Aoc,
                &[RepairAction::Reseat, RepairAction::Reseat]
            ),
            RepairAction::ReplaceCable
        );
    }

    #[test]
    fn full_ladder_for_separable() {
        let e = engine();
        assert_eq!(e.ladder_for(MPO), RepairAction::LADDER.to_vec());
        assert_eq!(
            e.ladder_for(CableMedium::FiberLc),
            RepairAction::LADDER.to_vec()
        );
    }

    #[test]
    fn climbs_to_switch_replacement_and_stays() {
        let e = engine();
        let mut history = Vec::new();
        let mut seen = Vec::new();
        // Simulate repeated failures: take next action, record it twice
        // (original + repeat), watch the ladder climb.
        for _ in 0..12 {
            let a = e.next_action(MPO, &history);
            seen.push(a);
            history.push(a);
        }
        assert_eq!(seen.first(), Some(&RepairAction::Reseat));
        assert!(seen.contains(&RepairAction::CleanEndFace));
        assert!(seen.contains(&RepairAction::ReplaceTransceiver));
        assert!(seen.contains(&RepairAction::ReplaceCable));
        // Final rung repeats.
        assert_eq!(seen.last(), Some(&RepairAction::ReplaceSwitchHardware));
        assert_eq!(
            seen.iter()
                .filter(|&&a| a == RepairAction::ReplaceSwitchHardware)
                .count(),
            4,
            "top rung repeats indefinitely"
        );
    }

    #[test]
    fn ladder_is_ordered_like_paper() {
        let e = engine();
        let ladder = e.ladder_for(MPO);
        let positions: Vec<usize> = RepairAction::LADDER
            .iter()
            .map(|a| ladder.iter().position(|x| x == a).unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn zero_repeats_config_climbs_fast() {
        let e = EscalationEngine::new(EscalationConfig {
            memory_window: SimDuration::from_days(14),
            repeats_per_rung: 0,
        });
        assert_eq!(
            e.next_action(MPO, &[RepairAction::Reseat]),
            RepairAction::CleanEndFace
        );
    }

    #[test]
    fn expired_history_restarts_ladder() {
        // The window filtering happens at the ticket board; the engine
        // just sees an empty list again.
        let e = engine();
        assert_eq!(e.next_action(MPO, &[]), RepairAction::Reseat);
    }
}
