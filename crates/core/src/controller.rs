//! The maintenance controller: one façade over policy, drain planning,
//! proactive campaigns, and prediction.
//!
//! §2's thesis: "A fully self-maintaining system will not require the
//! service to create a ticket describing a hardware failure; instead, it
//! will schedule and monitor repair operations autonomously." The
//! controller is that scheduler's brain. It is deliberately *pure
//! decision logic* — it never advances time or touches the event queue —
//! so every policy choice is unit-testable and the same controller runs
//! under every automation level (the levels only change its answers, not
//! its shape).
//!
//! The execution loop (in `dcmaint-scenarios`) asks, per ticket:
//!
//! 1. [`MaintenanceController::plan_repair`] — which rung of the §3.2
//!    ladder, who executes it (level-dependent), and the drain decision
//!    with its pre-contact announcement;
//! 2. after physical work: release the drain, verify, close or
//!    re-escalate;
//! 3. periodically: [`MaintenanceController::proactive_mut`] campaigns
//!    and [`MaintenanceController::predictor_mut`] scoring (L3+ only).

use dcmaint_dcnet::{CableMedium, LinkId, NetState, NodeId, Topology};
use dcmaint_des::SimDuration;
use dcmaint_faults::RepairAction;
use dcmaint_obs::{JVal, Journal};

use crate::drain::{self, DrainConfig, DrainDecision};
use crate::escalate::{EscalationConfig, EscalationEngine};
use crate::levels::{AutomationLevel, Executor};
use crate::predict::Predictor;
use crate::proactive::{ProactiveConfig, ProactivePlanner};

/// Predictive-maintenance loop configuration.
#[derive(Debug, Clone)]
pub struct PredictiveConfig {
    /// Risk *lift* required to flag: a link is a candidate when its
    /// score is at least this multiple of the fleet-mean score. Relative
    /// thresholds track the base failure rate, so the flagger works at
    /// both compressed (CI) and realistic (rare-failure) fault rates.
    pub risk_lift: f64,
    /// Absolute score floor below which nothing is flagged (guards the
    /// cold-start period before the model has seen failures).
    pub score_floor: f64,
    /// How often the fleet is scanned.
    pub scan_period: SimDuration,
    /// Label horizon: a link "failed" if an incident lands within this
    /// window after scoring.
    pub label_horizon: SimDuration,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            risk_lift: 2.0,
            score_floor: 0.02,
            scan_period: SimDuration::from_hours(6),
            label_horizon: SimDuration::from_days(3),
        }
    }
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Automation level (§2.1) — the single biggest policy knob.
    pub level: AutomationLevel,
    /// Escalation-ladder tuning.
    pub escalation: EscalationConfig,
    /// Drain-planning tuning.
    pub drain: DrainConfig,
    /// Proactive campaigns (effective only at L3+, per
    /// [`AutomationLevel::proactive_allowed`]).
    pub proactive: Option<ProactiveConfig>,
    /// Predictive maintenance (effective only at L3+).
    pub predictive: Option<PredictiveConfig>,
    /// Post-repair verification soak before closing a ticket.
    pub verify_soak: SimDuration,
    /// §2 "optimizing its timing": defer routine (P2) repairs into the
    /// diurnal utilization trough so their drains cost the least
    /// capacity. Urgent work is never deferred.
    pub trough_scheduling: bool,
    /// Utilization below which routine work may proceed when
    /// `trough_scheduling` is on.
    pub trough_gate: f64,
}

impl ControllerConfig {
    /// Default configuration at the given level: proactive and
    /// predictive loops enabled where the level allows.
    pub fn at_level(level: AutomationLevel) -> Self {
        ControllerConfig {
            level,
            escalation: EscalationConfig::default(),
            drain: DrainConfig::default(),
            proactive: level.proactive_allowed().then(ProactiveConfig::default),
            predictive: level.proactive_allowed().then(PredictiveConfig::default),
            verify_soak: SimDuration::from_mins(5),
            trough_scheduling: false,
            trough_gate: 0.35,
        }
    }
}

/// A complete repair plan for one ticket.
#[derive(Debug, Clone)]
pub struct RepairPlan {
    /// Ladder rung chosen.
    pub action: RepairAction,
    /// Who executes.
    pub executor: Executor,
    /// Drain decision (with the pre-contact announcement on Proceed).
    pub drain: DrainDecision,
}

/// The controller. See the [module docs](self).
#[derive(Debug)]
pub struct MaintenanceController {
    cfg: ControllerConfig,
    escalation: EscalationEngine,
    proactive: Option<ProactivePlanner>,
    predictor: Option<Predictor>,
    journal: Journal,
}

impl MaintenanceController {
    /// Build from config.
    pub fn new(cfg: ControllerConfig) -> Self {
        let escalation = EscalationEngine::new(cfg.escalation.clone());
        let proactive = cfg
            .proactive
            .clone()
            .filter(|_| cfg.level.proactive_allowed())
            .map(ProactivePlanner::new);
        let predictor = cfg
            .predictive
            .as_ref()
            .filter(|_| cfg.level.proactive_allowed())
            .map(|_| Predictor::new());
        MaintenanceController {
            cfg,
            escalation,
            proactive,
            predictor,
            journal: Journal::disabled(),
        }
    }

    /// Attach an event journal; repair-plan decisions are emitted into
    /// it. Disabled by default (zero cost on the planning path).
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// Configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// The automation level in force.
    pub fn level(&self) -> AutomationLevel {
        self.cfg.level
    }

    /// Escalation memory window (pass to the ticket board when fetching
    /// history).
    pub fn memory_window(&self) -> SimDuration {
        self.escalation.memory_window()
    }

    /// Choose the next ladder rung for a link.
    pub fn decide_action(&self, medium: CableMedium, recent: &[RepairAction]) -> RepairAction {
        self.escalation.next_action(medium, recent)
    }

    /// Who executes a given action at this level.
    pub fn executor_for(&self, action: RepairAction) -> Executor {
        self.cfg.level.executor_for(action)
    }

    /// Produce the full plan for one ticket: action, executor, drain.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_repair(
        &self,
        topo: &Topology,
        state: &NetState,
        link: LinkId,
        recent: &[RepairAction],
        expected_duration: SimDuration,
        service_pairs: &[(NodeId, NodeId)],
    ) -> RepairPlan {
        let medium = topo.link(link).cable.medium;
        let action = self.decide_action(medium, recent);
        let executor = self.executor_for(action);
        let clumsy = matches!(executor, Executor::Human | Executor::HumanWithDevice);
        let drain = drain::plan(
            &self.cfg.drain,
            topo,
            state,
            link,
            clumsy,
            expected_duration,
            service_pairs,
        );
        self.journal.emit(
            "plan",
            &[
                ("link", JVal::U(link.key())),
                ("action", JVal::S(action.label())),
                ("executor", JVal::S(executor.label())),
                (
                    "drain",
                    JVal::S(match &drain {
                        DrainDecision::Proceed(_) => "proceed",
                        DrainDecision::Defer { .. } => "defer",
                    }),
                ),
            ],
        );
        RepairPlan {
            action,
            executor,
            drain,
        }
    }

    /// The proactive planner, if this level runs one.
    pub fn proactive_mut(&mut self) -> Option<&mut ProactivePlanner> {
        self.proactive.as_mut()
    }

    /// The predictive scorer, if this level runs one.
    pub fn predictor_mut(&mut self) -> Option<&mut Predictor> {
        self.predictor.as_mut()
    }

    /// Immutable predictor access.
    pub fn predictor(&self) -> Option<&Predictor> {
        self.predictor.as_ref()
    }

    /// Append the controller's mutable state to a checkpoint: the
    /// proactive planner's ledgers and the predictor's learned weights.
    /// Configuration, the (stateless) escalation engine, and the journal
    /// handle are not recorded.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        match &self.proactive {
            None => enc.bool(false),
            Some(p) => {
                enc.bool(true);
                p.save(enc);
            }
        }
        match &self.predictor {
            None => enc.bool(false),
            Some(p) => {
                enc.bool(true);
                p.save(enc);
            }
        }
    }

    /// Restore checkpointed state into a controller freshly built from
    /// the same config (so the proactive/predictive gating matches).
    /// Inverse of [`MaintenanceController::save`].
    pub fn restore(&mut self, dec: &mut dcmaint_ckpt::Dec) -> Result<(), dcmaint_ckpt::CkptError> {
        let has_proactive = dec.bool()?;
        match (&mut self.proactive, has_proactive) {
            (None, false) => {}
            (Some(p), true) => p.restore(dec)?,
            _ => {
                return Err(dcmaint_ckpt::CkptError::BadTag(
                    "controller-proactive",
                    u64::from(has_proactive),
                ))
            }
        }
        let has_predictor = dec.bool()?;
        match (&mut self.predictor, has_predictor) {
            (None, false) => {}
            (Some(p), true) => *p = Predictor::load(dec)?,
            _ => {
                return Err(dcmaint_ckpt::CkptError::BadTag(
                    "controller-predictor",
                    u64::from(has_predictor),
                ))
            }
        }
        Ok(())
    }

    /// Predictive config, if enabled.
    pub fn predictive_config(&self) -> Option<&PredictiveConfig> {
        self.cfg
            .predictive
            .as_ref()
            .filter(|_| self.cfg.level.proactive_allowed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::DiversityProfile;
    use dcmaint_des::SimRng;

    fn setup() -> (Topology, NetState, Vec<(NodeId, NodeId)>) {
        let t = leaf_spine(
            2,
            3,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        );
        let s = NetState::new(&t);
        let servers = t.servers();
        let pairs: Vec<_> = servers.windows(2).map(|w| (w[0], w[1])).collect();
        (t, s, pairs)
    }

    fn uplink(t: &Topology) -> LinkId {
        t.link_ids()
            .find(|&l| {
                let (a, b) = t.endpoints(l);
                t.node(a).is_switch() && t.node(b).is_switch()
            })
            .unwrap()
    }

    #[test]
    fn l0_plans_human_repairs_with_wide_drains() {
        let (t, s, pairs) = setup();
        let c = MaintenanceController::new(ControllerConfig::at_level(AutomationLevel::L0));
        let plan = c.plan_repair(&t, &s, uplink(&t), &[], SimDuration::from_hours(1), &pairs);
        assert_eq!(plan.action, RepairAction::Reseat);
        assert_eq!(plan.executor, Executor::Human);
        match plan.drain {
            DrainDecision::Proceed(ann) => assert!(ann.drained.len() > 1),
            DrainDecision::Defer { .. } => panic!("redundant uplink must proceed"),
        }
    }

    #[test]
    fn l3_plans_robot_repairs_with_narrow_drains() {
        let (t, s, pairs) = setup();
        let c = MaintenanceController::new(ControllerConfig::at_level(AutomationLevel::L3));
        let plan = c.plan_repair(&t, &s, uplink(&t), &[], SimDuration::from_mins(3), &pairs);
        assert_eq!(plan.executor, Executor::AutonomousRobot);
        match plan.drain {
            DrainDecision::Proceed(ann) => {
                assert_eq!(ann.drained, vec![uplink(&t)], "robot: target only")
            }
            DrainDecision::Defer { .. } => panic!("must proceed"),
        }
    }

    #[test]
    fn proactive_and_predictive_gated_by_level() {
        let mut l0 = MaintenanceController::new(ControllerConfig::at_level(AutomationLevel::L0));
        let mut l3 = MaintenanceController::new(ControllerConfig::at_level(AutomationLevel::L3));
        assert!(l0.proactive_mut().is_none());
        assert!(l0.predictor_mut().is_none());
        assert!(l3.proactive_mut().is_some());
        assert!(l3.predictor_mut().is_some());
        assert!(l3.predictive_config().is_some());
    }

    #[test]
    fn explicit_proactive_config_still_gated_below_l3() {
        // Even if a config *asks* for proactive at L1, the level gate
        // wins — there is no free robot labor to run campaigns with.
        let cfg = ControllerConfig {
            proactive: Some(ProactiveConfig::default()),
            predictive: Some(PredictiveConfig::default()),
            ..ControllerConfig::at_level(AutomationLevel::L1)
        };
        let mut c = MaintenanceController::new(cfg);
        assert!(c.proactive_mut().is_none());
        assert!(c.predictor_mut().is_none());
    }

    #[test]
    fn escalation_follows_history() {
        let (t, s, pairs) = setup();
        let c = MaintenanceController::new(ControllerConfig::at_level(AutomationLevel::L3));
        let recent = vec![RepairAction::Reseat, RepairAction::Reseat];
        // Separable (long MPO) uplink: cleaning is the next rung.
        if let Some(l) = t
            .link_ids()
            .find(|&l| t.link(l).cable.medium.is_separable())
        {
            let plan = c.plan_repair(&t, &s, l, &recent, SimDuration::from_mins(5), &pairs);
            assert_eq!(plan.action, RepairAction::CleanEndFace);
        }
        // Integrated (AOC) uplink: the ladder skips cleaning and the
        // transceiver swap, going straight to cable replacement.
        let aoc = t
            .link_ids()
            .find(|&l| {
                let m = t.link(l).cable.medium;
                m.is_optical() && !m.is_separable()
            })
            .expect("small leaf-spine has AOC uplinks");
        let plan = c.plan_repair(&t, &s, aoc, &recent, SimDuration::from_mins(5), &pairs);
        assert_eq!(plan.action, RepairAction::ReplaceCable);
    }

    #[test]
    fn switch_replacement_goes_human_even_at_l3() {
        let c = MaintenanceController::new(ControllerConfig::at_level(AutomationLevel::L3));
        assert_eq!(
            c.executor_for(RepairAction::ReplaceSwitchHardware),
            Executor::Human
        );
    }
}
