//! Window-of-vulnerability verification — what-if checking before
//! maintenance.
//!
//! §2: right-provisioning is enabled by "greater control over the window
//! of vulnerability during hardware failures". §4 connects
//! self-maintenance to the network-verification tradition (Batfish,
//! CrystalNet): *check the configuration change before you make it*. A
//! drain is a configuration change; this module is the checker the
//! controller runs on the drained what-if state:
//!
//! * **connectivity** — do all sampled service pairs stay connected
//!   (this much the drain planner already enforces)?
//! * **single-fault tolerance** — during the window, would any *one*
//!   additional link failure disconnect a sampled pair? Those links are
//!   the window's exposed set; their count × expected window length is
//!   the quantified vulnerability the paper wants minimized.
//! * **capacity headroom** — worst pairwise ECMP-path-count reduction,
//!   a cheap proxy for throughput degradation during the window.

use dcmaint_dcnet::routing::{connected, ecmp_path_count, pair_connectivity};
use dcmaint_dcnet::{AdminState, LinkId, NetState, NodeId, Topology};
use dcmaint_des::SimDuration;

/// Verdict of a window-of-vulnerability assessment.
#[derive(Debug, Clone)]
pub struct WindowRisk {
    /// Sampled pairs that lose connectivity under the drain itself
    /// (should be 0 for a plan the drain planner approved).
    pub disconnected_pairs: usize,
    /// Links whose additional (single) failure during the window would
    /// disconnect at least one sampled pair.
    pub exposed_links: Vec<LinkId>,
    /// Worst ratio of ECMP path count (drained / baseline) across the
    /// sampled pairs, in `(0, 1]`.
    pub worst_path_ratio: f64,
    /// Expected exposure: `exposed_links.len()` scaled by the window
    /// length (link-seconds of single-fault vulnerability).
    pub exposure_link_seconds: f64,
}

impl WindowRisk {
    /// A window with no exposed links and full path diversity.
    pub fn is_clean(&self) -> bool {
        self.disconnected_pairs == 0 && self.exposed_links.is_empty()
    }
}

/// Assess the vulnerability window created by draining `drained` for
/// `window` while the fabric is in `state`.
///
/// Cost: O(|drained-state BFS| × (pairs + candidate links)). Candidate
/// links for the single-fault check are restricted to links on the
/// sampled pairs' current paths — a link off every path cannot
/// disconnect them.
pub fn assess_window(
    topo: &Topology,
    state: &NetState,
    drained: &[LinkId],
    window: SimDuration,
    service_pairs: &[(NodeId, NodeId)],
) -> WindowRisk {
    // Build the what-if state.
    let mut whatif = state.clone();
    for &l in drained {
        whatif.set_admin(l, AdminState::Drained);
    }
    let disconnected_pairs = service_pairs
        .iter()
        .filter(|&&(a, b)| !connected(topo, &whatif, a, b))
        .count();

    // Path-diversity ratio.
    let mut worst_ratio: f64 = 1.0;
    for &(a, b) in service_pairs {
        let before = ecmp_path_count(topo, state, a, b);
        if before == 0 {
            continue;
        }
        let after = ecmp_path_count(topo, &whatif, a, b);
        worst_ratio = worst_ratio.min(after as f64 / before as f64);
    }

    // Single-fault exposure: try failing each candidate link on top of
    // the drain. Candidates: routable links touching any sampled pair's
    // connectivity — approximated as all routable links of the (small)
    // fabric neighborhood: links adjacent to pair endpoints plus all
    // inter-switch links that remain routable.
    let mut candidates: Vec<LinkId> = topo
        .link_ids()
        .filter(|&l| whatif.link(l).routable())
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    let before = pair_connectivity(topo, &whatif, service_pairs);
    let mut exposed = Vec::new();
    for &l in &candidates {
        let mut trial = whatif.clone();
        trial.set_admin(l, AdminState::Drained);
        if pair_connectivity(topo, &trial, service_pairs) < before {
            exposed.push(l);
        }
    }
    WindowRisk {
        disconnected_pairs,
        exposure_link_seconds: exposed.len() as f64 * window.as_secs_f64(),
        exposed_links: exposed,
        worst_path_ratio: worst_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::{DiversityProfile, LinkHealth};
    use dcmaint_des::SimRng;

    fn setup() -> (Topology, NetState, Vec<(NodeId, NodeId)>) {
        let t = leaf_spine(
            2,
            3,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(3),
        );
        let s = NetState::new(&t);
        let servers = t.servers();
        let mut pairs = Vec::new();
        for i in 0..servers.len() {
            for j in (i + 1)..servers.len() {
                pairs.push((servers[i], servers[j]));
            }
        }
        (t, s, pairs)
    }

    fn uplinks_of_leaf(t: &Topology, leaf_name: &str) -> Vec<LinkId> {
        let leaf = t.node_ids().find(|&n| t.node(n).name == leaf_name).unwrap();
        t.links_of(leaf)
            .into_iter()
            .filter(|&l| {
                let (a, b) = t.endpoints(l);
                t.node(a).is_switch() && t.node(b).is_switch()
            })
            .collect()
    }

    #[test]
    fn healthy_fabric_empty_drain_is_clean() {
        let (t, s, pairs) = setup();
        let r = assess_window(&t, &s, &[], SimDuration::from_mins(5), &pairs);
        assert_eq!(r.disconnected_pairs, 0);
        // Server access links are always single-fault exposures (one NIC
        // per server); the *fabric* links are not.
        for &l in &r.exposed_links {
            let (a, b) = t.endpoints(l);
            assert!(
                !t.node(a).is_switch() || !t.node(b).is_switch(),
                "no switch-switch link should be exposed on the healthy fabric"
            );
        }
        assert_eq!(r.worst_path_ratio, 1.0);
    }

    #[test]
    fn draining_one_uplink_exposes_its_partner() {
        let (t, s, pairs) = setup();
        let ups = uplinks_of_leaf(&t, "leaf-0");
        assert_eq!(ups.len(), 2, "two spines");
        let window = SimDuration::from_mins(10);
        let r = assess_window(&t, &s, &ups[..1], window, &pairs);
        assert_eq!(r.disconnected_pairs, 0, "drain itself is safe");
        // The remaining uplink is now a single point of failure.
        assert!(
            r.exposed_links.contains(&ups[1]),
            "partner uplink must be exposed"
        );
        assert!(r.worst_path_ratio <= 0.5 + 1e-9, "path diversity halved");
        assert!(!r.is_clean());
        assert!(
            (r.exposure_link_seconds - r.exposed_links.len() as f64 * window.as_secs_f64()).abs()
                < 1e-9
        );
    }

    #[test]
    fn degraded_fabric_raises_exposure() {
        let (t, mut s, pairs) = setup();
        // Kill spine-0 entirely: every leaf now rides spine-1 alone.
        let spine0 = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        for l in t.links_of(spine0) {
            s.set_health(l, LinkHealth::Down, 1.0);
        }
        let r = assess_window(&t, &s, &[], SimDuration::from_mins(5), &pairs);
        // All surviving uplinks are exposed.
        let surviving: Vec<LinkId> = uplinks_of_leaf(&t, "leaf-0")
            .into_iter()
            .filter(|&l| s.link(l).routable())
            .collect();
        for l in surviving {
            assert!(r.exposed_links.contains(&l));
        }
    }

    #[test]
    fn drain_that_disconnects_is_reported() {
        let (t, s, pairs) = setup();
        // Drain both uplinks of leaf-0: its servers disconnect.
        let ups = uplinks_of_leaf(&t, "leaf-0");
        let r = assess_window(&t, &s, &ups, SimDuration::from_mins(5), &pairs);
        assert!(r.disconnected_pairs > 0);
        assert!(!r.is_clean());
    }

    #[test]
    fn exposure_scales_with_window_length() {
        let (t, s, pairs) = setup();
        let ups = uplinks_of_leaf(&t, "leaf-0");
        let short = assess_window(&t, &s, &ups[..1], SimDuration::from_mins(5), &pairs);
        let long = assess_window(&t, &s, &ups[..1], SimDuration::from_hours(8), &pairs);
        assert_eq!(short.exposed_links, long.exposed_links);
        assert!(long.exposure_link_seconds > 50.0 * short.exposure_link_seconds);
    }
}
