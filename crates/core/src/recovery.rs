//! Controller-side recovery for maintenance-plane faults: watchdogs,
//! bounded retry backoff, and the degradation ladder down to humans.
//!
//! The paper's §3.3.1 ("retry and ultimately escalate to a human") and
//! §3.4 (who maintains the maintainer?) imply the control plane cannot
//! trust its own executors: operations stall without announcing it,
//! dispatch messages get lost, robots abort mid-extraction. This module
//! supplies the three mechanisms the engine composes:
//!
//! * [`WatchdogConfig`] — a per-operation deadline derived from the
//!   *planned* phase durations (total plus margin × the p99 phase), so
//!   a stalled or silently-lost operation is detected without any
//!   cooperation from the robot;
//! * [`Backoff`] — bounded exponential retry delay with deterministic
//!   jitter (same seed → same schedule);
//! * [`RecoveryPolicy`] — the ladder: retry the same robot → reassign
//!   to another unit → fall back to a human ticket → queue until the
//!   fleet recovers. The engine must uphold the companion invariant
//!   that an aborted operation always releases its drain and its
//!   safety-zone claim (tested end-to-end in `tests/properties.rs`).

use dcmaint_des::{SimDuration, Stream};
use dcmaint_obs::{JVal, Journal};

/// Watchdog deadline policy.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Slack multiplier applied to the p99 planned phase duration. The
    /// operation is declared stuck once it overruns its planned total
    /// by `margin × p99(phase durations)`.
    pub margin: f64,
    /// Floor on the slack, so short plans are not declared dead by
    /// scheduling noise.
    pub min_slack: SimDuration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            margin: 3.0,
            min_slack: SimDuration::from_mins(2),
        }
    }
}

impl WatchdogConfig {
    /// The p99 of a set of planned phase durations (nearest-rank).
    pub fn p99_phase(phases: &[SimDuration]) -> SimDuration {
        if phases.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = phases.to_vec();
        sorted.sort();
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Deadline (measured from operation start) after which the
    /// watchdog fires: planned total + max(margin × p99 phase,
    /// min_slack).
    pub fn deadline(&self, phases: &[SimDuration]) -> SimDuration {
        let total = phases.iter().fold(SimDuration::ZERO, |acc, &d| acc + d);
        let slack = Self::p99_phase(phases)
            .mul_f64(self.margin)
            .max(self.min_slack);
        total + slack
    }
}

/// Bounded exponential backoff with jitter for retries.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// First-retry delay.
    pub base: SimDuration,
    /// Multiplier per attempt.
    pub factor: f64,
    /// Ceiling on the un-jittered delay.
    pub cap: SimDuration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: SimDuration::from_secs(30),
            factor: 2.0,
            cap: SimDuration::from_mins(30),
        }
    }
}

impl Backoff {
    /// Delay before retry number `attempt` (0-based), jittered to
    /// 50–150% of nominal with a draw from `rng` — deterministic for a
    /// given stream state.
    pub fn delay(&self, attempt: u32, rng: &mut Stream) -> SimDuration {
        let nominal = self
            .base
            .mul_f64(self.factor.powi(attempt.min(20) as i32))
            .min(self.cap);
        nominal.mul_f64(0.5 + rng.uniform())
    }
}

/// Escalating schedule for drain-defer retries: capped exponential
/// growth on top of a caller-supplied base step, with the same
/// deterministic 50–150% jitter as [`Backoff`].
///
/// The drain planner used to re-poll a congested link at a fixed
/// interval, which synchronizes retries across tickets and hammers the
/// same contended window. Exponential spacing with seeded jitter spreads
/// them out while staying replayable: the jitter draw comes from the
/// engine's checkpointed recovery stream, so a restored run re-issues
/// the identical schedule.
#[derive(Debug, Clone)]
pub struct DeferBackoff {
    /// Multiplier per deferral (1.0 reproduces the legacy fixed step).
    pub factor: f64,
    /// Ceiling on the un-jittered delay.
    pub cap: SimDuration,
}

impl Default for DeferBackoff {
    fn default() -> Self {
        DeferBackoff {
            factor: 1.35,
            cap: SimDuration::from_mins(90),
        }
    }
}

impl DeferBackoff {
    /// Delay before deferral number `attempt` (0-based) when the
    /// configured base step is `base`, jittered to 50–150% of nominal
    /// with a draw from `rng`.
    pub fn delay(&self, base: SimDuration, attempt: u32, rng: &mut Stream) -> SimDuration {
        let nominal = base
            .mul_f64(self.factor.powi(attempt.min(20) as i32))
            .min(self.cap.max(base));
        nominal.mul_f64(0.5 + rng.uniform())
    }
}

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Re-dispatch the same unit after backoff.
    RetrySameRobot,
    /// Book a different unit.
    ReassignOtherUnit,
    /// Open a human ticket (graceful degradation to L0 behavior).
    HumanTicket,
    /// Nothing can run now; park the ticket until a robot is repaired.
    QueueUntilFleetRecovers,
}

impl RecoveryStep {
    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStep::RetrySameRobot => "retry-same",
            RecoveryStep::ReassignOtherUnit => "reassign",
            RecoveryStep::HumanTicket => "human-ticket",
            RecoveryStep::QueueUntilFleetRecovers => "queue",
        }
    }
}

/// Where one operation stands on the ladder.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryState {
    /// Retries already burned on the unit that failed.
    pub same_robot_retries: u32,
    /// Reassignments to a different unit already made.
    pub reassigns: u32,
}

/// The recovery policy: watchdog + backoff + ladder limits.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Master switch (the E14 ablation flag). Disabled: no watchdogs
    /// are armed and failed operations are simply abandoned.
    pub enabled: bool,
    /// Watchdog deadline policy.
    pub watchdog: WatchdogConfig,
    /// Retry backoff.
    pub backoff: Backoff,
    /// Drain-defer retry schedule (base step comes from the scenario's
    /// `defer_retry`).
    pub defer: DeferBackoff,
    /// Retries on the same unit before reassigning.
    pub max_same_robot_retries: u32,
    /// Reassignments before falling back to a human.
    pub max_reassigns: u32,
    /// Whether a human fallback exists (false models an unstaffed
    /// facility, where the ladder parks work until the fleet heals).
    pub humans_available: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            watchdog: WatchdogConfig::default(),
            backoff: Backoff::default(),
            defer: DeferBackoff::default(),
            max_same_robot_retries: 1,
            max_reassigns: 1,
            humans_available: true,
        }
    }
}

impl RecoveryPolicy {
    /// Decide the next rung after a failed robot attempt.
    ///
    /// * `state` — retries/reassigns burned so far on this ticket;
    /// * `failed_unit_usable` — the failing unit is not Down (a stall
    ///   or hard breakdown skips the retry-same rung);
    /// * `other_unit_available` — some other unit can reach the rack
    ///   and is not Down.
    pub fn next_step(
        &self,
        state: RecoveryState,
        failed_unit_usable: bool,
        other_unit_available: bool,
    ) -> RecoveryStep {
        if failed_unit_usable && state.same_robot_retries < self.max_same_robot_retries {
            return RecoveryStep::RetrySameRobot;
        }
        if other_unit_available && state.reassigns < self.max_reassigns {
            return RecoveryStep::ReassignOtherUnit;
        }
        if self.humans_available {
            return RecoveryStep::HumanTicket;
        }
        RecoveryStep::QueueUntilFleetRecovers
    }

    /// [`RecoveryPolicy::next_step`] plus a journal record of the
    /// decision and the ladder state it was made from. Identical
    /// control flow — the journal is a pure observer.
    pub fn next_step_logged(
        &self,
        state: RecoveryState,
        failed_unit_usable: bool,
        other_unit_available: bool,
        journal: &Journal,
    ) -> RecoveryStep {
        let step = self.next_step(state, failed_unit_usable, other_unit_available);
        journal.emit(
            "recovery-step",
            &[
                ("step", JVal::S(step.label())),
                ("retries", JVal::U(u64::from(state.same_robot_retries))),
                ("reassigns", JVal::U(u64::from(state.reassigns))),
                ("unit_usable", JVal::B(failed_unit_usable)),
                ("other_available", JVal::B(other_unit_available)),
            ],
        );
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    fn rng() -> Stream {
        SimRng::root(3).stream("recovery", 0)
    }

    fn secs(v: &[u64]) -> Vec<SimDuration> {
        v.iter().map(|&s| SimDuration::from_secs(s)).collect()
    }

    #[test]
    fn deadline_exceeds_planned_total() {
        let w = WatchdogConfig::default();
        let phases = secs(&[30, 10, 8, 6, 10, 6, 45]);
        let total: u64 = 30 + 10 + 8 + 6 + 10 + 6 + 45;
        let d = w.deadline(&phases);
        assert!(d > SimDuration::from_secs(total));
        // Slack floor: even a trivial plan gets min_slack.
        let tiny = w.deadline(&secs(&[1]));
        assert!(tiny >= SimDuration::from_secs(1) + w.min_slack);
    }

    #[test]
    fn p99_phase_is_the_slowest_for_small_plans() {
        let phases = secs(&[5, 120, 30]);
        assert_eq!(
            WatchdogConfig::p99_phase(&phases),
            SimDuration::from_secs(120)
        );
        assert_eq!(WatchdogConfig::p99_phase(&[]), SimDuration::ZERO);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff::default();
        let mut r = rng();
        // Compare nominal midpoints by averaging out jitter.
        let mean = |attempt: u32, r: &mut Stream| -> f64 {
            (0..200)
                .map(|_| b.delay(attempt, r).as_secs_f64())
                .sum::<f64>()
                / 200.0
        };
        let d0 = mean(0, &mut r);
        let d2 = mean(2, &mut r);
        let d12 = mean(12, &mut r);
        assert!(d2 > 2.0 * d0, "exponential growth: {d0} {d2}");
        // Attempt 12 nominal would be 30 s * 4096 — capped at 30 min.
        assert!(d12 <= 30.0 * 60.0 * 1.5 + 1.0, "cap applies: {d12}");
    }

    #[test]
    fn backoff_is_deterministic_per_stream() {
        let b = Backoff::default();
        let mut a = rng();
        let mut c = rng();
        for attempt in 0..8 {
            assert_eq!(b.delay(attempt, &mut a), b.delay(attempt, &mut c));
        }
    }

    #[test]
    fn ladder_walks_retry_reassign_human_queue() {
        let p = RecoveryPolicy::default();
        let fresh = RecoveryState::default();
        assert_eq!(p.next_step(fresh, true, true), RecoveryStep::RetrySameRobot);
        let retried = RecoveryState {
            same_robot_retries: 1,
            reassigns: 0,
        };
        assert_eq!(
            p.next_step(retried, true, true),
            RecoveryStep::ReassignOtherUnit
        );
        let reassigned = RecoveryState {
            same_robot_retries: 1,
            reassigns: 1,
        };
        assert_eq!(
            p.next_step(reassigned, true, true),
            RecoveryStep::HumanTicket
        );
        let unstaffed = RecoveryPolicy {
            humans_available: false,
            ..RecoveryPolicy::default()
        };
        assert_eq!(
            unstaffed.next_step(reassigned, false, false),
            RecoveryStep::QueueUntilFleetRecovers
        );
    }

    #[test]
    fn logged_ladder_matches_and_journals() {
        let p = RecoveryPolicy::default();
        let j = Journal::enabled(8);
        let fresh = RecoveryState::default();
        let step = p.next_step_logged(fresh, true, true, &j);
        assert_eq!(step, p.next_step(fresh, true, true));
        let lines = j.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"ev\":\"recovery-step\""));
        assert!(lines[1].contains("\"step\":\"retry-same\""));
        // A disabled journal changes nothing.
        let silent = Journal::disabled();
        assert_eq!(
            p.next_step_logged(fresh, true, true, &silent),
            RecoveryStep::RetrySameRobot
        );
    }

    #[test]
    fn dead_unit_skips_the_retry_rung() {
        let p = RecoveryPolicy::default();
        let fresh = RecoveryState::default();
        assert_eq!(
            p.next_step(fresh, false, true),
            RecoveryStep::ReassignOtherUnit
        );
        assert_eq!(p.next_step(fresh, false, false), RecoveryStep::HumanTicket);
    }
}

/// Golden-value pins for the two retry schedules. These are not
/// behavioral tests: the exact microsecond values are part of the
/// determinism contract (a checkpointed run replays these draws), so
/// any change to the formula, the jitter window, or the stream
/// consumption order must show up here as a deliberate diff.
#[cfg(test)]
mod golden {
    use super::*;
    use dcmaint_des::SimRng;

    fn stream() -> Stream {
        SimRng::root(7).stream("golden", 0)
    }

    #[test]
    fn backoff_schedule_is_pinned() {
        let b = Backoff::default();
        let mut r = stream();
        let got: Vec<u64> = (0..8).map(|a| b.delay(a, &mut r).as_micros()).collect();
        assert_eq!(
            got,
            [
                21_014_498,    // attempt 0: 30 s nominal
                39_925_806,    // attempt 1: 60 s
                128_613_872,   // attempt 2: 120 s
                129_540_828,   // attempt 3: 240 s
                409_077_569,   // attempt 4: 480 s
                662_356_564,   // attempt 5: 960 s
                2_164_979_932, // attempt 6: capped at 30 min
                1_303_316_941, // attempt 7: capped, low jitter draw
            ],
            "Backoff schedule moved — this breaks replay of old seeds"
        );
    }

    #[test]
    fn defer_backoff_schedule_is_pinned() {
        let d = DeferBackoff::default();
        let mut r = stream();
        let base = SimDuration::from_mins(30);
        let got: Vec<u64> = (0..10)
            .map(|a| d.delay(base, a, &mut r).as_micros())
            .collect();
        assert_eq!(
            got,
            [
                1_260_869_896, // deferral 0: 30 min nominal
                1_616_995_154, // deferral 1: 40.5 min
                3_515_981_728, // deferral 2: ~54.7 min
                2_390_392_626, // deferral 3: ~73.8 min
                4_602_122_651, // deferral 4: capped at 90 min
                3_725_755_676, // deferral 5: capped
                6_494_939_798, // deferral 6: capped
                3_909_950_824, // deferral 7: capped
                6_212_239_042, // deferral 8: capped
                6_924_674_445, // deferral 9: capped
            ],
            "DeferBackoff schedule moved — this breaks replay of old seeds"
        );
    }

    #[test]
    fn defer_backoff_respects_cap_and_base_floor() {
        let d = DeferBackoff::default();
        let mut r = stream();
        // Nominal growth stops at the cap, so the jittered value never
        // exceeds 1.5 × cap…
        for attempt in 0..30 {
            let v = d.delay(SimDuration::from_mins(30), attempt, &mut r);
            assert!(v <= d.cap.mul_f64(1.5), "attempt {attempt}: {v}");
        }
        // …and a base above the cap is honored rather than truncated.
        let big = SimDuration::from_hours(8);
        let v = d.delay(big, 0, &mut r);
        assert!(v >= big.mul_f64(0.5) && v <= big.mul_f64(1.5));
    }

    #[test]
    fn factor_one_reproduces_the_legacy_fixed_step_nominal() {
        let d = DeferBackoff {
            factor: 1.0,
            ..DeferBackoff::default()
        };
        let base = SimDuration::from_mins(30);
        let mut a = stream();
        let mut b = stream();
        for attempt in 0..6 {
            // Same draw, same nominal: only the jitter varies per call.
            let v = d.delay(base, attempt, &mut a);
            let w = base.mul_f64(0.5 + b.uniform());
            assert_eq!(v, w, "attempt {attempt}");
        }
    }
}
