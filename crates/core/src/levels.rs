//! The five automation levels (§2.1).
//!
//! The paper adapts the SAE driving-automation taxonomy: L0 fully manual
//! through L4 fully autonomous datacenters. Crucially, the levels here
//! are *policies over the same controller*, not separate code paths — so
//! the level sweep in experiment E1 is a genuine ablation of authority,
//! not a comparison of different implementations.
//!
//! What each level changes:
//!
//! | | executes repairs | supervision | proactive | spares swap | switch replacement |
//! |---|---|---|---|---|---|
//! | L0 | humans | — | no | human | human |
//! | L1 | humans *with* the cleaning unit as a bench tool (§3.3.2 "standalone Level 1 device") | — | no | human | human |
//! | L2 | robots, teleoperated/supervised | 1 human per active robot op | no | human | human |
//! | L3 | robots, autonomous; humans only on escalation | limited (escalations only) | yes | robot | human |
//! | L4 | robots for everything | none | yes | robot | robot |

use dcmaint_faults::RepairAction;

/// Automation level per §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AutomationLevel {
    /// No automation: skilled technicians do everything.
    L0,
    /// Operator assistance: technicians use automated devices.
    L1,
    /// Partial automation: robots under human supervision/teleoperation.
    L2,
    /// High automation: autonomous end-to-end with limited supervision.
    L3,
    /// Full automation: no human presence in the halls.
    L4,
}

/// Who performs a repair action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// A technician, bare-handed (plus hand tools).
    Human,
    /// A technician using the Level-1 assisted device (faster, higher
    /// quality cleaning — the §3.3.2 standalone mode).
    HumanWithDevice,
    /// Robot under live human supervision (Level 2).
    SupervisedRobot,
    /// Fully autonomous robot (Levels 3–4).
    AutonomousRobot,
}

impl Executor {
    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            Executor::Human => "human",
            Executor::HumanWithDevice => "human+device",
            Executor::SupervisedRobot => "robot-supervised",
            Executor::AutonomousRobot => "robot-auto",
        }
    }

    /// Whether a robot (supervised or autonomous) does the hands-on work.
    pub fn is_robotic(self) -> bool {
        matches!(self, Executor::SupervisedRobot | Executor::AutonomousRobot)
    }
}

impl AutomationLevel {
    /// All levels in order, for sweeps.
    pub const ALL: [AutomationLevel; 5] = [
        AutomationLevel::L0,
        AutomationLevel::L1,
        AutomationLevel::L2,
        AutomationLevel::L3,
        AutomationLevel::L4,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AutomationLevel::L0 => "L0",
            AutomationLevel::L1 => "L1",
            AutomationLevel::L2 => "L2",
            AutomationLevel::L3 => "L3",
            AutomationLevel::L4 => "L4",
        }
    }

    /// Paper name of the level.
    pub fn name(self) -> &'static str {
        match self {
            AutomationLevel::L0 => "No Automation",
            AutomationLevel::L1 => "Operator Assistance",
            AutomationLevel::L2 => "Partial Automation",
            AutomationLevel::L3 => "High Automation",
            AutomationLevel::L4 => "Full Automation",
        }
    }

    /// Who executes the given action at this level. Switch-hardware
    /// replacement stays human until L4 (it needs lifting heavy gear,
    /// §3.4); everything else robotizes at L2.
    pub fn executor_for(self, action: RepairAction) -> Executor {
        match self {
            AutomationLevel::L0 => Executor::Human,
            AutomationLevel::L1 => match action {
                // The cleaning unit doubles as a bench tool.
                RepairAction::CleanEndFace => Executor::HumanWithDevice,
                _ => Executor::Human,
            },
            AutomationLevel::L2 => match action {
                RepairAction::ReplaceSwitchHardware | RepairAction::ReplaceCable => Executor::Human,
                _ => Executor::SupervisedRobot,
            },
            AutomationLevel::L3 => match action {
                RepairAction::ReplaceSwitchHardware => Executor::Human,
                _ => Executor::AutonomousRobot,
            },
            AutomationLevel::L4 => Executor::AutonomousRobot,
        }
    }

    /// Whether proactive/predictive campaigns are allowed: requires the
    /// robots to act without a human in the loop (L3+). §4: proactive
    /// work is only near-free when no technician time is consumed.
    pub fn proactive_allowed(self) -> bool {
        self >= AutomationLevel::L3
    }

    /// Whether a human supervisor must be reserved for the duration of a
    /// robotic operation (Level 2's defining constraint).
    pub fn needs_supervisor(self) -> bool {
        self == AutomationLevel::L2
    }

    /// Whether robot escalations ("requests human support", §3.3.2) go to
    /// a technician (true through L3) or to a remote operator outside the
    /// hall (L4 — humans "provide oversight … without needing to be
    /// physically present").
    pub fn escalation_enters_hall(self) -> bool {
        self < AutomationLevel::L4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_labels() {
        assert!(AutomationLevel::L0 < AutomationLevel::L4);
        assert_eq!(AutomationLevel::ALL.len(), 5);
        assert_eq!(AutomationLevel::L2.label(), "L2");
        assert_eq!(AutomationLevel::L3.name(), "High Automation");
    }

    #[test]
    fn l0_is_all_human() {
        for a in RepairAction::LADDER {
            assert_eq!(AutomationLevel::L0.executor_for(a), Executor::Human);
        }
    }

    #[test]
    fn l1_assists_cleaning_only() {
        assert_eq!(
            AutomationLevel::L1.executor_for(RepairAction::CleanEndFace),
            Executor::HumanWithDevice
        );
        assert_eq!(
            AutomationLevel::L1.executor_for(RepairAction::Reseat),
            Executor::Human
        );
    }

    #[test]
    fn l2_supervised_for_light_work() {
        assert_eq!(
            AutomationLevel::L2.executor_for(RepairAction::Reseat),
            Executor::SupervisedRobot
        );
        assert_eq!(
            AutomationLevel::L2.executor_for(RepairAction::ReplaceCable),
            Executor::Human
        );
        assert!(AutomationLevel::L2.needs_supervisor());
    }

    #[test]
    fn switch_replacement_humanizes_until_l4() {
        for l in [
            AutomationLevel::L0,
            AutomationLevel::L2,
            AutomationLevel::L3,
        ] {
            assert_eq!(
                l.executor_for(RepairAction::ReplaceSwitchHardware),
                Executor::Human,
                "{l:?}"
            );
        }
        assert_eq!(
            AutomationLevel::L4.executor_for(RepairAction::ReplaceSwitchHardware),
            Executor::AutonomousRobot
        );
    }

    #[test]
    fn proactive_gate() {
        assert!(!AutomationLevel::L0.proactive_allowed());
        assert!(!AutomationLevel::L2.proactive_allowed());
        assert!(AutomationLevel::L3.proactive_allowed());
        assert!(AutomationLevel::L4.proactive_allowed());
    }

    #[test]
    fn l4_keeps_humans_out_of_halls() {
        assert!(AutomationLevel::L3.escalation_enters_hall());
        assert!(!AutomationLevel::L4.escalation_enters_hall());
    }
}
