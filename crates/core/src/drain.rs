//! Drain planning and pre-contact announcements — the cross-layer
//! co-design at the heart of the paper.
//!
//! §2: "Proactive measures can be taken, such as temporarily migrating
//! loads from physical hardware adjacent to the hardware being repaired.
//! For example, in networking, automation can report which network
//! cables will be contacted before the maintenance occurs." §4 asks for
//! "control algorithms for automatic fault recovery and dynamic network
//! resource reconfiguration to ensure continuous operation during
//! repairs".
//!
//! The planner does exactly that: given a target link and the actor's
//! clumsiness profile, it computes the deterministic *contact set* (from
//! topology), checks that draining the target — and optionally the
//! riskiest contacts — leaves sampled service pairs connected, and
//! produces a [`PreContactAnnouncement`] the network control plane
//! applies before anyone touches hardware. After repair, the drain is
//! released and a verification soak runs.

use dcmaint_dcnet::routing::pair_connectivity;
use dcmaint_dcnet::{AdminState, LinkId, NetState, NodeId, Topology};
use dcmaint_des::SimDuration;
use dcmaint_faults::contact_set;

/// The announcement the control plane publishes before physical work:
/// which cables will (or may) be touched, by what kind of actor, for how
/// long. §4: "a robot that knows when it will move cables also knows
/// which cables and the force applied".
#[derive(Debug, Clone)]
pub struct PreContactAnnouncement {
    /// Link being maintained.
    pub target: LinkId,
    /// Cables that may be physically contacted.
    pub contacts: Vec<LinkId>,
    /// Expected hands-on duration.
    pub expected_duration: SimDuration,
    /// Links the plan drains ahead of the work.
    pub drained: Vec<LinkId>,
}

/// Result of drain planning.
#[derive(Debug, Clone)]
pub enum DrainDecision {
    /// Safe to proceed; apply this announcement.
    Proceed(PreContactAnnouncement),
    /// Draining would disconnect service pairs; defer the maintenance
    /// (the fine-grained timing control §2 argues for).
    Defer {
        /// The link whose drain fails the connectivity check.
        blocking: LinkId,
    },
}

/// Drain planner configuration.
#[derive(Debug, Clone)]
pub struct DrainConfig {
    /// Also drain contact-set neighbors ahead of *human* work (their
    /// wide disturbance radius makes neighbor traffic unsafe). Robots
    /// touch so little that only the target is drained.
    pub drain_contacts_for_humans: bool,
    /// Maximum neighbors to drain (beyond this, defer instead — draining
    /// half a tray is itself an availability event).
    pub max_drained_neighbors: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            drain_contacts_for_humans: true,
            max_drained_neighbors: 6,
        }
    }
}

/// Plan maintenance on `target`. `clumsy_actor` selects whether the
/// contact set must also be drained (humans yes, robots no).
/// `service_pairs` are the sampled (src, dst) pairs whose connectivity
/// must survive the drain.
pub fn plan(
    cfg: &DrainConfig,
    topo: &Topology,
    state: &NetState,
    target: LinkId,
    clumsy_actor: bool,
    expected_duration: SimDuration,
    service_pairs: &[(NodeId, NodeId)],
) -> DrainDecision {
    let contacts = contact_set(topo, target);
    let before = pair_connectivity(topo, state, service_pairs);
    // The target itself must be drainable; if not, defer the repair (the
    // fine-grained timing control §2 argues for).
    let mut trial = state.clone();
    trial.set_admin(target, AdminState::Drained);
    if pair_connectivity(topo, &trial, service_pairs) < before {
        return DrainDecision::Defer { blocking: target };
    }
    let mut to_drain = vec![target];
    if clumsy_actor && cfg.drain_contacts_for_humans {
        // Best-effort neighbor drains: protect as many contacts as the
        // fabric's redundancy allows. A neighbor whose drain would
        // disconnect service stays hot — it remains exposed to the
        // disturbance roll, which is precisely the §1 cascading risk of
        // human work on thin redundancy.
        for &nb in contacts.iter() {
            if to_drain.len() > cfg.max_drained_neighbors {
                break;
            }
            trial.set_admin(nb, AdminState::Drained);
            if pair_connectivity(topo, &trial, service_pairs) < before {
                trial.set_admin(nb, state.link(nb).admin);
            } else {
                to_drain.push(nb);
            }
        }
    }
    DrainDecision::Proceed(PreContactAnnouncement {
        target,
        contacts,
        expected_duration,
        drained: to_drain,
    })
}

/// Apply an announcement: drain the listed links and mark the target as
/// under maintenance.
pub fn apply(state: &mut NetState, ann: &PreContactAnnouncement) {
    for &l in &ann.drained {
        state.set_admin(l, AdminState::Drained);
    }
    state.set_admin(ann.target, AdminState::Maintenance);
}

/// Release an announcement after repair: return all drained links to
/// service.
pub fn release(state: &mut NetState, ann: &PreContactAnnouncement) {
    for &l in &ann.drained {
        state.set_admin(l, AdminState::InService);
    }
    state.set_admin(ann.target, AdminState::InService);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::{DiversityProfile, LinkHealth};
    use dcmaint_des::SimRng;

    fn setup() -> (Topology, NetState, Vec<(NodeId, NodeId)>) {
        let t = leaf_spine(
            2,
            3,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        );
        let s = NetState::new(&t);
        let servers = t.servers();
        let pairs: Vec<_> = (0..servers.len())
            .flat_map(|i| ((i + 1)..servers.len()).map(move |j| (i, j)))
            .map(|(i, j)| (servers[i], servers[j]))
            .collect();
        (t, s, pairs)
    }

    fn uplink(t: &Topology) -> LinkId {
        // A leaf-spine uplink (redundant; safe to drain).
        t.link_ids()
            .find(|&l| {
                let (a, b) = t.endpoints(l);
                t.node(a).is_switch() && t.node(b).is_switch()
            })
            .unwrap()
    }

    fn access(t: &Topology) -> LinkId {
        // A server access link (single-homed; draining disconnects).
        t.link_ids()
            .find(|&l| {
                let (a, b) = t.endpoints(l);
                !t.node(a).is_switch() || !t.node(b).is_switch()
            })
            .unwrap()
    }

    #[test]
    fn redundant_link_proceeds() {
        let (t, s, pairs) = setup();
        let d = plan(
            &DrainConfig::default(),
            &t,
            &s,
            uplink(&t),
            false,
            SimDuration::from_mins(3),
            &pairs,
        );
        match d {
            DrainDecision::Proceed(ann) => {
                assert_eq!(ann.drained, vec![uplink(&t)]);
                assert_eq!(ann.contacts, t.disturb_neighbors(uplink(&t)).to_vec());
            }
            DrainDecision::Defer { .. } => panic!("uplink drain must be safe"),
        }
    }

    #[test]
    fn single_homed_access_defers() {
        let (t, s, pairs) = setup();
        let d = plan(
            &DrainConfig::default(),
            &t,
            &s,
            access(&t),
            false,
            SimDuration::from_mins(3),
            &pairs,
        );
        match d {
            DrainDecision::Defer { blocking } => assert_eq!(blocking, access(&t)),
            DrainDecision::Proceed(_) => panic!("access drain must defer"),
        }
    }

    #[test]
    fn down_target_can_proceed() {
        // A hard-down link is already not carrying traffic; draining it
        // costs nothing and repair should proceed.
        let (t, mut s, pairs) = setup();
        let l = access(&t);
        s.set_health(l, LinkHealth::Down, 1.0);
        let d = plan(
            &DrainConfig::default(),
            &t,
            &s,
            l,
            false,
            SimDuration::from_mins(3),
            &pairs,
        );
        assert!(matches!(d, DrainDecision::Proceed(_)));
    }

    #[test]
    fn humans_get_wider_drains() {
        let (t, s, pairs) = setup();
        let l = uplink(&t);
        let robot = plan(
            &DrainConfig::default(),
            &t,
            &s,
            l,
            false,
            SimDuration::from_mins(3),
            &pairs,
        );
        let human = plan(
            &DrainConfig::default(),
            &t,
            &s,
            l,
            true,
            SimDuration::from_hours(1),
            &pairs,
        );
        let (r, h) = match (robot, human) {
            (DrainDecision::Proceed(r), DrainDecision::Proceed(h)) => (r, h),
            _ => panic!("both should proceed on the redundant fabric"),
        };
        assert_eq!(r.drained.len(), 1);
        assert!(h.drained.len() > 1, "human work drains contacts too");
        assert!(h.drained.len() <= 1 + DrainConfig::default().max_drained_neighbors);
    }

    #[test]
    fn apply_and_release_roundtrip() {
        let (t, mut s, pairs) = setup();
        let l = uplink(&t);
        let DrainDecision::Proceed(ann) = plan(
            &DrainConfig::default(),
            &t,
            &s,
            l,
            true,
            SimDuration::from_mins(10),
            &pairs,
        ) else {
            panic!("expected proceed");
        };
        apply(&mut s, &ann);
        assert_eq!(s.link(l).admin, AdminState::Maintenance);
        for &d in &ann.drained {
            if d != l {
                assert_eq!(s.link(d).admin, AdminState::Drained);
            }
        }
        // Connectivity still intact while drained (that was the check).
        assert_eq!(pair_connectivity(&t, &s, &pairs), 1.0);
        release(&mut s, &ann);
        for &d in &ann.drained {
            assert_eq!(s.link(d).admin, AdminState::InService);
        }
        assert_eq!(s.link(l).admin, AdminState::InService);
    }

    #[test]
    fn degraded_fabric_tightens_the_gate() {
        // With spine-0 dead, the remaining spine's uplinks become
        // critical: draining one must now defer.
        let (t, mut s, pairs) = setup();
        let spine0 = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        for l in t.links_of(spine0) {
            s.set_health(l, LinkHealth::Down, 1.0);
        }
        let spine1 = t.node_ids().find(|&n| t.node(n).name == "spine-1").unwrap();
        let critical = t.links_of(spine1)[0];
        let d = plan(
            &DrainConfig::default(),
            &t,
            &s,
            critical,
            false,
            SimDuration::from_mins(3),
            &pairs,
        );
        assert!(
            matches!(d, DrainDecision::Defer { .. }),
            "last-path drain must defer"
        );
    }
}
