//! Human/robot co-existence safety interlocks.
//!
//! §3.4: "safety is a major concern when humans and robots need to
//! co-exist." The interlock is the minimal sound policy: every physical
//! work item claims an *exclusion zone* (a span of racks in one row) for
//! its duration; a robot may not operate inside a zone claimed by a
//! human and vice versa. Two robots may share a zone (their motion is
//! mutually coordinated by the fleet controller); two humans likewise
//! manage themselves.
//!
//! The ledger answers one question for the dispatcher: *given that I
//! want to work at rack R from `start` for `duration`, when is the
//! earliest conflict-free start?* Claims are pruned lazily.

use dcmaint_dcnet::RackLoc;
use dcmaint_des::{SimDuration, SimTime};

/// Who claims the zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneActor {
    /// A technician (humans exclude robots).
    Human,
    /// A robotic unit (robots exclude humans, not each other).
    Robot,
}

/// Opaque handle to a recorded claim, for early release when the work
/// holding the zone aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClaimId(u64);

impl ClaimId {
    /// The raw handle value, for checkpoint encoding.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from a checkpointed raw value. Only meaningful
    /// together with a [`ZoneLedger`] restored from the same snapshot.
    pub fn from_raw(v: u64) -> Self {
        ClaimId(v)
    }
}

/// One active exclusion claim.
#[derive(Debug, Clone)]
struct Claim {
    id: ClaimId,
    actor: ZoneActor,
    row: u32,
    col_lo: u32,
    col_hi: u32,
    from: SimTime,
    until: SimTime,
}

/// Interlock configuration.
#[derive(Debug, Clone)]
pub struct SafetyConfig {
    /// Exclusion half-width in racks on each side of the work rack
    /// (humans need walking/turning room; 1 rack each side default).
    pub zone_halfwidth: u32,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig { zone_halfwidth: 1 }
    }
}

/// The exclusion-zone ledger.
#[derive(Debug, Default)]
pub struct ZoneLedger {
    cfg: SafetyConfig,
    claims: Vec<Claim>,
    next_id: u64,
}

impl ZoneLedger {
    /// New ledger.
    pub fn new(cfg: SafetyConfig) -> Self {
        ZoneLedger {
            cfg,
            claims: Vec::new(),
            next_id: 0,
        }
    }

    fn prune(&mut self, now: SimTime) {
        self.claims.retain(|c| c.until > now);
    }

    /// Active claims (after pruning at `now`).
    pub fn active(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.claims.len()
    }

    fn zone_of(&self, rack: RackLoc) -> (u32, u32, u32) {
        let lo = rack.col.saturating_sub(self.cfg.zone_halfwidth);
        let hi = rack.col + self.cfg.zone_halfwidth;
        (rack.row, lo, hi)
    }

    fn conflicts(a: ZoneActor, b: ZoneActor) -> bool {
        a != b // human excludes robot and vice versa; same kind coexists
    }

    /// Earliest start at or after `desired` such that the interval
    /// `[start, start + duration)` at `rack` is conflict-free for
    /// `actor`. Greedy: pushes past each conflicting claim's end.
    ///
    /// `now` is the current simulation instant and must be monotone
    /// across calls; expired claims are pruned against it. (`desired`
    /// may lie arbitrarily far in the future — pruning against it would
    /// drop claims that still conflict with a later, earlier-starting
    /// request.)
    pub fn earliest_clear(
        &mut self,
        actor: ZoneActor,
        rack: RackLoc,
        now: SimTime,
        desired: SimTime,
        duration: SimDuration,
    ) -> SimTime {
        self.prune(now);
        let desired = desired.max(now);
        let (row, lo, hi) = self.zone_of(rack);
        let mut start = desired;
        // At most `claims` pushes are needed.
        for _ in 0..=self.claims.len() {
            let end = start + duration;
            let conflict = self
                .claims
                .iter()
                .filter(|c| Self::conflicts(actor, c.actor))
                .filter(|c| c.row == row && c.col_lo <= hi && lo <= c.col_hi)
                .find(|c| c.from < end && start < c.until);
            match conflict {
                Some(c) => start = c.until,
                None => break,
            }
        }
        start
    }

    /// Record the claim for `[start, start + duration)` at `rack`.
    /// Returns a handle usable with [`ZoneLedger::release`].
    pub fn claim(
        &mut self,
        actor: ZoneActor,
        rack: RackLoc,
        start: SimTime,
        duration: SimDuration,
    ) -> ClaimId {
        let id = ClaimId(self.next_id);
        self.next_id += 1;
        let (row, col_lo, col_hi) = self.zone_of(rack);
        self.claims.push(Claim {
            id,
            actor,
            row,
            col_lo,
            col_hi,
            from: start,
            until: start + duration,
        });
        id
    }

    /// Convenience: find the earliest clear start and claim it in one
    /// step. Returns the start. `now` must be monotone across calls.
    pub fn reserve(
        &mut self,
        actor: ZoneActor,
        rack: RackLoc,
        now: SimTime,
        desired: SimTime,
        duration: SimDuration,
    ) -> SimTime {
        self.reserve_claim(actor, rack, now, desired, duration).0
    }

    /// [`ZoneLedger::reserve`], also returning the claim handle so an
    /// aborting operation can release the zone early.
    pub fn reserve_claim(
        &mut self,
        actor: ZoneActor,
        rack: RackLoc,
        now: SimTime,
        desired: SimTime,
        duration: SimDuration,
    ) -> (SimTime, ClaimId) {
        let start = self.earliest_clear(actor, rack, now, desired, duration);
        let id = self.claim(actor, rack, start, duration);
        (start, id)
    }

    /// Release a claim early at `now`: a claim already underway is
    /// truncated to end now; one that has not started yet is removed
    /// outright. Releasing an unknown/expired id is a no-op (the claim
    /// aged out of the ledger on its own — exactly the state an abort
    /// wants).
    pub fn release(&mut self, id: ClaimId, now: SimTime) {
        if let Some(c) = self.claims.iter_mut().find(|c| c.id == id) {
            c.until = c.until.min(now.max(c.from));
        }
        self.claims.retain(|c| c.until > c.from);
    }

    /// True if the claim is still present with time remaining after
    /// `now` — the leak the abort invariant tests for.
    pub fn is_held_beyond(&self, id: ClaimId, now: SimTime) -> bool {
        self.claims.iter().any(|c| c.id == id && c.until > now)
    }

    /// Handles of every claim still holding zone time after `now`. The
    /// end-of-run leak audit compares this against the repairs actually
    /// in flight.
    pub fn open_claim_ids(&self, now: SimTime) -> Vec<ClaimId> {
        self.claims
            .iter()
            .filter(|c| c.until > now)
            .map(|c| c.id)
            .collect()
    }

    /// Append the ledger's claims and id counter to a checkpoint.
    /// Configuration is not recorded — the restoring side rebuilds the
    /// ledger from the same `SafetyConfig`.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.u64(self.next_id);
        enc.usize(self.claims.len());
        for c in &self.claims {
            enc.u64(c.id.0);
            enc.bool(c.actor == ZoneActor::Human);
            enc.u32(c.row);
            enc.u32(c.col_lo);
            enc.u32(c.col_hi);
            enc.u64(c.from.as_micros());
            enc.u64(c.until.as_micros());
        }
    }

    /// Restore checkpointed state into this ledger. Inverse of
    /// [`ZoneLedger::save`].
    pub fn restore(&mut self, dec: &mut dcmaint_ckpt::Dec) -> Result<(), dcmaint_ckpt::CkptError> {
        self.next_id = dec.u64()?;
        let n = dec.usize()?;
        self.claims.clear();
        for _ in 0..n {
            self.claims.push(Claim {
                id: ClaimId(dec.u64()?),
                actor: if dec.bool()? {
                    ZoneActor::Human
                } else {
                    ZoneActor::Robot
                },
                row: dec.u32()?,
                col_lo: dec.u32()?,
                col_hi: dec.u32()?,
                from: SimTime::from_micros(dec.u64()?),
                until: SimTime::from_micros(dec.u64()?),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(mins: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(mins)
    }

    fn rack(row: u32, col: u32) -> RackLoc {
        RackLoc { row, col }
    }

    #[test]
    fn empty_ledger_grants_immediately() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        assert_eq!(
            z.earliest_clear(
                ZoneActor::Robot,
                rack(0, 3),
                SimTime::ZERO,
                at(10),
                SimDuration::from_mins(5)
            ),
            at(10)
        );
    }

    #[test]
    fn robot_waits_for_human_in_zone() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Human,
            rack(0, 3),
            at(0),
            SimDuration::from_mins(60),
        );
        // Same rack: wait until the human leaves.
        let s = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(10),
            SimDuration::from_mins(5),
        );
        assert_eq!(s, at(60));
        // Adjacent rack (within halfwidth 1): also blocked.
        let s2 = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 4),
            SimTime::ZERO,
            at(10),
            SimDuration::from_mins(5),
        );
        assert_eq!(s2, at(60));
        // Two racks away: zones [2,4] and [4,6] overlap at col 4 → blocked;
        // three racks away is clear.
        let s3 = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 6),
            SimTime::ZERO,
            at(10),
            SimDuration::from_mins(5),
        );
        assert_eq!(s3, at(10));
    }

    #[test]
    fn human_waits_for_robot_symmetrically() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Robot,
            rack(1, 5),
            at(0),
            SimDuration::from_mins(30),
        );
        let s = z.earliest_clear(
            ZoneActor::Human,
            rack(1, 5),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(10),
        );
        assert_eq!(s, at(30));
    }

    #[test]
    fn same_kind_coexists() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Robot,
            rack(0, 3),
            at(0),
            SimDuration::from_mins(60),
        );
        let s = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(5),
            SimDuration::from_mins(5),
        );
        assert_eq!(s, at(5), "robots coordinate among themselves");
        z.claim(
            ZoneActor::Human,
            rack(2, 3),
            at(0),
            SimDuration::from_mins(60),
        );
        let s2 = z.earliest_clear(
            ZoneActor::Human,
            rack(2, 3),
            SimTime::ZERO,
            at(5),
            SimDuration::from_mins(5),
        );
        assert_eq!(s2, at(5));
    }

    #[test]
    fn different_rows_never_conflict() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Human,
            rack(0, 3),
            at(0),
            SimDuration::from_hours(8),
        );
        let s = z.earliest_clear(
            ZoneActor::Robot,
            rack(1, 3),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(5),
        );
        assert_eq!(s, SimTime::ZERO);
    }

    #[test]
    fn chains_past_consecutive_claims() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Human,
            rack(0, 3),
            at(0),
            SimDuration::from_mins(30),
        );
        z.claim(
            ZoneActor::Human,
            rack(0, 3),
            at(30),
            SimDuration::from_mins(30),
        );
        let s = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(5),
        );
        assert_eq!(s, at(60));
    }

    #[test]
    fn expired_claims_are_pruned() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Human,
            rack(0, 3),
            at(0),
            SimDuration::from_mins(10),
        );
        assert_eq!(z.active(at(5)), 1);
        assert_eq!(z.active(at(20)), 0);
        let s = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 3),
            at(20),
            at(20),
            SimDuration::from_mins(5),
        );
        assert_eq!(s, at(20));
    }

    #[test]
    fn reserve_claims_atomically() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        let s1 = z.reserve(
            ZoneActor::Human,
            rack(0, 0),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(20),
        );
        assert_eq!(s1, at(0));
        let s2 = z.reserve(
            ZoneActor::Robot,
            rack(0, 0),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(20),
        );
        assert_eq!(s2, at(20));
        // A second human fits *before* the robot's window (humans
        // coexist with the first human claim, and [0,20) does not
        // overlap the robot's [20,40)).
        let s3 = z.reserve(
            ZoneActor::Human,
            rack(0, 0),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(20),
        );
        assert_eq!(s3, at(0));
        // But a long human job that cannot finish before the robot
        // starts queues behind it.
        let s4 = z.reserve(
            ZoneActor::Human,
            rack(0, 0),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(30),
        );
        assert_eq!(s4, at(40), "human queues behind the robot's window");
    }

    #[test]
    fn release_frees_the_zone_for_the_other_actor() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        let (s, id) = z.reserve_claim(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(0),
            SimDuration::from_hours(2),
        );
        assert_eq!(s, at(0));
        // Mid-claim abort at t=10: the human no longer waits two hours.
        z.release(id, at(10));
        assert!(!z.is_held_beyond(id, at(10)));
        let h = z.earliest_clear(
            ZoneActor::Human,
            rack(0, 3),
            at(10),
            at(10),
            SimDuration::from_mins(5),
        );
        assert_eq!(h, at(10));
    }

    #[test]
    fn releasing_a_not_yet_started_claim_removes_it() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        let (s, id) = z.reserve_claim(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(60),
            SimDuration::from_mins(30),
        );
        assert_eq!(s, at(60));
        z.release(id, at(5));
        assert_eq!(z.active(at(5)), 0);
        // Double release and unknown ids are no-ops.
        z.release(id, at(6));
        z.release(ClaimId(999), at(6));
    }

    #[test]
    fn future_claim_allows_work_before_it() {
        let mut z = ZoneLedger::new(SafetyConfig::default());
        z.claim(
            ZoneActor::Human,
            rack(0, 3),
            at(60),
            SimDuration::from_mins(30),
        );
        // A 5-minute robot job finishing before the human arrives fits.
        let s = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(0),
            SimDuration::from_mins(5),
        );
        assert_eq!(s, SimTime::ZERO);
        // A 2-hour robot job overlaps the human window → pushed after.
        let s2 = z.earliest_clear(
            ZoneActor::Robot,
            rack(0, 3),
            SimTime::ZERO,
            at(0),
            SimDuration::from_hours(2),
        );
        assert_eq!(s2, at(90));
    }
}
