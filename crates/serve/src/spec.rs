//! Job specifications: the canonical text form clients POST and the
//! spool journals store.
//!
//! One job is one line of `key=value` tokens. The grammar is strict —
//! unknown keys, malformed values, and missing requirements are parse
//! errors, never silent defaults — because the ingress journal is
//! replayed verbatim on restart: a line the daemon accepted once must
//! parse identically forever. [`JobSpec::to_line`] renders the
//! canonical form (every key, fixed order), so journaled specs are
//! byte-stable regardless of how the client spelled theirs.

use dcmaint_des::SimDuration;
use dcmaint_obs::ObsConfig;
use dcmaint_scenarios::{ScenarioConfig, TopologySpec};
use maintctl::AutomationLevel;

/// What kind of work a job is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One scenario run; output is the run's summary JSON.
    Run,
    /// A seed-replicated level sweep; output is the rendered table.
    Sweep,
}

/// Panic-injection test hook, part of the spec so crash-recovery tests
/// are driven through the same front door as real work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boom {
    /// No injected failure.
    None,
    /// Panic mid-run on the *first* attempt only — the supervised
    /// restart must recover to a byte-identical output.
    Once,
    /// Panic mid-run on every attempt — the job must fail
    /// deterministically after `max_attempts`, daemon intact.
    Always,
}

/// A parsed job specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Run or sweep.
    pub kind: JobKind,
    /// Automation level; `None` (sweep only) sweeps all levels.
    pub level: Option<AutomationLevel>,
    /// Simulated days.
    pub days: u64,
    /// Base seed.
    pub seed: u64,
    /// Seed replicates per level (sweeps; 1 for runs).
    pub seeds: u64,
    /// Use the small CI fabric.
    pub quick: bool,
    /// Capture the observability plane (and stream its journal live).
    pub obs: bool,
    /// Run with the engine self-profiler on; the daemon exposes the
    /// job's `prof/…` counters on `GET /metrics` once it finishes.
    pub profile: bool,
    /// Panic-injection hook.
    pub boom: Boom,
    /// Test hook: sleep this many wall milliseconds per checkpoint
    /// quantum, to make wall-clock timeouts and mid-job kills testable
    /// without giant simulations. Never affects simulated output.
    pub slow_ms: u64,
}

impl JobSpec {
    /// A minimal run-job spec at the given level.
    pub fn run(level: AutomationLevel, days: u64, seed: u64) -> JobSpec {
        JobSpec {
            kind: JobKind::Run,
            level: Some(level),
            days,
            seed,
            seeds: 1,
            quick: false,
            obs: false,
            profile: false,
            boom: Boom::None,
            slow_ms: 0,
        }
    }

    /// Parse a spec line. Strict: every token must be a known
    /// `key=value`, and the combination must make sense.
    pub fn parse(line: &str) -> Result<JobSpec, String> {
        let mut kind = None;
        let mut level: Option<Option<AutomationLevel>> = None;
        let mut days = 14u64;
        let mut seed = 42u64;
        let mut seeds = 1u64;
        let mut quick = false;
        let mut obs = false;
        let mut profile = false;
        let mut boom = Boom::None;
        let mut slow_ms = 0u64;
        for tok in line.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("malformed token {tok:?} (expected key=value)"))?;
            match k {
                "kind" => {
                    kind = Some(match v {
                        "run" => JobKind::Run,
                        "sweep" => JobKind::Sweep,
                        other => return Err(format!("unknown kind {other:?}")),
                    })
                }
                "level" => {
                    level = Some(match v {
                        "all" => None,
                        other => Some(parse_level(other)?),
                    })
                }
                "days" => days = parse_num(k, v)?,
                "seed" => seed = parse_num(k, v)?,
                "seeds" => seeds = parse_num(k, v)?,
                "quick" => quick = parse_bool(k, v)?,
                "obs" => obs = parse_bool(k, v)?,
                "profile" => profile = parse_bool(k, v)?,
                "boom" => {
                    boom = match v {
                        "none" => Boom::None,
                        "once" => Boom::Once,
                        "always" => Boom::Always,
                        other => return Err(format!("unknown boom {other:?}")),
                    }
                }
                "slow_ms" => slow_ms = parse_num(k, v)?,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        let kind = kind.ok_or("missing kind=run|sweep")?;
        let level = level.unwrap_or(Some(AutomationLevel::L3));
        if days == 0 {
            return Err("days must be at least 1".to_string());
        }
        if seeds == 0 {
            return Err("seeds must be at least 1".to_string());
        }
        match kind {
            JobKind::Run => {
                if level.is_none() {
                    return Err("level=all is only valid for kind=sweep".to_string());
                }
                if seeds != 1 {
                    return Err("seeds is only valid for kind=sweep".to_string());
                }
            }
            JobKind::Sweep => {
                if boom != Boom::None {
                    return Err("boom is only valid for kind=run".to_string());
                }
            }
        }
        Ok(JobSpec {
            kind,
            level,
            days,
            seed,
            seeds,
            quick,
            obs,
            profile,
            boom,
            slow_ms,
        })
    }

    /// Canonical text form: every key, fixed order. `parse ∘ to_line`
    /// is the identity.
    pub fn to_line(&self) -> String {
        format!(
            "kind={} level={} days={} seed={} seeds={} quick={} obs={} profile={} boom={} slow_ms={}",
            match self.kind {
                JobKind::Run => "run",
                JobKind::Sweep => "sweep",
            },
            self.level.map_or("all", |l| l.label()),
            self.days,
            self.seed,
            self.seeds,
            u8::from(self.quick),
            u8::from(self.obs),
            u8::from(self.profile),
            match self.boom {
                Boom::None => "none",
                Boom::Once => "once",
                Boom::Always => "always",
            },
            self.slow_ms,
        )
    }

    /// The scenario configuration a `kind=run` job executes. Mirrors
    /// the sweep engine's quick-fabric shaping so a run job and a
    /// single-seed sweep replicate agree on what `quick` means.
    pub fn scenario_config(&self) -> ScenarioConfig {
        let level = self.level.unwrap_or(AutomationLevel::L3);
        let mut cfg = ScenarioConfig::at_level(self.seed, level);
        cfg.duration = SimDuration::from_days(self.days);
        if self.quick {
            cfg.topology = TopologySpec::LeafSpine {
                spines: 2,
                leaves: 6,
                servers_per_leaf: 2,
            };
            cfg.poll_period = SimDuration::from_secs(120);
            cfg.faults.mtbi_per_link = SimDuration::from_days(12);
        }
        if self.obs {
            cfg.obs = ObsConfig::enabled();
        }
        if self.profile {
            cfg.obs.profiling = true;
        }
        cfg
    }
}

fn parse_level(s: &str) -> Result<AutomationLevel, String> {
    match s.to_ascii_uppercase().as_str() {
        "L0" | "0" => Ok(AutomationLevel::L0),
        "L1" | "1" => Ok(AutomationLevel::L1),
        "L2" | "2" => Ok(AutomationLevel::L2),
        "L3" | "3" => Ok(AutomationLevel::L3),
        "L4" | "4" => Ok(AutomationLevel::L4),
        other => Err(format!("unknown level {other:?} (use L0..L4 or all)")),
    }
}

fn parse_num(k: &str, v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("{k} must be an unsigned integer, got {v:?}"))
}

fn parse_bool(k: &str, v: &str) -> Result<bool, String> {
    match v {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("{k} must be 0 or 1, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_line_round_trips() {
        let specs = [
            JobSpec::run(AutomationLevel::L3, 14, 42),
            JobSpec {
                kind: JobKind::Sweep,
                level: None,
                days: 5,
                seed: 7,
                seeds: 3,
                quick: true,
                obs: true,
                profile: true,
                boom: Boom::None,
                slow_ms: 0,
            },
            JobSpec {
                boom: Boom::Once,
                slow_ms: 25,
                quick: true,
                ..JobSpec::run(AutomationLevel::L1, 3, 9)
            },
        ];
        for spec in specs {
            let line = spec.to_line();
            assert_eq!(JobSpec::parse(&line), Ok(spec.clone()), "{line}");
            // Canonical form is a fixed point.
            assert_eq!(JobSpec::parse(&line).unwrap().to_line(), line);
        }
    }

    #[test]
    fn sparse_client_spellings_normalize() {
        let s = JobSpec::parse("kind=run level=l2 days=3").unwrap();
        assert_eq!(s.level, Some(AutomationLevel::L2));
        assert_eq!((s.days, s.seed, s.seeds), (3, 42, 1));
        assert_eq!(
            s.to_line(),
            "kind=run level=L2 days=3 seed=42 seeds=1 quick=0 obs=0 profile=0 boom=none slow_ms=0"
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "missing kind"),
            ("days=3", "missing kind"),
            ("kind=walk", "unknown kind"),
            ("kind=run frobnicate=1", "unknown key"),
            ("kind=run days=zero", "unsigned integer"),
            ("kind=run days=0", "at least 1"),
            ("kind=run level=all", "only valid for kind=sweep"),
            ("kind=run seeds=4", "only valid for kind=sweep"),
            ("kind=sweep boom=once", "only valid for kind=run"),
            ("kind=run obs=maybe", "must be 0 or 1"),
            ("kind=run level=L9", "unknown level"),
            ("kind=run boom", "expected key=value"),
        ] {
            let err = JobSpec::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line:?} → {err}");
        }
    }

    #[test]
    fn run_config_matches_quick_fabric_shape() {
        let mut spec = JobSpec::run(AutomationLevel::L0, 4, 5);
        spec.quick = true;
        spec.obs = true;
        let cfg = spec.scenario_config();
        assert_eq!(cfg.duration, SimDuration::from_days(4));
        assert!(cfg.obs.enabled);
        assert!(matches!(
            cfg.topology,
            TopologySpec::LeafSpine {
                spines: 2,
                leaves: 6,
                servers_per_leaf: 2
            }
        ));
    }
}
