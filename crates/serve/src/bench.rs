//! The serve-plane benchmark behind `selfmaint serve --bench`: an
//! in-process daemon exercised over real TCP, measuring the three
//! numbers ISSUE cares about — job throughput, concurrent stream
//! delivery, and recovery latency after an injected crash.
//!
//! Like `--bench-obs` and `--bench-sweep`, every wall-clock number lands
//! in a side file (`BENCH_serve.json`, written by the CLI) and stderr,
//! never on deterministic stdout. The bench doubles as a determinism
//! check: the crash-recovered job's output must byte-match the clean
//! run's.

use std::io::BufRead;
use std::time::Duration;

use dcmaint_des::SimDuration;

use crate::client;
use crate::server::Server;
use crate::ServeConfig;

/// Wait-deadline generous enough for CI boxes.
const DEADLINE: Duration = Duration::from_secs(300);

/// Run the bench against a fresh spool; returns the `BENCH_serve.json`
/// payload or a diagnostic.
pub fn run_serve_bench(jobs: u64, streams: usize) -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!("dcmaint-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        spool: dir.to_string_lossy().into_owned(),
        checkpoint_every: SimDuration::from_hours(12),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).map_err(|e| format!("cannot start bench daemon: {e}"))?;
    let port = server.port();

    // Subscribers first, so the whole bench runs under streaming load.
    let mut subs = Vec::new();
    for _ in 0..streams {
        let mut reader = client::open_stream(port).map_err(|e| format!("stream: {e}"))?;
        subs.push(std::thread::spawn(move || {
            let mut lines = 0u64;
            let mut buf = String::new();
            loop {
                buf.clear();
                match reader.read_line(&mut buf) {
                    Ok(0) | Err(_) => return lines,
                    Ok(_) => lines += 1,
                }
            }
        }));
    }

    // Throughput: a batch of small obs-emitting jobs, accepted up front,
    // drained by the single worker.
    // lint:allow(wall-clock): benchmark measurement, side-file only.
    let t0 = std::time::Instant::now();
    let mut ids = Vec::new();
    for k in 0..jobs {
        let spec = format!("kind=run level=L3 days=2 quick=1 obs=1 seed={}", 100 + k);
        ids.push(client::submit(port, &spec)?);
    }
    for &id in &ids {
        let state = client::wait_terminal(port, id, DEADLINE)?;
        if state != "done" {
            return Err(format!("bench job {id} ended {state}"));
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let jobs_per_hour = jobs as f64 * 3600.0 / wall_s.max(1e-9);

    // Recovery latency: identical specs, one clean, one with an injected
    // mid-run panic. The delta is the cost of one supervised restart
    // (backoff pause + snapshot restore + one-quantum replay).
    let timed = |spec: &str| -> Result<(f64, String), String> {
        // lint:allow(wall-clock): benchmark measurement, side-file only.
        let t = std::time::Instant::now();
        let id = client::submit(port, spec)?;
        let state = client::wait_terminal(port, id, DEADLINE)?;
        if state != "done" {
            return Err(format!("recovery-bench job {id} ended {state}"));
        }
        Ok((
            t.elapsed().as_secs_f64() * 1e3,
            client::fetch_output(port, id)?,
        ))
    };
    let base = "kind=run level=L2 days=4 quick=1 obs=1 seed=777";
    let (clean_ms, clean_out) = timed(base)?;
    let (crashed_ms, crashed_out) = timed(&format!("{base} boom=once"))?;
    let outputs_match = clean_out == crashed_out;

    server.request_shutdown();
    server.join();
    let counts: Vec<u64> = subs.into_iter().map(|t| t.join().unwrap_or(0)).collect();
    let _ = std::fs::remove_dir_all(&dir);
    if !outputs_match {
        return Err("crash-recovered output differs from the clean run".to_string());
    }

    Ok(format!(
        "{{\"bench\":\"serve\",\"jobs\":{jobs},\"wall_s\":{wall_s:.3},\
         \"jobs_per_hour\":{jobs_per_hour:.1},\"streams\":{streams},\
         \"stream_lines_min\":{},\"stream_lines_max\":{},\
         \"clean_ms\":{clean_ms:.1},\"crash_recovered_ms\":{crashed_ms:.1},\
         \"recovery_overhead_ms\":{:.1},\"recovery_outputs_match\":true}}\n",
        counts.iter().min().copied().unwrap_or(0),
        counts.iter().max().copied().unwrap_or(0),
        (crashed_ms - clean_ms).max(0.0),
    ))
}
