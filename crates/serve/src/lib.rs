//! `dcmaint-serve` — the crash-tolerant maintenance-plane daemon behind
//! `selfmaint serve`.
//!
//! The paper's §4 controller is a service, not a batch job: it must
//! accept work from many clients, keep running through worker panics and
//! process kills, and never trade away the determinism contract the rest
//! of this workspace is built on. The daemon earns those properties by
//! construction rather than by heroics:
//!
//! * **Nondeterminism stays at the edge.** The TCP front end is the only
//!   racy component. Every accepted job is appended (and fsynced) to a
//!   durable ingress journal *before* the client sees 202, so the set of
//!   accepted jobs is replayable. The engine side is a single worker
//!   thread consuming that journal in job-id order — the simulator never
//!   observes connection interleavings.
//! * **Panics are contained, crashes are rewound.** The worker runs each
//!   job segment under `catch_unwind` and snapshots engine state every
//!   checkpoint quantum (tmp + rename). A panic or SIGKILL costs at most
//!   one quantum: the supervisor (or the next process) restores the last
//!   snapshot and replays forward, and because snapshots cut at event
//!   boundaries the uninterrupted run also passes through, the final
//!   output is byte-identical (PR 5's restore ≡ continuous contract).
//! * **Misbehaving clients cannot reach the engine.** Subscribers tail a
//!   bounded broadcast ring; a slow or stalled one is evicted when it
//!   lags the ring or blocks past the write timeout. A full queue sheds
//!   load with `503 + Retry-After` instead of buffering unboundedly.
//!
//! The degradation ladder, in order: stream eviction → load shedding →
//! per-job wall-clock timeout (kill the attempt, requeue from the last
//! snapshot, fail deterministically after `max_attempts`) → graceful
//! drain (`POST /v1/shutdown`: snapshot the in-flight job at the next
//! quantum, park it, exit 0) → fail-stop (SIGTERM/SIGKILL: the ingress
//! journal plus the last snapshot make the restart lossless).
//!
//! Endpoints: `POST /v1/jobs` (spec line in the body), `GET
//! /v1/jobs/<id>`, `GET /v1/jobs/<id>/output`, `GET /v1/stream`
//! (live JSONL fan-out), `GET /status`, `GET /metrics`, `POST
//! /v1/shutdown`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcmaint_des::SimDuration;

pub mod bench;
pub mod client;
pub mod fanout;
pub mod http;
pub mod queue;
pub mod server;
pub mod spec;
pub mod worker;

pub use bench::run_serve_bench;
pub use fanout::{Fanout, Poll};
pub use queue::{Spool, SpoolState};
pub use server::Server;
pub use spec::{Boom, JobKind, JobSpec};
pub use worker::{JobRecord, JobState};

/// Daemon configuration. Everything that shapes *behavior under load*
/// is a knob here; everything that shapes *simulation output* lives in
/// the job spec, so two daemons with different serve configs still
/// produce byte-identical job outputs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = pick an ephemeral port).
    pub port: u16,
    /// Spool directory: ingress/done journals, per-job snapshots,
    /// attempt counters, and outputs.
    pub spool: String,
    /// Simulated time between engine snapshots; also the granularity of
    /// shutdown, timeout, and panic-recovery cuts.
    pub checkpoint_every: SimDuration,
    /// Queue depth above which new jobs are shed with 503 + Retry-After.
    pub max_queue: usize,
    /// Attempts per job (first run + retries) before it is failed
    /// deterministically.
    pub max_attempts: u32,
    /// Per-job wall-clock budget per attempt, in milliseconds
    /// (`None` = unlimited). Checked at quantum boundaries.
    pub job_timeout_ms: Option<u64>,
    /// Broadcast ring capacity (lines) for `/v1/stream` subscribers.
    pub ring_capacity: usize,
    /// Socket write timeout for stream subscribers, in milliseconds — a
    /// subscriber that blocks longer is evicted.
    pub write_timeout_ms: u64,
    /// Base pause before restarting a panicked/timed-out attempt, in
    /// milliseconds (grows exponentially per attempt, seeded jitter).
    pub restart_base_ms: u64,
    /// Ceiling on the restart pause, in milliseconds.
    pub restart_cap_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            spool: "serve-spool".to_string(),
            checkpoint_every: SimDuration::from_days(1),
            max_queue: 64,
            max_attempts: 3,
            job_timeout_ms: None,
            ring_capacity: 4096,
            write_timeout_ms: 2000,
            restart_base_ms: 25,
            restart_cap_ms: 1000,
        }
    }
}
