//! The TCP front end and the daemon's lifecycle.
//!
//! This is the only nondeterministic component in the workspace — it
//! races against clients by nature — so its job is to *contain* that:
//! every effect a connection can have on the engine goes through exactly
//! one of (a) an fsynced ingress-journal append, or (b) the `draining`
//! flag. The worker never sees sockets; clients never see the engine.
//!
//! Each connection is handled on its own thread under `catch_unwind`
//! (a handler panic costs one connection, never the daemon), reads one
//! request, writes one response, and closes. The accept loop is a
//! non-blocking poll so a drain request can end it without tricks like
//! self-connecting.

use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dcmaint_obs::ObsRegistry;
use serde_json::json;

use crate::fanout::Fanout;
use crate::http::{read_request, respond, start_stream, HttpError, Request};
use crate::queue::Spool;
use crate::spec::JobSpec;
use crate::worker::{run_worker, Inner, JobRecord, JobState, Shared};
use crate::ServeConfig;

/// Seconds clients are told to wait after a 503.
const RETRY_AFTER_SECS: u32 = 30;

/// A running daemon: front end + supervised worker.
pub struct Server {
    shared: Arc<Shared>,
    port: u16,
    accept: JoinHandle<()>,
    worker: JoinHandle<()>,
}

impl Server {
    /// Open the spool, recover pending work, bind the listener, and
    /// start the worker and accept threads.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let spool = Spool::open(&cfg.spool)?;
        let state = spool.load();
        let mut jobs = std::collections::BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        for j in &state.jobs {
            let (state, message) = match &j.outcome {
                None => (JobState::Queued, String::new()),
                Some((true, _)) => (JobState::Done, String::new()),
                Some((false, msg)) => (JobState::Failed, msg.clone()),
            };
            if state == JobState::Queued {
                queue.push_back(j.id);
            }
            jobs.insert(
                j.id,
                JobRecord {
                    id: j.id,
                    spec: j.spec.clone(),
                    state,
                    attempts: spool.read_attempts(j.id),
                    message,
                },
            );
        }
        let recovered = queue.len();

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;

        let fanout = Arc::new(Fanout::new(cfg.ring_capacity));
        let shared = Arc::new(Shared {
            cfg,
            spool,
            fanout,
            registry: Mutex::new(ObsRegistry::enabled()),
            profiles: Mutex::new(std::collections::BTreeMap::new()),
            inner: Mutex::new(Inner {
                queue,
                jobs,
                next_id: state.next_id,
                draining: false,
                worker_stopped: false,
            }),
            cv: Condvar::new(),
        });
        if recovered > 0 {
            shared
                .registry
                .lock()
                .expect("registry lock")
                .add("serve/jobs-recovered", recovered as u64);
        }

        let worker = {
            let shared = shared.clone();
            std::thread::spawn(move || run_worker(&shared))
        };
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Server {
            shared,
            port,
            accept,
            worker,
        })
    }

    /// The bound TCP port (useful with `port: 0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Begin a graceful drain, exactly as `POST /v1/shutdown` does.
    pub fn request_shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Block until the daemon has drained and both threads exited.
    pub fn join(self) {
        let _ = self.worker.join();
        let _ = self.accept.join();
    }
}

fn begin_drain(shared: &Arc<Shared>) {
    shared.inner.lock().expect("serve lock").draining = true;
    shared.cv.notify_all();
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    if catch_unwind(AssertUnwindSafe(|| handle_connection(&shared, stream)))
                        .is_err()
                    {
                        shared.count("serve/handler-panics");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let g = shared.inner.lock().expect("serve lock");
                if g.draining && g.worker_stopped {
                    drop(g);
                    // No more lines will ever be published; release any
                    // blocked stream subscribers.
                    shared.fanout.close();
                    return;
                }
                drop(g);
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    match read_request(&mut reader) {
        Ok(req) => route(shared, &req, &mut writer),
        Err(HttpError::Bad(msg)) => {
            shared.count("serve/bad-requests");
            let _ = respond(
                &mut writer,
                400,
                "application/json",
                &[],
                &render(&json!({ "error": msg })),
            );
        }
        Err(HttpError::Io(_)) => {}
    }
}

fn route(shared: &Arc<Shared>, req: &Request, w: &mut TcpStream) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("POST", "/v1/jobs") => post_job(shared, req, w),
        ("POST", "/v1/shutdown") => {
            begin_drain(shared);
            shared.count("serve/shutdowns");
            let _ = json_response(w, 200, &json!({ "draining": true }));
        }
        ("GET", "/v1/stream") => stream_journal(shared, w),
        ("GET", "/status") => status(shared, w),
        ("GET", "/metrics") => metrics(shared, w),
        ("GET", _) if path.starts_with("/v1/jobs/") => job_get(shared, path, w),
        (_, "/v1/jobs" | "/v1/shutdown" | "/v1/stream" | "/status" | "/metrics") => {
            let _ = json_response(w, 405, &json!({ "error": "method not allowed" }));
        }
        _ => {
            let _ = json_response(w, 404, &json!({ "error": "no such endpoint" }));
        }
    }
}

fn render(body: &serde_json::Value) -> Vec<u8> {
    serde_json::to_string(body)
        .expect("serializable")
        .into_bytes()
}

fn json_response(w: &mut TcpStream, status: u16, body: &serde_json::Value) -> io::Result<()> {
    respond(w, status, "application/json", &[], &render(body))
}

/// `POST /v1/jobs`: parse → shed or journal → 202. The ingress append
/// (and its fsync) happens under the lock so journal order equals id
/// order; the 202 is not sent until the record is durable.
fn post_job(shared: &Arc<Shared>, req: &Request, w: &mut TcpStream) {
    let body = String::from_utf8_lossy(&req.body);
    let spec = match JobSpec::parse(body.trim()) {
        Ok(spec) => spec,
        Err(e) => {
            shared.count("serve/bad-specs");
            let _ = json_response(w, 400, &json!({ "error": e }));
            return;
        }
    };
    let accepted = {
        let mut g = shared.inner.lock().expect("serve lock");
        if g.draining || g.queue.len() >= shared.cfg.max_queue {
            None
        } else {
            let id = g.next_id;
            if shared.spool.append_ingress(id, &spec).is_err() {
                Some(Err(()))
            } else {
                g.next_id += 1;
                g.queue.push_back(id);
                g.jobs.insert(
                    id,
                    JobRecord {
                        id,
                        spec: spec.clone(),
                        state: JobState::Queued,
                        attempts: 0,
                        message: String::new(),
                    },
                );
                Some(Ok(id))
            }
        }
    };
    match accepted {
        Some(Ok(id)) => {
            shared.cv.notify_all();
            shared.count("serve/accepted");
            let _ = json_response(w, 202, &json!({ "id": id }));
        }
        Some(Err(())) => {
            shared.count("serve/spool-errors");
            let _ = respond(
                w,
                503,
                "application/json",
                &[("Retry-After", RETRY_AFTER_SECS.to_string())],
                &render(&json!({ "error": "spool write failed" })),
            );
        }
        None => {
            shared.count("serve/rejected-full");
            let _ = respond(
                w,
                503,
                "application/json",
                &[("Retry-After", RETRY_AFTER_SECS.to_string())],
                &render(&json!({ "error": "queue full or draining; retry later" })),
            );
        }
    }
}

fn record_json(rec: &JobRecord) -> serde_json::Value {
    json!({
        "id": rec.id,
        "spec": rec.spec.to_line(),
        "state": rec.state.label(),
        "attempts": rec.attempts,
        "message": rec.message.clone(),
    })
}

/// `GET /v1/jobs/<id>` and `GET /v1/jobs/<id>/output`.
fn job_get(shared: &Arc<Shared>, path: &str, w: &mut TcpStream) {
    let rest = path.strip_prefix("/v1/jobs/").expect("router checked");
    let (id_s, want_output) = match rest.strip_suffix("/output") {
        Some(id_s) => (id_s, true),
        None => (rest, false),
    };
    let Ok(id) = id_s.parse::<u64>() else {
        let _ = json_response(w, 404, &json!({ "error": "bad job id" }));
        return;
    };
    let rec = shared
        .inner
        .lock()
        .expect("serve lock")
        .jobs
        .get(&id)
        .cloned();
    let Some(rec) = rec else {
        let _ = json_response(w, 404, &json!({ "error": "no such job" }));
        return;
    };
    if !want_output {
        let _ = json_response(w, 200, &record_json(&rec));
        return;
    }
    match rec.state {
        JobState::Done => match shared.spool.read_output(id) {
            Ok(bytes) => {
                let _ = respond(w, 200, "text/plain", &[], &bytes);
            }
            Err(e) => {
                let _ = json_response(w, 404, &json!({ "error": format!("output missing: {e}") }));
            }
        },
        JobState::Failed => {
            let _ = json_response(w, 409, &json!({ "error": rec.message }));
        }
        _ => {
            let _ = json_response(w, 404, &json!({ "error": "job not finished" }));
        }
    }
}

/// `GET /v1/stream`: live journal tail. The subscriber starts "now" and
/// is evicted (connection closed, counter bumped) if it lags the ring or
/// blocks writes past the timeout — either way the engine and other
/// subscribers never feel it.
fn stream_journal(shared: &Arc<Shared>, w: &mut TcpStream) {
    if start_stream(w, "application/jsonl").is_err() {
        return;
    }
    let _ = w.set_write_timeout(Some(Duration::from_millis(shared.cfg.write_timeout_ms)));
    shared.count("serve/stream-subscribers");
    let mut cursor = shared.fanout.seq();
    loop {
        let p = shared.fanout.poll(cursor, Duration::from_millis(500));
        if p.missed > 0 {
            shared.count("serve/stream-evicted-lag");
            let _ = w.write_all(
                format!("{{\"ev\":\"stream-lagged\",\"missed\":{}}}\n", p.missed).as_bytes(),
            );
            return;
        }
        for line in &p.lines {
            if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
                shared.count("serve/stream-evicted-stall");
                return;
            }
        }
        if w.flush().is_err() {
            shared.count("serve/stream-evicted-stall");
            return;
        }
        cursor = p.next;
        if p.closed {
            return;
        }
        // A quiet interval doubles as a liveness probe: a hung client
        // stops ACKing and the write timeout evicts it on the next line.
    }
}

fn status(shared: &Arc<Shared>, w: &mut TcpStream) {
    let g = shared.inner.lock().expect("serve lock");
    let count = |s: JobState| g.jobs.values().filter(|r| r.state == s).count();
    let body = json!({
        "state": if g.draining { "draining" } else { "running" },
        "queued": count(JobState::Queued),
        "running": count(JobState::Running),
        "done": count(JobState::Done),
        "failed": count(JobState::Failed),
        "parked": count(JobState::Parked),
        "next_id": g.next_id,
        "stream_seq": shared.fanout.seq(),
    });
    drop(g);
    let _ = json_response(w, 200, &body);
}

/// `GET /metrics`: serve-plane counters as plain `name value` lines
/// (the historical format scripts grep), followed by Prometheus-style
/// text exposition of the engine profiles of finished `profile=1` jobs
/// — counters and histograms labeled by job id.
fn metrics(shared: &Arc<Shared>, w: &mut TcpStream) {
    let reg = shared.registry.lock().expect("registry lock");
    let mut body = String::new();
    for (name, value) in reg.counters_sorted() {
        body.push_str(&format!("{name} {value}\n"));
    }
    drop(reg);

    let profiles = shared.profiles.lock().expect("profiles lock");
    if !profiles.is_empty() {
        body.push_str(
            "# HELP selfmaint_engine_prof_total engine self-profiler counter of a finished job\n\
             # TYPE selfmaint_engine_prof_total counter\n",
        );
        for (id, p) in profiles.iter() {
            for (name, v) in &p.counters {
                body.push_str(&format!(
                    "selfmaint_engine_prof_total{{job=\"{id}\",key=\"{name}\"}} {v}\n"
                ));
            }
        }
        let any_hist = profiles.values().any(|p| !p.histograms.is_empty());
        if any_hist {
            body.push_str(
                "# HELP selfmaint_engine_hist_seconds engine histogram (simulated seconds)\n\
                 # TYPE selfmaint_engine_hist_seconds summary\n",
            );
            for (id, p) in profiles.iter() {
                for (family, key, total, sum_us) in &p.histograms {
                    let labels = format!("job=\"{id}\",family=\"{family}\",key=\"{key}\"");
                    body.push_str(&format!(
                        "selfmaint_engine_hist_seconds_count{{{labels}}} {total}\n"
                    ));
                    body.push_str(&format!(
                        "selfmaint_engine_hist_seconds_sum{{{labels}}} {}\n",
                        *sum_us as f64 / 1e6
                    ));
                }
            }
        }
    }
    drop(profiles);
    let _ = respond(w, 200, "text/plain", &[], body.as_bytes());
}
