//! The supervised engine worker: the single thread where simulation
//! happens, wrapped so nothing it does can take the daemon down.
//!
//! One job runs at a time, in accepted order. Each *attempt* runs under
//! `catch_unwind`; each attempt advances the engine one checkpoint
//! quantum at a time, snapshotting (tmp + rename) before publishing that
//! quantum's journal lines — so the restore point always covers exactly
//! what subscribers have seen, and a retry never duplicates stream
//! lines. A panic or wall-clock timeout costs one attempt; the
//! supervisor pauses (capped exponential backoff, jitter from the job's
//! own seeded RNG stream — deterministic, no wall-clock entropy) and
//! retries from the last snapshot. Because snapshots cut at `run_until`
//! boundaries the uninterrupted engine also passes through, a recovered
//! job's output is byte-identical to an undisturbed one. After
//! `max_attempts` the job is *failed deterministically*: same journals,
//! same message, every time.
//!
//! The attempt counter lives in the spool, not in memory, so a job that
//! panics and then takes the whole process down with it (or is
//! SIGKILLed mid-attempt) still converges: the next process reads the
//! counter and continues the same ladder.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dcmaint_ckpt::Snapshot;
use dcmaint_des::{SimRng, SimTime};
use dcmaint_obs::ObsRegistry;
use dcmaint_scenarios::sweep::{failures_table, run_engine_sweep, EngineSweepParams};
use dcmaint_scenarios::Engine;
use maintctl::AutomationLevel;

use crate::fanout::Fanout;
use crate::queue::Spool;
use crate::spec::{Boom, JobKind, JobSpec};
use crate::ServeConfig;

/// Where a job is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and journaled, waiting for the worker.
    Queued,
    /// The worker is on it.
    Running,
    /// Finished; output available.
    Done,
    /// Failed deterministically after `max_attempts`.
    Failed,
    /// Snapshotted and set aside by a graceful drain; becomes `Queued`
    /// again at the next start.
    Parked,
}

impl JobState {
    /// Lowercase label used in JSON responses.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Parked => "parked",
        }
    }
}

/// One job as the daemon tracks it.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Ingress-assigned id.
    pub id: u64,
    /// The accepted spec.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Attempts consumed so far (persisted in the spool).
    pub attempts: u32,
    /// Failure message (empty unless `Failed`).
    pub message: String,
}

/// Mutable daemon state behind the lock.
#[derive(Debug)]
pub struct Inner {
    /// Pending job ids, accepted order.
    pub queue: VecDeque<u64>,
    /// Every job this daemon knows about.
    pub jobs: BTreeMap<u64, JobRecord>,
    /// Id the next accepted job gets.
    pub next_id: u64,
    /// Graceful shutdown requested: shed new work, park the current job
    /// at its next quantum, stop.
    pub draining: bool,
    /// The worker thread has exited.
    pub worker_stopped: bool,
}

/// The engine profile of one finished `profile=1` job, held in memory
/// for `/metrics` exposition. Not persisted: a daemon restart recovers
/// the job as done without re-running it, so its profile is gone —
/// scrape before restarting, or resubmit the job.
#[derive(Debug, Clone)]
pub struct JobProfile {
    /// Counter name → value, in registry (sorted) order.
    pub counters: Vec<(String, u64)>,
    /// Histogram `(family, key, observation count, sum in simulated
    /// microseconds)`, in registry order.
    pub histograms: Vec<(String, String, u64, u64)>,
}

/// State shared by the front end, the worker, and the supervisor.
pub struct Shared {
    /// Daemon knobs.
    pub cfg: ServeConfig,
    /// Durable queue.
    pub spool: Spool,
    /// Live journal broadcast.
    pub fanout: Arc<Fanout>,
    /// Serve-plane counters (`/metrics`).
    pub registry: Mutex<ObsRegistry>,
    /// Engine profiles of finished `profile=1` jobs, by job id.
    pub profiles: Mutex<BTreeMap<u64, JobProfile>>,
    /// Job table + queue.
    pub inner: Mutex<Inner>,
    /// Wakes the worker on submit/drain.
    pub cv: Condvar,
}

impl Shared {
    /// Bump a serve-plane counter.
    pub fn count(&self, name: &'static str) {
        self.registry.lock().expect("registry lock").inc(name);
    }
}

/// Hold a finished job's engine-profile registry for `/metrics`.
fn stash_profile(shared: &Arc<Shared>, id: u64, reg: &ObsRegistry) {
    let counters = reg
        .counters_sorted()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    let histograms = reg
        .histograms_sorted()
        .into_iter()
        .map(|h| {
            (
                h.family.to_string(),
                h.key.to_string(),
                h.total,
                h.sum.as_micros(),
            )
        })
        .collect();
    shared.profiles.lock().expect("profiles lock").insert(
        id,
        JobProfile {
            counters,
            histograms,
        },
    );
}

/// How one attempt ended.
enum Attempt {
    /// Output bytes ready; the job is done.
    Finished(Vec<u8>),
    /// Drain requested; engine snapshotted and parked.
    Parked,
    /// Wall-clock budget exceeded at a quantum boundary.
    TimedOut,
    /// Spool I/O failed (counts like a crash: retry, then fail).
    Io(String),
}

/// The worker thread body: consume the queue until drained.
pub fn run_worker(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut g = shared.inner.lock().expect("serve lock");
            loop {
                if g.draining {
                    g.worker_stopped = true;
                    drop(g);
                    shared.cv.notify_all();
                    return;
                }
                if let Some(id) = g.queue.pop_front() {
                    let rec = g.jobs.get_mut(&id).expect("queued job has a record");
                    rec.state = JobState::Running;
                    break rec.clone();
                }
                // Bounded wait so drain requests are observed promptly
                // even with no traffic.
                let (guard, _) = shared
                    .cv
                    .wait_timeout(g, Duration::from_millis(100))
                    .expect("serve lock");
                g = guard;
            }
        };
        run_job(shared, &job);
    }
}

/// Drive one job through its attempt ladder to a terminal state.
fn run_job(shared: &Arc<Shared>, job: &JobRecord) {
    let max_attempts = shared.cfg.max_attempts.max(1);
    loop {
        let attempts = shared.spool.read_attempts(job.id);
        {
            let mut g = shared.inner.lock().expect("serve lock");
            if let Some(rec) = g.jobs.get_mut(&job.id) {
                rec.attempts = attempts;
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| attempt(shared, job, attempts)));
        let failure = match outcome {
            Ok(Attempt::Finished(output)) => {
                let io = shared
                    .spool
                    .write_output(job.id, &output)
                    .and_then(|()| shared.spool.append_done(job.id, true, ""));
                match io {
                    Ok(()) => {
                        shared.spool.clear_recovery(job.id);
                        finish(shared, job.id, JobState::Done, String::new());
                        shared.count("serve/jobs-done");
                        return;
                    }
                    Err(e) => format!("spool write failed: {e}"),
                }
            }
            Ok(Attempt::Parked) => {
                finish(shared, job.id, JobState::Parked, String::new());
                shared.count("serve/jobs-parked");
                return;
            }
            Ok(Attempt::TimedOut) => {
                shared.count("serve/attempt-timeouts");
                format!("attempt {} exceeded the wall-clock budget", attempts + 1)
            }
            Ok(Attempt::Io(msg)) => msg,
            Err(payload) => {
                shared.count("serve/worker-panics");
                format!("panic: {}", panic_message(&*payload))
            }
        };
        let next = attempts + 1;
        let _ = shared.spool.write_attempts(job.id, next);
        if next >= max_attempts {
            // Deterministic terminal failure: fixed message shape, no
            // wall-clock content beyond what the panic itself carried.
            let msg = format!("failed after {next} attempt(s): {failure}");
            let _ = shared.spool.append_done(job.id, false, &msg);
            shared.spool.clear_recovery(job.id);
            finish(shared, job.id, JobState::Failed, msg);
            shared.count("serve/jobs-failed");
            return;
        }
        shared.count("serve/attempt-restarts");
        std::thread::sleep(restart_pause(&shared.cfg, job, attempts));
    }
}

/// Capped exponential restart pause with jitter drawn from the job's own
/// seeded stream — reproducible across daemon restarts, no wall clock.
fn restart_pause(cfg: &ServeConfig, job: &JobRecord, attempts: u32) -> Duration {
    let mut rng = SimRng::root(job.spec.seed ^ job.id).stream("serve-restart", u64::from(attempts));
    let nominal = (cfg.restart_base_ms.max(1) as f64) * 2f64.powi(attempts.min(16) as i32);
    let capped = nominal.min(cfg.restart_cap_ms.max(1) as f64);
    Duration::from_millis((capped * (0.5 + rng.uniform())) as u64)
}

fn finish(shared: &Arc<Shared>, id: u64, state: JobState, message: String) {
    let mut g = shared.inner.lock().expect("serve lock");
    if let Some(rec) = g.jobs.get_mut(&id) {
        rec.state = state;
        rec.message = message;
        rec.attempts = shared.spool.read_attempts(id);
    }
    drop(g);
    shared.cv.notify_all();
}

/// Best-effort text of a panic payload (same idiom as the sweep pool).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// One attempt of one job.
fn attempt(shared: &Arc<Shared>, job: &JobRecord, attempts: u32) -> Attempt {
    match job.spec.kind {
        JobKind::Run => attempt_run(shared, job, attempts),
        JobKind::Sweep => attempt_sweep(shared, job),
    }
}

/// One attempt of a `kind=run` job: quantum loop with snapshot-then-
/// publish at every cut.
fn attempt_run(shared: &Arc<Shared>, job: &JobRecord, attempts: u32) -> Attempt {
    let spec = &job.spec;
    let cfg = spec.scenario_config();
    let end = SimTime::ZERO + cfg.duration;
    // Boom fires at the first cut past the midpoint — an absolute
    // simulated time, so the trigger is independent of where a restore
    // landed us.
    let boom_at = SimTime::ZERO + cfg.duration.mul_f64(0.5);
    let boom_now = match spec.boom {
        Boom::None => false,
        Boom::Once => attempts == 0,
        Boom::Always => true,
    };

    let mut eng = match shared.spool.read_ckpt(job.id) {
        // A snapshot that doesn't load or doesn't match the spec is
        // treated as absent: rerunning from scratch is always correct
        // (restore ≡ continuous), just slower.
        Some(bytes) => match Snapshot::from_bytes(&bytes)
            .ok()
            .and_then(|snap| Engine::restore(cfg.clone(), &snap).ok())
        {
            Some(eng) => {
                shared.count("serve/attempt-resumes");
                eng
            }
            None => {
                shared.count("serve/ckpt-discarded");
                Engine::new(cfg)
            }
        },
        None => Engine::new(cfg),
    };

    let journal = eng.journal_handle();
    // Everything emitted up to the restore point was published by the
    // attempt that cut the snapshot — mark it seen.
    let (_, mut seen, _) = journal.tail(u64::MAX);

    // lint:allow(wall-clock): per-attempt wall budget is operational
    // policy at the daemon edge; it never feeds the simulation.
    let started = std::time::Instant::now();
    let quantum = shared.cfg.checkpoint_every.as_micros().max(1);

    for cut in dcmaint_ckpt::Cadence::new(eng.now().as_micros(), end.as_micros(), quantum) {
        let t = SimTime::ZERO + dcmaint_des::SimDuration::from_micros(cut);
        if boom_now && t >= boom_at {
            panic!("injected boom at {cut}us (attempt {attempts})");
        }
        if spec.slow_ms > 0 {
            std::thread::sleep(Duration::from_millis(spec.slow_ms));
        }
        eng.run_until(t);
        if let Err(e) = shared.spool.write_ckpt(job.id, &eng.snapshot().to_bytes()) {
            return Attempt::Io(format!("cannot write job checkpoint: {e}"));
        }
        seen = publish_tail(shared, &journal, seen);
        if shared.inner.lock().expect("serve lock").draining {
            return Attempt::Parked;
        }
        if let Some(budget) = shared.cfg.job_timeout_ms {
            if started.elapsed().as_millis() as u64 > budget {
                return Attempt::TimedOut;
            }
        }
    }
    while eng.step_event().is_some() {}
    let mut report = eng.finish_report();
    if spec.profile {
        if let Some(obs) = report.obs.as_ref() {
            stash_profile(shared, job.id, &obs.registry);
        }
    }
    publish_tail(shared, &journal, seen);
    let mut out = serde_json::to_string_pretty(&report.summary_json()).expect("serializable");
    out.push('\n');
    Attempt::Finished(out.into_bytes())
}

/// Publish fresh journal lines to the fan-out; returns the new cursor.
fn publish_tail(shared: &Arc<Shared>, journal: &dcmaint_obs::Journal, seen: u64) -> u64 {
    let (lines, emitted, missed) = journal.tail(seen);
    if missed > 0 {
        shared
            .fanout
            .publish(format!("{{\"ev\":\"journal-gap\",\"missed\":{missed}}}"));
    }
    for line in lines {
        shared.fanout.publish(line);
    }
    emitted
}

/// One attempt of a `kind=sweep` job. The sweep engine brings its own
/// manifest-based resume, so every attempt runs with `resume: true`
/// against a manifest inside the spool: finished replicates are loaded,
/// only the remainder runs. Its journal arrives at completion (sweep
/// replicates run concurrently; interleaved live lines would not be
/// deterministic).
fn attempt_sweep(shared: &Arc<Shared>, job: &JobRecord) -> Attempt {
    let spec = &job.spec;
    let params = EngineSweepParams {
        base_seed: spec.seed,
        seeds: spec.seeds,
        jobs: 1,
        days: spec.days,
        levels: match spec.level {
            Some(l) => vec![l],
            None => AutomationLevel::ALL.to_vec(),
        },
        small_fabric: spec.quick,
        obs: spec.obs,
        profiling: spec.profile,
        autonomic: false,
        inject_panic: None,
        manifest: Some(
            shared
                .spool
                .manifest_dir(job.id)
                .to_string_lossy()
                .into_owned(),
        ),
        resume: true,
    };
    let outcome = run_engine_sweep(&params);
    if spec.profile {
        if let Some(reg) = &outcome.registry {
            stash_profile(shared, job.id, reg);
        }
    }
    for line in &outcome.journal {
        shared.fanout.publish(line.clone());
    }
    let mut out = outcome.table.render();
    if !outcome.failures.is_empty() {
        out.push_str(&failures_table(&outcome.failures).render());
    }
    Attempt::Finished(out.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_pause_is_deterministic_capped_and_growing() {
        let cfg = ServeConfig {
            restart_base_ms: 20,
            restart_cap_ms: 100,
            ..ServeConfig::default()
        };
        let job = JobRecord {
            id: 3,
            spec: JobSpec::run(AutomationLevel::L3, 2, 9),
            state: JobState::Queued,
            attempts: 0,
            message: String::new(),
        };
        let a: Vec<Duration> = (0..6).map(|k| restart_pause(&cfg, &job, k)).collect();
        let b: Vec<Duration> = (0..6).map(|k| restart_pause(&cfg, &job, k)).collect();
        assert_eq!(a, b, "same job, same attempt → same pause");
        for (k, d) in a.iter().enumerate() {
            let nominal = (20f64 * 2f64.powi(k as i32)).min(100.0);
            assert!(d.as_millis() as f64 >= nominal * 0.5 - 1.0, "jitter floor");
            assert!(
                d.as_millis() as f64 <= nominal * 1.5 + 1.0,
                "jitter ceiling"
            );
        }
        let other = JobRecord {
            id: 4,
            ..job.clone()
        };
        assert_ne!(
            (0..6)
                .map(|k| restart_pause(&cfg, &other, k))
                .collect::<Vec<_>>(),
            a,
            "different jobs decorrelate"
        );
    }

    #[test]
    fn panic_messages_survive_both_payload_shapes() {
        let e1 = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(&*e1), "static str");
        let e2 = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(&*e2), "formatted 7");
    }
}
