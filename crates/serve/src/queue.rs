//! The spool: the daemon's durable memory.
//!
//! Two append-only journals plus per-job side files make the accepted
//! work replayable across any kind of death:
//!
//! * `ingress.log` — one `id<TAB>spec` line per accepted job, fsynced
//!   *before* the client sees `202 Accepted`. If it's in the journal it
//!   will run (eventually); if it isn't, the client was never told
//!   otherwise.
//! * `done.log` — one `id<TAB>ok|failed<TAB>message` line per finished
//!   job, fsynced after the output file lands.
//! * `job-NNNNNN.out` / `.ckpt` / `.attempts` / `-manifest/` — the job's
//!   output, last engine snapshot, persisted attempt counter, and (for
//!   sweeps) the sweep's own resume manifest. Outputs and counters are
//!   written tmp + rename so a kill mid-write never leaves a half-file.
//!
//! On startup [`Spool::load`] replays both journals: pending work is
//! `ingress − done` in id order. A crash mid-append leaves at most one
//! unterminated trailing line, which is ignored — only `\n`-terminated
//! lines count, on both journals, so the crash window is "the client
//! never got its 202" rather than "the spool is corrupt".

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::spec::JobSpec;

/// Handle on a spool directory. Cheap to clone; all state is on disk.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

/// One job reconstructed from the journals.
#[derive(Debug, Clone)]
pub struct LoadedJob {
    /// Job id (assigned at ingress, monotonically increasing).
    pub id: u64,
    /// The accepted spec (canonical form).
    pub spec: JobSpec,
    /// `None` while pending; `Some((ok, message))` once finished.
    pub outcome: Option<(bool, String)>,
}

/// Everything [`Spool::load`] recovered.
#[derive(Debug, Clone)]
pub struct SpoolState {
    /// The id the next accepted job gets.
    pub next_id: u64,
    /// All journaled jobs in id order, finished and pending alike.
    pub jobs: Vec<LoadedJob>,
}

impl SpoolState {
    /// Ids of jobs accepted but not finished, in id order.
    pub fn pending(&self) -> Vec<u64> {
        self.jobs
            .iter()
            .filter(|j| j.outcome.is_none())
            .map(|j| j.id)
            .collect()
    }
}

/// Append one line to a journal and fsync before returning — the caller
/// may acknowledge durability the moment this returns.
fn append_fsync(path: &Path, line: &str) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(line.as_bytes())?;
    f.sync_all()
}

/// Strip characters that would break the one-line-per-record framing.
fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r', '\t'], " ")
}

impl Spool {
    /// Open (creating if needed) a spool directory.
    pub fn open(dir: &str) -> io::Result<Spool> {
        std::fs::create_dir_all(dir)?;
        Ok(Spool {
            dir: PathBuf::from(dir),
        })
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn ingress_path(&self) -> PathBuf {
        self.dir.join("ingress.log")
    }

    fn done_path(&self) -> PathBuf {
        self.dir.join("done.log")
    }

    /// Path of a job's output file.
    pub fn output_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id:06}.out"))
    }

    /// Path of a job's last engine snapshot.
    pub fn ckpt_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id:06}.ckpt"))
    }

    /// Path of a job's persisted attempt counter.
    pub fn attempts_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id:06}.attempts"))
    }

    /// Manifest directory for a sweep job's own per-replicate resume.
    pub fn manifest_dir(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id:06}-manifest"))
    }

    /// Journal an accepted job. Fsynced: safe to 202 once this returns.
    pub fn append_ingress(&self, id: u64, spec: &JobSpec) -> io::Result<()> {
        append_fsync(&self.ingress_path(), &format!("{id}\t{}\n", spec.to_line()))
    }

    /// Journal a finished job (success or deterministic failure).
    pub fn append_done(&self, id: u64, ok: bool, msg: &str) -> io::Result<()> {
        let verdict = if ok { "ok" } else { "failed" };
        append_fsync(
            &self.done_path(),
            &format!("{id}\t{verdict}\t{}\n", one_line(msg)),
        )
    }

    /// Replay both journals into the daemon's starting state.
    pub fn load(&self) -> SpoolState {
        let mut jobs: Vec<LoadedJob> = Vec::new();
        for line in complete_lines(&self.ingress_path()) {
            let Some((id_s, spec_s)) = line.split_once('\t') else {
                continue;
            };
            let (Ok(id), Ok(spec)) = (id_s.parse::<u64>(), JobSpec::parse(spec_s)) else {
                continue;
            };
            jobs.push(LoadedJob {
                id,
                spec,
                outcome: None,
            });
        }
        for line in complete_lines(&self.done_path()) {
            let mut parts = line.splitn(3, '\t');
            let (Some(id_s), Some(verdict), msg) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Ok(id) = id_s.parse::<u64>() else {
                continue;
            };
            if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
                job.outcome = Some((verdict == "ok", msg.unwrap_or("").to_string()));
            }
        }
        let next_id = jobs.iter().map(|j| j.id + 1).max().unwrap_or(0);
        SpoolState { next_id, jobs }
    }

    /// Persisted attempt counter (0 when absent or unreadable).
    pub fn read_attempts(&self, id: u64) -> u32 {
        std::fs::read_to_string(self.attempts_path(id))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Persist the attempt counter (tmp + rename).
    pub fn write_attempts(&self, id: u64, attempts: u32) -> io::Result<()> {
        self.write_atomic(&self.attempts_path(id), attempts.to_string().as_bytes())
    }

    /// Persist a job's output (tmp + rename).
    pub fn write_output(&self, id: u64, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic(&self.output_path(id), bytes)
    }

    /// A finished job's output bytes.
    pub fn read_output(&self, id: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.output_path(id))
    }

    /// Persist a job's engine snapshot (tmp + rename).
    pub fn write_ckpt(&self, id: u64, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic(&self.ckpt_path(id), bytes)
    }

    /// A job's last engine snapshot, if one was cut.
    pub fn read_ckpt(&self, id: u64) -> Option<Vec<u8>> {
        std::fs::read(self.ckpt_path(id)).ok()
    }

    /// Drop a finished job's recovery state (snapshot + attempt counter);
    /// the output and the journals stay.
    pub fn clear_recovery(&self, id: u64) {
        let _ = std::fs::remove_file(self.ckpt_path(id));
        let _ = std::fs::remove_file(self.attempts_path(id));
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// All `\n`-terminated lines of a journal; a missing file is an empty
/// journal, and an unterminated trailing fragment (crash mid-append) is
/// dropped.
fn complete_lines(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
    // split leaves either "" (text ended in \n) or a fragment — both go.
    lines.pop();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use maintctl::AutomationLevel;

    fn scratch(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("dcmaint-spool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn journals_replay_into_pending_work() {
        let dir = scratch("replay");
        let spool = Spool::open(&dir).unwrap();
        let a = JobSpec::run(AutomationLevel::L3, 2, 1);
        let b = JobSpec::run(AutomationLevel::L1, 3, 2);
        let c = JobSpec::run(AutomationLevel::L0, 4, 3);
        spool.append_ingress(0, &a).unwrap();
        spool.append_ingress(1, &b).unwrap();
        spool.append_ingress(2, &c).unwrap();
        spool.append_done(1, true, "").unwrap();
        spool.append_done(0, false, "boom: went sideways").unwrap();

        let state = spool.load();
        assert_eq!(state.next_id, 3);
        assert_eq!(state.pending(), [2]);
        assert_eq!(
            state.jobs[0].outcome,
            Some((false, "boom: went sideways".into()))
        );
        assert_eq!(state.jobs[1].outcome, Some((true, "".into())));
        assert_eq!(state.jobs[2].spec, c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_lines_are_ignored_not_fatal() {
        let dir = scratch("torn");
        let spool = Spool::open(&dir).unwrap();
        spool
            .append_ingress(0, &JobSpec::run(AutomationLevel::L3, 2, 1))
            .unwrap();
        // A crash mid-append: the next record got only half-written and
        // has no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(Path::new(&dir).join("ingress.log"))
            .unwrap();
        f.write_all(b"1\tkind=run le").unwrap();
        drop(f);
        std::fs::write(Path::new(&dir).join("done.log"), b"0\tok").unwrap();

        let state = spool.load();
        assert_eq!(state.jobs.len(), 1, "torn ingress line dropped");
        assert_eq!(
            state.pending(),
            [0],
            "torn done line must not mark the job finished"
        );
        assert_eq!(state.next_id, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn attempts_and_outputs_persist_across_reopen() {
        let dir = scratch("sidefiles");
        let spool = Spool::open(&dir).unwrap();
        assert_eq!(spool.read_attempts(7), 0);
        spool.write_attempts(7, 2).unwrap();
        spool.write_output(7, b"{\"done\":true}\n").unwrap();
        spool.write_ckpt(7, b"snapshot-bytes").unwrap();

        let again = Spool::open(&dir).unwrap();
        assert_eq!(again.read_attempts(7), 2);
        assert_eq!(again.read_output(7).unwrap(), b"{\"done\":true}\n");
        assert_eq!(again.read_ckpt(7).unwrap(), b"snapshot-bytes");
        again.clear_recovery(7);
        assert_eq!(again.read_attempts(7), 0);
        assert!(again.read_ckpt(7).is_none());
        assert!(
            again.read_output(7).is_ok(),
            "output outlives recovery state"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
