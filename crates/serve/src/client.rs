//! Minimal HTTP client helpers for talking to a running daemon — used
//! by the CLI (`selfmaint serve --submit …` style tooling), the test
//! suites, and the bench harness. One request per connection, mirroring
//! the server's `Connection: close` discipline.
//!
//! The vendored `serde_json` stub serializes but does not parse, so the
//! field extractors here scan the (single-line, server-authored) JSON
//! bodies textually. That is fine for this crate's own wire format and
//! deliberately not a general JSON parser.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status code plus body bytes as text.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body (UTF-8 lossy).
    pub body: String,
}

/// One request against `127.0.0.1:port`.
pub fn request(port: u16, method: &str, path: &str, body: &str) -> io::Result<Response> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok(Response { status, body })
}

/// Submit a job spec line; returns the assigned id on 202.
pub fn submit(port: u16, spec_line: &str) -> Result<u64, String> {
    let resp = request(port, "POST", "/v1/jobs", spec_line).map_err(|e| e.to_string())?;
    if resp.status != 202 {
        return Err(format!("submit rejected ({}): {}", resp.status, resp.body));
    }
    json_u64(&resp.body, "id").ok_or_else(|| format!("no id in response: {}", resp.body))
}

/// Poll `GET /v1/jobs/<id>` until the job reaches a terminal state
/// (`done`, `failed`, or `parked`) or the deadline passes. Returns the
/// final state label.
pub fn wait_terminal(port: u16, id: u64, deadline: Duration) -> Result<String, String> {
    // lint:allow(wall-clock): client-side polling deadline, never
    // simulation input.
    let start = std::time::Instant::now();
    loop {
        let resp =
            request(port, "GET", &format!("/v1/jobs/{id}"), "").map_err(|e| e.to_string())?;
        if let Some(state) = json_str(&resp.body, "state") {
            if matches!(state.as_str(), "done" | "failed" | "parked") {
                return Ok(state);
            }
        }
        if start.elapsed() > deadline {
            return Err(format!(
                "job {id} not terminal before deadline: {}",
                resp.body
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Fetch a finished job's output bytes.
pub fn fetch_output(port: u16, id: u64) -> Result<String, String> {
    let resp =
        request(port, "GET", &format!("/v1/jobs/{id}/output"), "").map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(format!(
            "output not available ({}): {}",
            resp.status, resp.body
        ));
    }
    Ok(resp.body)
}

/// Open `/v1/stream` and return the reader positioned after the response
/// headers; callers consume journal lines until EOF.
pub fn open_stream(port: u16) -> io::Result<BufReader<TcpStream>> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    write!(stream, "GET /v1/stream HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed during headers",
            ));
        }
        if line.trim_end().is_empty() {
            return Ok(reader);
        }
    }
}

/// Extract an unsigned integer field from a flat JSON object body.
pub fn json_u64(body: &str, key: &str) -> Option<u64> {
    let tail = body.split(&format!("\"{key}\":")).nth(1)?;
    let digits: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extract a string field from a flat JSON object body.
pub fn json_str(body: &str, key: &str) -> Option<String> {
    let tail = body.split(&format!("\"{key}\":")).nth(1)?;
    let tail = tail.trim_start().strip_prefix('"')?;
    Some(tail.split('"').next()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extractors_handle_server_authored_bodies() {
        let body = r#"{"id":42,"state":"done","attempts":2,"message":""}"#;
        assert_eq!(json_u64(body, "id"), Some(42));
        assert_eq!(json_u64(body, "attempts"), Some(2));
        assert_eq!(json_str(body, "state").as_deref(), Some("done"));
        assert_eq!(json_str(body, "message").as_deref(), Some(""));
        assert_eq!(json_u64(body, "missing"), None);
        assert_eq!(json_str(body, "id"), None, "numbers are not strings");
    }
}
