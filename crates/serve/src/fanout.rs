//! Broadcast ring for live journal streaming: one writer (the engine
//! worker), many subscribers, bounded memory, and — the load-bearing
//! property — **no backpressure onto the writer**. Publishing never
//! blocks and never waits for consumers; a subscriber that cannot keep
//! up falls off the back of the ring and is told so, instead of slowing
//! the engine or its peers.
//!
//! Subscribers are pull-based: each holds a sequence cursor and calls
//! [`Fanout::poll`], which blocks (bounded by a timeout) until lines
//! past the cursor exist. Eviction-by-lag is detected at poll time: if
//! the cursor has been overrun, `missed` reports how many lines are
//! gone and the connection handler closes the stream with a
//! `stream-lagged` notice.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Ring {
    /// Sequence number the *next* published line will get.
    next_seq: u64,
    lines: VecDeque<Arc<str>>,
    cap: usize,
    closed: bool,
}

/// What one [`Fanout::poll`] returned.
#[derive(Debug, Clone)]
pub struct Poll {
    /// Lines from the caller's cursor forward (possibly empty on
    /// timeout or close).
    pub lines: Vec<Arc<str>>,
    /// The caller's next cursor.
    pub next: u64,
    /// Lines the caller can never see: evicted before it polled. A
    /// nonzero value means the subscriber lagged the ring.
    pub missed: u64,
    /// The fan-out is closed (daemon shutting down); no further lines
    /// will ever arrive.
    pub closed: bool,
}

/// The broadcast ring. Cheap to share (`Arc` it once).
pub struct Fanout {
    ring: Mutex<Ring>,
    cv: Condvar,
}

impl Fanout {
    /// A fan-out holding at most `capacity` lines (min 1).
    pub fn new(capacity: usize) -> Fanout {
        Fanout {
            ring: Mutex::new(Ring {
                next_seq: 0,
                lines: VecDeque::new(),
                cap: capacity.max(1),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Publish one line. Never blocks on subscribers: the oldest line is
    /// evicted when the ring is full.
    pub fn publish(&self, line: String) {
        let mut g = self.ring.lock().expect("fanout lock");
        if g.lines.len() == g.cap {
            g.lines.pop_front();
        }
        g.lines.push_back(Arc::from(line));
        g.next_seq += 1;
        drop(g);
        self.cv.notify_all();
    }

    /// The next sequence number — a subscriber that wants "live from
    /// now" starts its cursor here.
    pub fn seq(&self) -> u64 {
        self.ring.lock().expect("fanout lock").next_seq
    }

    /// Mark the stream finished and wake every subscriber.
    pub fn close(&self) {
        self.ring.lock().expect("fanout lock").closed = true;
        self.cv.notify_all();
    }

    /// Wait (up to `timeout`) for lines past `cursor` and take them.
    pub fn poll(&self, cursor: u64, timeout: Duration) -> Poll {
        let mut g = self.ring.lock().expect("fanout lock");
        if g.next_seq <= cursor && !g.closed {
            let (guard, _timed_out) = self
                .cv
                .wait_timeout_while(g, timeout, |r| r.next_seq <= cursor && !r.closed)
                .expect("fanout lock");
            g = guard;
        }
        let oldest = g.next_seq - g.lines.len() as u64;
        let missed = oldest.saturating_sub(cursor);
        let from = cursor.max(oldest);
        let skip = (from - oldest) as usize;
        Poll {
            lines: g.lines.iter().skip(skip).cloned().collect(),
            next: g.next_seq,
            missed,
            closed: g.closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn subscribers_see_everything_when_keeping_up() {
        let f = Fanout::new(16);
        let start = f.seq();
        f.publish("a".into());
        f.publish("b".into());
        let p = f.poll(start, Duration::from_millis(10));
        assert_eq!(
            p.lines.iter().map(|l| l.as_ref()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!((p.next, p.missed, p.closed), (2, 0, false));
        // Nothing new: poll times out empty without losing the cursor.
        let q = f.poll(p.next, Duration::from_millis(5));
        assert!(q.lines.is_empty());
        assert_eq!(q.next, p.next);
    }

    #[test]
    fn laggards_are_told_how_much_they_missed() {
        let f = Fanout::new(4);
        for i in 0..10 {
            f.publish(format!("line-{i}"));
        }
        let p = f.poll(2, Duration::from_millis(5));
        // Ring holds 6..10; cursor 2 missed 6-2=4 lines.
        assert_eq!(p.missed, 4);
        assert_eq!(p.lines.len(), 4);
        assert_eq!(p.lines[0].as_ref(), "line-6");
        assert_eq!(p.next, 10);
    }

    #[test]
    fn close_wakes_blocked_subscribers() {
        let f = Arc::new(Fanout::new(4));
        let g = f.clone();
        let t = std::thread::spawn(move || g.poll(0, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        f.close();
        let p = t.join().unwrap();
        assert!(p.closed);
    }

    /// The acceptance-criteria isolation property, at the mechanism
    /// level: a subscriber whose sink blocks on every write gets evicted
    /// by lag, while a fast subscriber concurrently receives every line
    /// and the publisher is never held up by the stalled one. (The
    /// publisher paces itself on the *fast* cursor only, so "fast keeps
    /// up" holds by construction on any scheduler; the stalled
    /// subscriber gets no such courtesy — that's the point.)
    #[test]
    fn stalled_subscriber_is_evicted_without_delaying_publisher_or_peers() {
        const N: u64 = 3000;
        let f = Arc::new(Fanout::new(64));
        let published = Arc::new(AtomicU64::new(0));
        let fast_cursor = Arc::new(AtomicU64::new(0));

        // Fast subscriber: drains as published.
        let fast = {
            let f = f.clone();
            let fast_cursor = fast_cursor.clone();
            std::thread::spawn(move || {
                let mut cursor = 0;
                let mut got = 0u64;
                loop {
                    let p = f.poll(cursor, Duration::from_millis(50));
                    assert_eq!(p.missed, 0, "fast subscriber must never lag");
                    got += p.lines.len() as u64;
                    cursor = p.next;
                    fast_cursor.store(cursor, Ordering::Relaxed);
                    if p.closed && p.lines.is_empty() {
                        return got;
                    }
                }
            })
        };
        // Stalled subscriber: a sink that sleeps per write, like a
        // client that stopped reading its socket.
        let stalled = {
            let f = f.clone();
            std::thread::spawn(move || {
                let mut cursor = 0;
                let mut sink = SlowSink;
                loop {
                    let p = f.poll(cursor, Duration::from_millis(50));
                    if p.missed > 0 {
                        return true; // evicted by lag — the handler closes here
                    }
                    for line in &p.lines {
                        let _ = sink.write_all(line.as_bytes());
                    }
                    cursor = p.next;
                    if p.closed && p.lines.is_empty() {
                        return false;
                    }
                }
            })
        };

        for i in 0..N {
            // Stay within half the ring of the fast subscriber; never
            // look at the stalled one.
            while i.saturating_sub(fast_cursor.load(Ordering::Relaxed)) > 32 {
                std::thread::yield_now();
            }
            f.publish(format!("line-{i}"));
            published.fetch_add(1, Ordering::Relaxed);
        }
        f.close();
        assert_eq!(
            published.load(Ordering::Relaxed),
            N,
            "publisher never blocked"
        );
        assert_eq!(fast.join().unwrap(), N, "fast subscriber saw every line");
        assert!(
            stalled.join().unwrap(),
            "stalled subscriber must be evicted"
        );
    }

    struct SlowSink;
    impl Write for SlowSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::thread::sleep(Duration::from_millis(2));
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
