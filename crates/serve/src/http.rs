//! A deliberately tiny HTTP/1.1 subset over `std::net` — the vendor
//! policy is offline, so no hyper/axum. The daemon needs exactly: parse
//! one request (line + headers + sized body), write one response, and
//! optionally keep writing a streaming body. Every connection is
//! `Connection: close`; there is no keep-alive, chunking, or TLS.

use std::io::{self, BufRead, Write};

/// Largest request body accepted (a job spec is one short line; anything
/// bigger is a confused or hostile client).
pub const MAX_BODY: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Body bytes (empty unless Content-Length was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// Malformed request; the message is safe to echo to the client.
    Bad(String),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request from a buffered stream.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(HttpError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "client closed before sending a request",
        )));
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_ascii_uppercase(), p.to_string(), v),
        _ => return Err(HttpError::Bad(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(HttpError::Bad("truncated headers".to_string()));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| HttpError::Bad(format!("bad content-length {value:?}")))?;
                if content_length > MAX_BODY {
                    return Err(HttpError::Bad(format!(
                        "body too large ({content_length} > {MAX_BODY})"
                    )));
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Write a complete response with a sized body.
pub fn respond(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Start a streaming response: headers only, no Content-Length — the
/// caller writes body lines until it closes the connection.
pub fn start_stream(w: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 8\r\n\r\nkind=run")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"kind=run");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse("get /status HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/status");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(matches!(parse("\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&huge), Err(HttpError::Bad(_))));
        // Truncated body surfaces as an IO error, not a hang.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        respond(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "30".to_string())],
            b"{\"shed\":true}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 13\r\n"));
        assert!(text.contains("Retry-After: 30\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"shed\":true}"));
    }
}
