//! In-process integration tests for the serve daemon: real TCP, real
//! spool, real engine — only the process boundary is elided (the root
//! `tests/serve.rs` suite covers SIGKILL and cross-process resume).

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dcmaint_des::SimDuration;
use dcmaint_serve::client;
use dcmaint_serve::{ServeConfig, Server, Spool};

fn scratch(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("dcmaint-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        spool: scratch(tag),
        // 2 simulated days / 6h quantum = 8 cuts per quick job.
        checkpoint_every: SimDuration::from_hours(6),
        restart_base_ms: 5,
        restart_cap_ms: 20,
        ..ServeConfig::default()
    }
}

const QUICK: &str = "kind=run level=L3 days=2 quick=1 obs=1 seed=5";
const DEADLINE: Duration = Duration::from_secs(120);

/// Run one spec on a throwaway daemon and return its output bytes — the
/// reference for byte-identity assertions.
fn reference_output(tag: &str, spec: &str) -> String {
    let server = Server::start(config(tag)).expect("start");
    let port = server.port();
    let id = client::submit(port, spec).expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");
    let out = client::fetch_output(port, id).expect("output");
    server.request_shutdown();
    server.join();
    out
}

#[test]
fn submit_complete_status_and_metrics() {
    let server = Server::start(config("basic")).expect("start");
    let port = server.port();

    let id = client::submit(port, QUICK).expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");

    let out = client::fetch_output(port, id).expect("output");
    assert!(out.contains("\"availability\""), "summary json: {out:?}");
    assert!(out.contains("\"obs\""), "obs plane captured");

    let status = client::request(port, "GET", "/status", "").unwrap();
    assert_eq!(status.status, 200);
    assert_eq!(
        client::json_str(&status.body, "state").as_deref(),
        Some("running")
    );
    assert_eq!(client::json_u64(&status.body, "done"), Some(1));

    let metrics = client::request(port, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("serve/accepted 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("serve/jobs-done 1"),
        "{}",
        metrics.body
    );

    // Unknown routes and ids answer crisply instead of hanging.
    assert_eq!(
        client::request(port, "GET", "/nope", "").unwrap().status,
        404
    );
    assert_eq!(
        client::request(port, "GET", "/v1/jobs/999", "")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(port, "DELETE", "/v1/jobs", "")
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client::request(port, "POST", "/v1/jobs", "kind=walk")
            .unwrap()
            .status,
        400
    );

    server.request_shutdown();
    server.join();
}

#[test]
fn graceful_drain_parks_the_job_and_resume_is_byte_identical() {
    let reference = reference_output("drain-ref", &format!("{QUICK} seed=6"));

    let cfg = config("drain");
    let spool_dir = cfg.spool.clone();
    let server = Server::start(cfg.clone()).expect("start");
    let port = server.port();
    // slow_ms stretches each quantum so the drain lands mid-job.
    let id = client::submit(port, &format!("{QUICK} seed=6 slow_ms=60")).expect("submit");
    std::thread::sleep(Duration::from_millis(150));
    let resp = client::request(port, "POST", "/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    // New work is shed while draining.
    let shed = client::request(port, "POST", "/v1/jobs", QUICK).unwrap();
    assert_eq!(shed.status, 503);
    server.join();

    // The job is pending (not done) in the spool, with a snapshot cut.
    let spool = Spool::open(&spool_dir).unwrap();
    assert_eq!(spool.load().pending(), [id], "job parked, not finished");
    assert!(spool.read_ckpt(id).is_some(), "drain cut a snapshot");

    // A new daemon on the same spool picks the job up and finishes it —
    // byte-identically to a run that was never interrupted. (slow_ms is
    // wall-side only, so the spec difference cannot show in the output.)
    let server = Server::start(cfg).expect("restart");
    let port = server.port();
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");
    assert_eq!(client::fetch_output(port, id).unwrap(), reference);
    let metrics = client::request(port, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("serve/jobs-recovered 1"),
        "{}",
        metrics.body
    );
    server.request_shutdown();
    server.join();
}

#[test]
fn injected_panic_recovers_to_byte_identical_output() {
    let reference = reference_output("boom-ref", &format!("{QUICK} seed=7"));

    let server = Server::start(config("boom-once")).expect("start");
    let port = server.port();
    let id = client::submit(port, &format!("{QUICK} seed=7 boom=once")).expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");
    assert_eq!(
        client::fetch_output(port, id).unwrap(),
        reference,
        "restart-from-snapshot must reproduce the uninterrupted run"
    );
    let metrics = client::request(port, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("serve/worker-panics 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("serve/attempt-restarts 1"),
        "{}",
        metrics.body
    );
    server.request_shutdown();
    server.join();
}

#[test]
fn persistent_panics_fail_deterministically_without_taking_the_daemon() {
    let mut cfg = config("boom-always");
    cfg.max_attempts = 2;
    let server = Server::start(cfg).expect("start");
    let port = server.port();

    let bad = client::submit(port, &format!("{QUICK} seed=8 boom=always")).expect("submit");
    let good = client::submit(port, &format!("{QUICK} seed=9")).expect("submit");

    assert_eq!(
        client::wait_terminal(port, bad, DEADLINE).unwrap(),
        "failed"
    );
    let rec = client::request(port, "GET", &format!("/v1/jobs/{bad}"), "").unwrap();
    let msg = client::json_str(&rec.body, "message").unwrap();
    assert!(
        msg.starts_with("failed after 2 attempt(s): panic: injected boom at"),
        "deterministic failure message, got {msg:?}"
    );
    let output = client::request(port, "GET", &format!("/v1/jobs/{bad}/output"), "").unwrap();
    assert_eq!(
        output.status, 409,
        "failed jobs expose the message, not bytes"
    );

    // The panicking job did not poison the worker: the next job lands.
    assert_eq!(client::wait_terminal(port, good, DEADLINE).unwrap(), "done");
    server.request_shutdown();
    server.join();
}

#[test]
fn full_queue_sheds_load_with_retry_after() {
    let mut cfg = config("shed");
    cfg.max_queue = 1;
    let server = Server::start(cfg).expect("start");
    let port = server.port();

    // Occupy the worker with a slow job, then fill the queue of one.
    let running = client::submit(port, &format!("{QUICK} slow_ms=80")).expect("submit");
    let t0 = std::time::Instant::now();
    loop {
        let rec = client::request(port, "GET", &format!("/v1/jobs/{running}"), "").unwrap();
        if client::json_str(&rec.body, "state").as_deref() == Some("running") {
            break;
        }
        assert!(t0.elapsed() < DEADLINE, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    client::submit(port, QUICK).expect("fills the queue");

    // Raw request so the Retry-After header is visible.
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(
        stream,
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{QUICK}",
        QUICK.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After: 30"), "{raw}");

    let metrics = client::request(port, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("serve/rejected-full 1"),
        "{}",
        metrics.body
    );
    server.request_shutdown();
    server.join();
}

#[test]
fn stream_delivers_journal_lines_live() {
    let server = Server::start(config("stream")).expect("start");
    let port = server.port();

    let mut reader = client::open_stream(port).expect("stream");
    let collector = std::thread::spawn(move || {
        let mut lines = Vec::new();
        let mut buf = String::new();
        loop {
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) | Err(_) => return lines,
                Ok(_) => lines.push(buf.trim_end().to_string()),
            }
        }
    });

    let id = client::submit(port, QUICK).expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");
    server.request_shutdown();
    server.join(); // closes the fan-out → collector sees EOF

    let lines = collector.join().unwrap();
    assert!(!lines.is_empty(), "subscriber saw the live journal");
    assert!(
        lines
            .iter()
            .all(|l| l.starts_with('{') && l.contains("\"ev\"")),
        "journal lines are JSONL: {:?}",
        lines.first()
    );
}

#[test]
fn wall_clock_timeout_kills_and_fails_deterministically() {
    let mut cfg = config("timeout");
    cfg.job_timeout_ms = Some(1);
    cfg.max_attempts = 2;
    let server = Server::start(cfg).expect("start");
    let port = server.port();

    // Every quantum sleeps 30ms against a 1ms budget: each attempt times
    // out at its first cut, and the ladder ends in a deterministic fail.
    let id = client::submit(port, &format!("{QUICK} slow_ms=30")).expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "failed");
    let rec = client::request(port, "GET", &format!("/v1/jobs/{id}"), "").unwrap();
    assert_eq!(
        client::json_str(&rec.body, "message").as_deref(),
        Some("failed after 2 attempt(s): attempt 2 exceeded the wall-clock budget")
    );
    let metrics = client::request(port, "GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("serve/attempt-timeouts 2"),
        "{}",
        metrics.body
    );

    // The timed-out job did not take the daemon with it.
    let status = client::request(port, "GET", "/status", "").unwrap();
    assert_eq!(
        client::json_str(&status.body, "state").as_deref(),
        Some("running")
    );
    server.request_shutdown();
    server.join();
}

#[test]
fn sweep_jobs_run_and_render_the_level_table() {
    let server = Server::start(config("sweep")).expect("start");
    let port = server.port();
    let id =
        client::submit(port, "kind=sweep level=all days=2 seeds=1 quick=1 seed=4").expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");
    let out = client::fetch_output(port, id).unwrap();
    assert!(out.contains("engine sweep"), "table title: {out:?}");
    for level in ["L0", "L1", "L2", "L3", "L4"] {
        assert!(out.contains(level), "row for {level}: {out:?}");
    }
    server.request_shutdown();
    server.join();
}

#[test]
fn profiled_job_exposes_prometheus_engine_counters() {
    let server = Server::start(config("prof")).expect("start");
    let port = server.port();

    let id =
        client::submit(port, "kind=run level=L3 days=2 quick=1 profile=1 seed=11").expect("submit");
    assert_eq!(client::wait_terminal(port, id, DEADLINE).unwrap(), "done");

    let metrics = client::request(port, "GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    let body = &metrics.body;
    // The historical plain `name value` lines come first, unchanged.
    assert!(body.contains("serve/jobs-done 1"), "{body}");
    // Then the Prometheus exposition of the finished job's profile.
    assert!(
        body.contains("# TYPE selfmaint_engine_prof_total counter"),
        "{body}"
    );
    let needle =
        format!("selfmaint_engine_prof_total{{job=\"{id}\",key=\"prof/sched/scheduled\"}} ");
    let line = body
        .lines()
        .find(|l| l.starts_with(&needle))
        .unwrap_or_else(|| panic!("missing {needle} in:\n{body}"));
    let v: u64 = line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("counter value");
    assert!(v > 0, "scheduled counter should be nonzero: {line}");

    // A job without profile=1 contributes no exposition lines.
    let plain = client::submit(port, QUICK).expect("submit");
    assert_eq!(
        client::wait_terminal(port, plain, DEADLINE).unwrap(),
        "done"
    );
    let metrics2 = client::request(port, "GET", "/metrics", "").unwrap();
    assert!(
        !metrics2.body.contains(&format!("job=\"{plain}\"")),
        "unprofiled job leaked into /metrics:\n{}",
        metrics2.body
    );

    server.request_shutdown();
    server.join();
}
