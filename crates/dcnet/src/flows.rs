//! Fluid flow model: max-min fair rates and loss-driven tail latency.
//!
//! No claim in the paper is packet-granular, so flows are fluid: a demand
//! set is routed (deterministic ECMP), rates are computed by progressive
//! filling (max-min fairness), and latency comes from an analytic
//! retransmission model driven by per-link loss. This is exactly enough to
//! reproduce the §1 motivation — "the curse of a flapping link is the
//! associated increase in tail latency" — as experiment E9.
//!
//! ## Loss → latency model
//!
//! A TCP-like transport on a path with end-to-end loss probability `p`
//! retransmits; most retransmissions are fast (one extra RTT) but a
//! fraction hit timeouts (RTO ≈ 200 ms, orders of magnitude above
//! datacenter RTT ≈ 100 µs). For an N-segment transfer the expected
//! completion inflation and its tail are dominated by the probability of
//! ≥1 timeout; [`tail_latency_multiplier`] captures this with the standard
//! piecewise form: linear RTT inflation for tiny `p`, RTO-dominated growth
//! beyond `p ≈ 10⁻³`.

use crate::ids::{LinkId, NodeId};
use crate::routing::ecmp_path;
use crate::state::NetState;
use crate::topology::Topology;

/// One traffic demand (a long-running flow aggregate).
#[derive(Debug, Clone)]
pub struct Demand {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Offered load in Gbps.
    pub gbps: f64,
}

/// Result of routing + allocating one demand set.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Per-demand allocated rate in Gbps (0 for disconnected demands).
    pub rates: Vec<f64>,
    /// Per-demand path (empty for disconnected demands).
    pub paths: Vec<Vec<LinkId>>,
    /// Per-demand end-to-end loss probability.
    pub path_loss: Vec<f64>,
    /// Per-link utilization in `[0, 1]` (allocated / capacity).
    pub utilization: Vec<f64>,
    /// Demands that could not be routed.
    pub unrouted: usize,
}

impl FlowReport {
    /// Total throughput across demands, Gbps.
    pub fn total_throughput(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Fraction of offered demands that got a path.
    pub fn routed_fraction(&self) -> f64 {
        if self.rates.is_empty() {
            return 1.0;
        }
        1.0 - self.unrouted as f64 / self.rates.len() as f64
    }

    /// Latency multiplier (vs loss-free) experienced by each demand, from
    /// its path loss. Sorted copies of this give p50/p99.
    pub fn latency_multipliers(&self) -> Vec<f64> {
        self.path_loss
            .iter()
            .map(|&p| tail_latency_multiplier(p))
            .collect()
    }

    /// The `q`-quantile of per-demand latency multipliers.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut m = self.latency_multipliers();
        if m.is_empty() {
            return 1.0;
        }
        m.sort_by(|a, b| a.partial_cmp(b).expect("finite multipliers"));
        let idx = ((m.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        m[idx]
    }
}

/// Effective capacity of a link in Gbps: nominal × goodput factor. A lossy
/// link wastes capacity on retransmissions.
fn effective_capacity(topo: &Topology, state: &NetState, l: LinkId) -> f64 {
    let s = state.link(l);
    if !s.routable() {
        return 0.0;
    }
    f64::from(topo.link(l).gbps) * (1.0 - s.loss_rate).max(0.0)
}

/// Route every demand and compute max-min fair rates by progressive
/// filling over link capacities.
pub fn allocate(topo: &Topology, state: &NetState, demands: &[Demand]) -> FlowReport {
    let n_links = topo.link_count();
    let mut paths: Vec<Vec<LinkId>> = Vec::with_capacity(demands.len());
    let mut path_loss = Vec::with_capacity(demands.len());
    let mut unrouted = 0;
    for (i, d) in demands.iter().enumerate() {
        match ecmp_path(topo, state, d.src, d.dst, i as u64) {
            Some(p) => {
                let loss = 1.0
                    - p.iter()
                        .map(|&l| 1.0 - state.link(l).loss_rate)
                        .product::<f64>();
                paths.push(p);
                path_loss.push(loss.clamp(0.0, 1.0));
            }
            None => {
                unrouted += 1;
                paths.push(Vec::new());
                path_loss.push(1.0);
            }
        }
    }

    // Progressive filling: raise all unfrozen flows equally until a link
    // saturates; freeze flows on saturated links; repeat.
    let capacity: Vec<f64> = (0..n_links)
        .map(|i| effective_capacity(topo, state, LinkId::from_index(i)))
        .collect();
    let mut used = vec![0.0f64; n_links];
    let mut rate = vec![0.0f64; demands.len()];
    let mut frozen: Vec<bool> = demands
        .iter()
        .zip(&paths)
        .map(|(d, p)| p.is_empty() || d.gbps <= 0.0)
        .collect();
    // Flows also freeze when they reach their offered demand.
    for _round in 0..demands.len() + n_links + 2 {
        let active: Vec<usize> = (0..demands.len()).filter(|&i| !frozen[i]).collect();
        if active.is_empty() {
            break;
        }
        // Count active flows per link.
        let mut flows_on = vec![0u32; n_links];
        for &i in &active {
            for &l in &paths[i] {
                flows_on[l.index()] += 1;
            }
        }
        // Max uniform increment before some link saturates or some flow
        // hits its demand.
        let mut inc = f64::INFINITY;
        for li in 0..n_links {
            if flows_on[li] > 0 {
                let headroom = (capacity[li] - used[li]).max(0.0);
                inc = inc.min(headroom / f64::from(flows_on[li]));
            }
        }
        for &i in &active {
            inc = inc.min(demands[i].gbps - rate[i]);
        }
        if !inc.is_finite() {
            // Active flows with empty paths shouldn't exist; bail safely.
            break;
        }
        let inc = inc.max(0.0);
        for &i in &active {
            rate[i] += inc;
            for &l in &paths[i] {
                used[l.index()] += inc;
            }
        }
        // Freeze saturated flows.
        let mut any_frozen = false;
        for &i in &active {
            let at_demand = rate[i] >= demands[i].gbps - 1e-9;
            let on_full_link = paths[i]
                .iter()
                .any(|&l| used[l.index()] >= capacity[l.index()] - 1e-9);
            if at_demand || on_full_link {
                frozen[i] = true;
                any_frozen = true;
            }
        }
        if !any_frozen {
            break; // numeric stall guard
        }
    }

    let utilization: Vec<f64> = (0..n_links)
        .map(|i| {
            if capacity[i] <= 0.0 {
                0.0
            } else {
                (used[i] / capacity[i]).min(1.0)
            }
        })
        .collect();
    FlowReport {
        rates: rate,
        paths,
        path_loss,
        utilization,
        unrouted,
    }
}

/// Latency multiplier (relative to a loss-free path) for end-to-end loss
/// probability `p`. See the module docs for the model.
pub fn tail_latency_multiplier(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if p >= 1.0 {
        return 1e6; // disconnected; effectively infinite
    }
    // Fast-retransmit inflation: each loss costs ~1 extra RTT on average,
    // compounding as 1/(1-p).
    let fast = 1.0 / (1.0 - p);
    // Timeout term: probability that a window hits an RTO, costing
    // RTO/RTT ≈ 2000 base-RTTs. Per-transfer chance ≈ 1-(1-p)^W with
    // W ≈ 64 outstanding segments.
    let p_rto = 1.0 - (1.0 - p).powi(64);
    fast + p_rto * 2000.0 * p // weighted: only lossy tails pay full RTO
}

/// Build an all-to-all demand set over the given servers at `gbps` each,
/// skipping self-pairs. For `n` servers this is `n(n-1)` demands — use a
/// sampled subset for large fabrics.
pub fn all_to_all(servers: &[NodeId], gbps: f64) -> Vec<Demand> {
    let mut out = Vec::with_capacity(servers.len() * servers.len().saturating_sub(1));
    for &a in servers {
        for &b in servers {
            if a != b {
                out.push(Demand {
                    src: a,
                    dst: b,
                    gbps,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::DiversityProfile;
    use crate::gen::leaf_spine;
    use crate::state::LinkHealth;
    use dcmaint_des::SimRng;

    fn fabric() -> (Topology, NetState) {
        let t = leaf_spine(
            2,
            2,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        );
        let s = NetState::new(&t);
        (t, s)
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        let (t, s) = fabric();
        let servers = t.servers();
        let d = vec![Demand {
            src: servers[0],
            dst: servers[2],
            gbps: 1000.0,
        }];
        let r = allocate(&t, &s, &d);
        // Bottleneck: 100G server access links.
        assert!((r.rates[0] - 100.0).abs() < 1e-6, "rate {}", r.rates[0]);
        assert_eq!(r.unrouted, 0);
    }

    #[test]
    fn demand_caps_rate() {
        let (t, s) = fabric();
        let servers = t.servers();
        let d = vec![Demand {
            src: servers[0],
            dst: servers[2],
            gbps: 7.5,
        }];
        let r = allocate(&t, &s, &d);
        assert!((r.rates[0] - 7.5).abs() < 1e-9);
    }

    #[test]
    fn sharing_is_fair() {
        let (t, s) = fabric();
        let servers = t.servers();
        // Two flows from the same source server share its 100G access
        // link; each should get 50G.
        let d = vec![
            Demand {
                src: servers[0],
                dst: servers[2],
                gbps: 1000.0,
            },
            Demand {
                src: servers[0],
                dst: servers[3],
                gbps: 1000.0,
            },
        ];
        let r = allocate(&t, &s, &d);
        assert!((r.rates[0] - 50.0).abs() < 1e-6);
        assert!((r.rates[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_demand_reported() {
        let (t, mut s) = fabric();
        let servers = t.servers();
        let access = t.links_of(servers[0])[0];
        s.set_health(access, LinkHealth::Down, 1.0);
        let d = vec![Demand {
            src: servers[0],
            dst: servers[2],
            gbps: 10.0,
        }];
        let r = allocate(&t, &s, &d);
        assert_eq!(r.unrouted, 1);
        assert_eq!(r.rates[0], 0.0);
        assert_eq!(r.routed_fraction(), 0.0);
    }

    #[test]
    fn lossy_link_reduces_capacity_and_raises_latency() {
        let (t, mut s) = fabric();
        let servers = t.servers();
        let access = t.links_of(servers[0])[0];
        s.set_health(access, LinkHealth::Degraded, 0.10);
        let d = vec![Demand {
            src: servers[0],
            dst: servers[2],
            gbps: 1000.0,
        }];
        let r = allocate(&t, &s, &d);
        assert!((r.rates[0] - 90.0).abs() < 1e-6, "rate {}", r.rates[0]);
        assert!(r.path_loss[0] >= 0.10 - 1e-9);
        assert!(r.latency_quantile(0.5) > 1.0);
    }

    #[test]
    fn utilization_bounded() {
        let (t, s) = fabric();
        let servers = t.servers();
        let r = allocate(&t, &s, &all_to_all(&servers, 100.0));
        for &u in &r.utilization {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(r.total_throughput() > 0.0);
    }

    #[test]
    fn latency_multiplier_monotone() {
        let mut prev = 0.0;
        for &p in &[0.0, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5] {
            let m = tail_latency_multiplier(p);
            assert!(m >= prev, "not monotone at p={p}");
            prev = m;
        }
        assert_eq!(tail_latency_multiplier(0.0), 1.0);
        assert!(tail_latency_multiplier(1.0) >= 1e6);
    }

    #[test]
    fn flapping_loss_visibly_inflates_tail() {
        // The §1 story: 2% loss on one link should inflate that path's
        // latency multiplier far above the clean paths'.
        assert!(tail_latency_multiplier(0.02) > 10.0 * tail_latency_multiplier(0.0001));
    }

    #[test]
    fn all_to_all_size() {
        let servers = vec![NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(all_to_all(&servers, 1.0).len(), 6);
    }
}
