//! Dynamic per-link runtime state.
//!
//! [`Topology`] records what was cabled;
//! [`NetState`] records how it is behaving *now*: link health (the failure
//! model writes this), administrative state (the maintenance control plane
//! writes this), and the current packet-loss rate that the telemetry and
//! flow models read.
//!
//! Health and admin state are deliberately independent axes: a link can be
//! `Flapping` while `InService` (the bad case the paper opens with) or
//! perfectly `Up` while `Maintenance` (a proactive campaign touching a
//! healthy link — §4's predictive-maintenance scenario).

use crate::ids::LinkId;
use crate::topology::Topology;

/// Physical-layer health of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkHealth {
    /// Nominal: negligible loss.
    Up,
    /// Gray failure: elevated steady loss (dirty end-face, weak laser).
    Degraded,
    /// Oscillating between good and bad periods (§1's "flapping link").
    Flapping,
    /// Hard down (fail-stop).
    Down,
}

impl LinkHealth {
    /// Whether the link can carry any traffic at all.
    pub fn carries_traffic(self) -> bool {
        !matches!(self, LinkHealth::Down)
    }

    /// Stable lowercase label for journals and reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkHealth::Up => "up",
            LinkHealth::Degraded => "degraded",
            LinkHealth::Flapping => "flapping",
            LinkHealth::Down => "down",
        }
    }
}

/// Administrative state, owned by the maintenance control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdminState {
    /// Normal forwarding.
    InService,
    /// Being emptied of traffic ahead of maintenance (pre-contact
    /// announcement received; routing steers new flows away).
    Draining,
    /// Empty and safe to touch.
    Drained,
    /// Physically under maintenance (robot or human hands on it).
    Maintenance,
}

/// Runtime state of one link.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Physical health.
    pub health: LinkHealth,
    /// Administrative state.
    pub admin: AdminState,
    /// Current packet-loss probability in `[0, 1]`.
    pub loss_rate: f64,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            health: LinkHealth::Up,
            admin: AdminState::InService,
            loss_rate: 0.0,
        }
    }
}

impl LinkState {
    /// Whether routing may place traffic on this link: physically able to
    /// carry it and administratively in service or still draining (drained
    /// and in-maintenance links are excluded even if healthy).
    pub fn routable(&self) -> bool {
        self.health.carries_traffic()
            && matches!(self.admin, AdminState::InService | AdminState::Draining)
    }

    /// Whether the link counts as *available* for availability accounting:
    /// up or merely degraded. Flapping links count as unavailable half the
    /// time via their duty cycle, handled by the fault model marking
    /// health transitions; here flapping counts available (it carries
    /// *some* traffic) — tail latency is where flaps hurt.
    pub fn is_available(&self) -> bool {
        self.health.carries_traffic()
    }
}

/// Runtime state for every link in a topology.
#[derive(Debug, Clone)]
pub struct NetState {
    links: Vec<LinkState>,
}

impl NetState {
    /// All-healthy state for `topo`.
    pub fn new(topo: &Topology) -> Self {
        NetState {
            links: vec![LinkState::default(); topo.link_count()],
        }
    }

    /// State of one link.
    pub fn link(&self, l: LinkId) -> &LinkState {
        &self.links[l.index()]
    }

    /// Mutable state of one link.
    pub fn link_mut(&mut self, l: LinkId) -> &mut LinkState {
        &mut self.links[l.index()]
    }

    /// Number of links tracked.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when tracking no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Set link health and its implied loss rate.
    pub fn set_health(&mut self, l: LinkId, health: LinkHealth, loss_rate: f64) {
        let s = &mut self.links[l.index()];
        s.health = health;
        s.loss_rate = loss_rate.clamp(0.0, 1.0);
    }

    /// Set admin state.
    pub fn set_admin(&mut self, l: LinkId, admin: AdminState) {
        self.links[l.index()].admin = admin;
    }

    /// Count links in each health state: `(up, degraded, flapping, down)`.
    pub fn health_census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.links {
            match s.health {
                LinkHealth::Up => c.0 += 1,
                LinkHealth::Degraded => c.1 += 1,
                LinkHealth::Flapping => c.2 += 1,
                LinkHealth::Down => c.3 += 1,
            }
        }
        c
    }

    /// Ids of links currently not routable.
    pub fn unroutable(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.routable())
            .map(|(i, _)| LinkId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::DiversityProfile;
    use crate::gen::leaf_spine;
    use dcmaint_des::SimRng;

    fn topo() -> Topology {
        leaf_spine(
            2,
            2,
            1,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        )
    }

    #[test]
    fn starts_all_up() {
        let t = topo();
        let s = NetState::new(&t);
        let (up, deg, flap, down) = s.health_census();
        assert_eq!(up, t.link_count());
        assert_eq!(deg + flap + down, 0);
        assert!(s.unroutable().is_empty());
    }

    #[test]
    fn down_is_not_routable() {
        let t = topo();
        let mut s = NetState::new(&t);
        s.set_health(LinkId(0), LinkHealth::Down, 1.0);
        assert!(!s.link(LinkId(0)).routable());
        assert_eq!(s.unroutable(), vec![LinkId(0)]);
    }

    #[test]
    fn flapping_routes_but_lossy() {
        let t = topo();
        let mut s = NetState::new(&t);
        s.set_health(LinkId(1), LinkHealth::Flapping, 0.02);
        assert!(s.link(LinkId(1)).routable());
        assert!(s.link(LinkId(1)).is_available());
        assert!((s.link(LinkId(1)).loss_rate - 0.02).abs() < 1e-12);
    }

    #[test]
    fn drained_healthy_link_not_routable() {
        let t = topo();
        let mut s = NetState::new(&t);
        s.set_admin(LinkId(2), AdminState::Drained);
        assert!(!s.link(LinkId(2)).routable());
        // …but it is still *available* hardware-wise.
        assert!(s.link(LinkId(2)).is_available());
    }

    #[test]
    fn draining_still_routable() {
        let t = topo();
        let mut s = NetState::new(&t);
        s.set_admin(LinkId(2), AdminState::Draining);
        assert!(s.link(LinkId(2)).routable());
    }

    #[test]
    fn loss_rate_clamped() {
        let t = topo();
        let mut s = NetState::new(&t);
        s.set_health(LinkId(0), LinkHealth::Degraded, 7.0);
        assert_eq!(s.link(LinkId(0)).loss_rate, 1.0);
        s.set_health(LinkId(0), LinkHealth::Up, -2.0);
        assert_eq!(s.link(LinkId(0)).loss_rate, 0.0);
    }
}
