//! Typed index identifiers.
//!
//! Every entity in the network lives in a `Vec` owned by [`Topology`] or
//! [`NetState`](crate::state::NetState) and is referred to by a typed index.
//! Newtypes (rather than bare `usize`) make it a compile error to index the
//! link table with a port id — the classic simulator bug — at zero runtime
//! cost.
//!
//! [`Topology`]: crate::topology::Topology

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a table index.
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }

            /// The table index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// A stable `u64` key (for metrics maps).
            pub fn key(self) -> u64 {
                u64::from(self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// A node: switch or server. Index into [`Topology::nodes`](crate::topology::Topology).
    NodeId
);
id_type!(
    /// A physical port on a node. Index into the topology port table.
    PortId
);
id_type!(
    /// A bidirectional link (port pair + cable). Index into the link table.
    LinkId
);
id_type!(
    /// A rack position in the hall grid.
    RackId
);
id_type!(
    /// A row of racks.
    RowId
);
id_type!(
    /// A cable-tray segment (shared physical pathway).
    TraySegmentId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = LinkId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.key(), 42);
        assert_eq!(id, LinkId(42));
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(PortId(7).to_string(), "PortId#7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
    }
}
