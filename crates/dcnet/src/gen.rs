//! Topology generators: leaf-spine, fat-tree, Jellyfish, Xpander.
//!
//! The first two are the deployed mainstream. The last two are the
//! expander-graph designs the paper's §4 discussion singles out: better
//! bisection per dollar but "not used [because of] the complexity of
//! deployment … the complexity to manually deploy the complex wiring
//! looms". Generating all four over the *same* physical hall model lets
//! `topomaint` quantify exactly that wiring-complexity argument (E8).
//!
//! Placement conventions (shared so comparisons are apples-to-apples):
//! ToR/leaf/edge switches sit at the top of server racks; aggregation
//! switches share pod racks; spine/core switches occupy dedicated network
//! racks in row 0. Random topologies place one switch per rack, mirroring
//! their published deployments.

use dcmaint_des::SimRng;

use crate::components::{DiversityProfile, FormFactor, SwitchSpec};
use crate::layout::{HallLayout, RackLoc};
use crate::topology::{Tier, Topology, TopologyBuilder};

/// Racks per row used by all generators.
const RACKS_PER_ROW: u32 = 16;
/// Spine/core switches packed per network rack.
const CORES_PER_RACK: u32 = 8;

fn rows_for(racks: u32) -> u32 {
    racks.div_ceil(RACKS_PER_ROW).max(1)
}

/// Leaf–spine (2-tier Clos): every leaf connects to every spine
/// `uplinks_per_pair` times; `servers_per_leaf` servers per leaf rack.
pub fn leaf_spine(
    spines: usize,
    leaves: usize,
    servers_per_leaf: usize,
    uplinks_per_pair: usize,
    diversity: DiversityProfile,
    rng: &SimRng,
) -> Topology {
    let network_racks = (spines as u32).div_ceil(CORES_PER_RACK).max(1);
    let leaf_rows = rows_for(leaves as u32);
    let layout = HallLayout::new(1 + leaf_rows, RACKS_PER_ROW.max(network_racks));
    let mut b = TopologyBuilder::new(
        &format!("leaf-spine-{spines}x{leaves}"),
        layout,
        diversity,
        rng,
    );
    let spine_ids: Vec<_> = (0..spines)
        .map(|i| {
            b.add_switch(
                &format!("spine-{i}"),
                SwitchSpec::spine64(),
                Tier::Core,
                RackLoc {
                    row: 0,
                    col: i as u32 / CORES_PER_RACK,
                },
            )
        })
        .collect();
    for leaf in 0..leaves {
        let rack = RackLoc {
            row: 1 + leaf as u32 / RACKS_PER_ROW,
            col: leaf as u32 % RACKS_PER_ROW,
        };
        let leaf_id = b.add_switch(
            &format!("leaf-{leaf}"),
            SwitchSpec::tor32(),
            Tier::Tor,
            rack,
        );
        for &spine in &spine_ids {
            for _ in 0..uplinks_per_pair.max(1) {
                b.connect(leaf_id, spine, FormFactor::QsfpDd);
            }
        }
        for s in 0..servers_per_leaf {
            let srv = b.add_server(&format!("srv-{leaf}-{s}"), rack);
            b.connect(leaf_id, srv, FormFactor::Qsfp28);
        }
    }
    b.build()
}

/// k-ary fat-tree (k even): k pods of k/2 edge + k/2 aggregation switches,
/// (k/2)² cores, (k/2)² servers per pod.
pub fn fat_tree(k: usize, diversity: DiversityProfile, rng: &SimRng) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires even k >= 2"
    );
    let half = k / 2;
    let cores = half * half;
    let network_racks = (cores as u32).div_ceil(CORES_PER_RACK).max(1);
    let layout = HallLayout::new(1 + k as u32, RACKS_PER_ROW.max(network_racks));
    let mut b = TopologyBuilder::new(&format!("fat-tree-k{k}"), layout, diversity, rng);

    let core_ids: Vec<_> = (0..cores)
        .map(|i| {
            b.add_switch(
                &format!("core-{i}"),
                SwitchSpec::spine64(),
                Tier::Core,
                RackLoc {
                    row: 0,
                    col: i as u32 / CORES_PER_RACK,
                },
            )
        })
        .collect();

    for pod in 0..k {
        let row = 1 + pod as u32;
        let edge_ids: Vec<_> = (0..half)
            .map(|e| {
                b.add_switch(
                    &format!("edge-{pod}-{e}"),
                    SwitchSpec::tor32(),
                    Tier::Tor,
                    RackLoc { row, col: e as u32 },
                )
            })
            .collect();
        let agg_ids: Vec<_> = (0..half)
            .map(|a| {
                b.add_switch(
                    &format!("agg-{pod}-{a}"),
                    SwitchSpec::tor32(),
                    Tier::Agg,
                    RackLoc { row, col: a as u32 },
                )
            })
            .collect();
        // Pod mesh: every edge to every agg.
        for &e in &edge_ids {
            for &a in &agg_ids {
                b.connect(e, a, FormFactor::QsfpDd);
            }
        }
        // Aggregation to core: agg a owns core group a.
        for (a, &agg) in agg_ids.iter().enumerate() {
            for c in 0..half {
                b.connect(agg, core_ids[a * half + c], FormFactor::QsfpDd);
            }
        }
        // Servers under each edge switch.
        for (e, &edge) in edge_ids.iter().enumerate() {
            for s in 0..half {
                let srv = b.add_server(
                    &format!("srv-{pod}-{e}-{s}"),
                    RackLoc { row, col: e as u32 },
                );
                b.connect(edge, srv, FormFactor::Qsfp28);
            }
        }
    }
    b.build()
}

/// Jellyfish (random regular graph, NSDI '12): `switches` ToRs each with
/// `degree` inter-switch links and `servers_per_switch` servers.
pub fn jellyfish(
    switches: usize,
    degree: usize,
    servers_per_switch: usize,
    diversity: DiversityProfile,
    rng: &SimRng,
) -> Topology {
    let edges = random_regular_graph(switches, degree, rng);
    build_flat_random(
        &format!("jellyfish-n{switches}-r{degree}"),
        switches,
        &edges,
        servers_per_switch,
        diversity,
        rng,
    )
}

/// Xpander (CoNEXT '16): a `lift`-lift of the complete graph K_{d+1},
/// giving `(d+1) * lift` switches of degree `d`. Deterministic structure
/// with randomized matchings.
pub fn xpander(
    d: usize,
    lift: usize,
    servers_per_switch: usize,
    diversity: DiversityProfile,
    rng: &SimRng,
) -> Topology {
    assert!(d >= 2 && lift >= 1, "xpander requires d >= 2, lift >= 1");
    let n = (d + 1) * lift;
    let mut edges = Vec::new();
    let mut stream = rng.stream("xpander-matchings", 0);
    // For each edge (u, v) of K_{d+1}, connect the lift copies of u to a
    // random permutation of the lift copies of v.
    for u in 0..=d {
        for v in (u + 1)..=d {
            let mut perm: Vec<usize> = (0..lift).collect();
            stream.shuffle(&mut perm);
            for (i, &j) in perm.iter().enumerate() {
                edges.push((u * lift + i, v * lift + j));
            }
        }
    }
    build_flat_random(
        &format!("xpander-d{d}-l{lift}"),
        n,
        &edges,
        servers_per_switch,
        diversity,
        rng,
    )
}

/// Shared builder for flat (single-tier) random topologies.
fn build_flat_random(
    name: &str,
    switches: usize,
    edges: &[(usize, usize)],
    servers_per_switch: usize,
    diversity: DiversityProfile,
    rng: &SimRng,
) -> Topology {
    let layout = HallLayout::new(rows_for(switches as u32), RACKS_PER_ROW);
    let mut b = TopologyBuilder::new(name, layout, diversity, rng);
    let ids: Vec<_> = (0..switches)
        .map(|i| {
            b.add_switch(
                &format!("tor-{i}"),
                SwitchSpec::spine64(),
                Tier::Tor,
                RackLoc {
                    row: i as u32 / RACKS_PER_ROW,
                    col: i as u32 % RACKS_PER_ROW,
                },
            )
        })
        .collect();
    for &(u, v) in edges {
        b.connect(ids[u], ids[v], FormFactor::QsfpDd);
    }
    for (i, &sw) in ids.iter().enumerate() {
        let rack = RackLoc {
            row: i as u32 / RACKS_PER_ROW,
            col: i as u32 % RACKS_PER_ROW,
        };
        for s in 0..servers_per_switch {
            let srv = b.add_server(&format!("srv-{i}-{s}"), rack);
            b.connect(ids[i], srv, FormFactor::Qsfp28);
        }
        let _ = sw;
    }
    b.build()
}

/// Random `r`-regular simple graph on `n` vertices via the pairing model
/// with conflict fixup. Requires `n * r` even and `r < n`.
fn random_regular_graph(n: usize, r: usize, rng: &SimRng) -> Vec<(usize, usize)> {
    assert!(r < n, "degree must be below vertex count");
    assert!((n * r).is_multiple_of(2), "n * r must be even");
    let mut stream = rng.stream("jellyfish-pairing", 0);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, r)).collect();
        stream.shuffle(&mut stubs);
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * r / 2);
        let mut seen = std::collections::BTreeSet::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if u == v || !seen.insert((u, v)) {
                // Try local fixup: swap with a random existing edge.
                let mut fixed = false;
                for _ in 0..50 {
                    if edges.is_empty() {
                        break;
                    }
                    let k = stream.index(edges.len());
                    let (x, y) = edges[k];
                    // Rewire (u,v)+(x,y) into (u,x)+(v,y).
                    let e1 = (u.min(x), u.max(x));
                    let e2 = (v.min(y), v.max(y));
                    if u != x && v != y && !seen.contains(&e1) && !seen.contains(&e2) && e1 != e2 {
                        seen.remove(&(x.min(y), x.max(y)));
                        edges[k] = e1;
                        seen.insert(e1);
                        edges.push(e2);
                        seen.insert(e2);
                        fixed = true;
                        break;
                    }
                }
                if !fixed {
                    continue 'attempt;
                }
            } else {
                edges.push((u, v));
            }
        }
        return edges;
    }
    panic!("random regular graph generation failed after 200 attempts (n={n}, r={r})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use std::collections::{HashSet, VecDeque};

    fn degree_of(t: &Topology, n: NodeId) -> usize {
        t.neighbors(n).len()
    }

    fn is_connected(t: &Topology) -> bool {
        if t.node_count() == 0 {
            return true;
        }
        let mut seen = HashSet::new();
        let mut q = VecDeque::new();
        q.push_back(NodeId(0));
        seen.insert(NodeId(0));
        while let Some(n) = q.pop_front() {
            for &(m, _) in t.neighbors(n) {
                if seen.insert(m) {
                    q.push_back(m);
                }
            }
        }
        seen.len() == t.node_count()
    }

    #[test]
    fn leaf_spine_counts() {
        let t = leaf_spine(
            4,
            8,
            4,
            1,
            DiversityProfile::cloud_typical(),
            &SimRng::root(1),
        );
        assert_eq!(t.switches().len(), 12);
        assert_eq!(t.servers().len(), 32);
        // 8 leaves * 4 spines + 8 * 4 servers
        assert_eq!(t.link_count(), 32 + 32);
        assert!(is_connected(&t));
    }

    #[test]
    fn leaf_spine_uplink_multiplicity() {
        let t = leaf_spine(
            2,
            2,
            0,
            3,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        );
        assert_eq!(t.link_count(), 2 * 2 * 3);
    }

    #[test]
    fn fat_tree_k4_structure() {
        let t = fat_tree(4, DiversityProfile::cloud_typical(), &SimRng::root(2));
        // k=4: 4 cores, 8 agg, 8 edge, 16 servers.
        assert_eq!(t.switches().len(), 20);
        assert_eq!(t.servers().len(), 16);
        // Links: pod mesh 4*2*2=16, agg-core 4*2*2=16, server 16.
        assert_eq!(t.link_count(), 48);
        assert!(is_connected(&t));
    }

    #[test]
    fn fat_tree_core_degree() {
        let t = fat_tree(4, DiversityProfile::cloud_typical(), &SimRng::root(2));
        for n in t.node_ids() {
            if t.node(n).tier() == Some(Tier::Core) {
                assert_eq!(degree_of(&t, n), 4, "core connects to one agg per pod");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_rejects_odd_k() {
        fat_tree(5, DiversityProfile::standardized(), &SimRng::root(1));
    }

    #[test]
    fn jellyfish_is_regular_and_connected() {
        let t = jellyfish(
            20,
            6,
            2,
            DiversityProfile::cloud_typical(),
            &SimRng::root(3),
        );
        assert_eq!(t.switches().len(), 20);
        assert_eq!(t.servers().len(), 40);
        for n in t.node_ids() {
            if t.node(n).is_switch() {
                // 6 switch links + 2 server links.
                assert_eq!(degree_of(&t, n), 8);
            }
        }
        assert!(is_connected(&t));
    }

    #[test]
    fn jellyfish_no_self_or_parallel_switch_edges() {
        let t = jellyfish(16, 5, 0, DiversityProfile::standardized(), &SimRng::root(4));
        let mut seen = HashSet::new();
        for l in t.link_ids() {
            let (a, b) = t.endpoints(l);
            assert_ne!(a, b, "self loop");
            assert!(seen.insert((a.min(b), a.max(b))), "parallel edge");
        }
    }

    #[test]
    fn xpander_counts_and_regularity() {
        let t = xpander(4, 5, 1, DiversityProfile::cloud_typical(), &SimRng::root(5));
        // (d+1)*lift = 25 switches, each degree d=4 (+1 server).
        assert_eq!(t.switches().len(), 25);
        for n in t.node_ids() {
            if t.node(n).is_switch() {
                assert_eq!(degree_of(&t, n), 5);
            }
        }
        assert!(is_connected(&t));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = jellyfish(
            12,
            4,
            1,
            DiversityProfile::cloud_typical(),
            &SimRng::root(9),
        );
        let b = jellyfish(
            12,
            4,
            1,
            DiversityProfile::cloud_typical(),
            &SimRng::root(9),
        );
        let ea: Vec<_> = a.link_ids().map(|l| a.endpoints(l)).collect();
        let eb: Vec<_> = b.link_ids().map(|l| b.endpoints(l)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn random_topologies_have_longer_cables_than_leaf_spine() {
        // The §4 deployability argument: expander wiring is physically
        // messier. With the same hall conventions, Jellyfish's random
        // peerings should produce a longer mean cable run than the
        // row-organized leaf-spine fabric of similar size.
        let rng = SimRng::root(11);
        let ls = leaf_spine(4, 16, 0, 1, DiversityProfile::standardized(), &rng);
        let jf = jellyfish(20, 6, 0, DiversityProfile::standardized(), &rng);
        assert!(
            jf.mean_cable_length_m() > ls.mean_cable_length_m() * 0.8,
            "jellyfish {:.1} m vs leaf-spine {:.1} m",
            jf.mean_cable_length_m(),
            ls.mean_cable_length_m()
        );
    }
}
