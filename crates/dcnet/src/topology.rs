//! The network graph: nodes, ports, links, and their physical embedding.
//!
//! [`Topology`] is the *static* description of a deployed network — what
//! was cabled where. Dynamic state (link health, drain status) lives in
//! [`NetState`](crate::state::NetState) so that a single topology can be
//! shared by many simulation runs.
//!
//! The struct is built through [`TopologyBuilder`], which handles the
//! bookkeeping every generator needs: rack/U placement, faceplate slot
//! assignment, cable-medium selection by routed length, transceiver
//! instantiation with sampled design families, tray occupancy, and
//! disturbance-neighbor precomputation.

use dcmaint_des::{SimRng, Stream};

use crate::components::{
    Cable, CableMedium, DesignFamily, DiversityProfile, FormFactor, SwitchSpec, Transceiver,
};
use crate::ids::{LinkId, NodeId, PortId, RackId};
use crate::layout::{CableRoute, Face, HallLayout, PortLoc, RackLoc};

/// Network tier of a switch (placement and routing both use this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Top-of-rack / edge / leaf.
    Tor,
    /// Aggregation (fat-tree pods).
    Agg,
    /// Core / spine.
    Core,
}

/// What a node is.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// A switch at some tier.
    Switch {
        /// Hardware description.
        spec: SwitchSpec,
        /// Network tier.
        tier: Tier,
    },
    /// A server (NIC endpoint).
    Server,
}

/// A node: switch or server, placed in a rack.
#[derive(Debug, Clone)]
pub struct Node {
    /// Switch or server.
    pub kind: NodeKind,
    /// Rack holding the node.
    pub rack: RackId,
    /// Bottom rack-unit of the node.
    pub u: u8,
    /// Human-readable name (`tor-r3`, `spine-2`, `srv-r3-5`, …).
    pub name: String,
}

impl Node {
    /// True if the node is a switch.
    pub fn is_switch(&self) -> bool {
        matches!(self.kind, NodeKind::Switch { .. })
    }

    /// The switch tier, if a switch.
    pub fn tier(&self) -> Option<Tier> {
        match self.kind {
            NodeKind::Switch { tier, .. } => Some(tier),
            NodeKind::Server => None,
        }
    }
}

/// A physical port: location plus (optionally) the pluggable transceiver
/// seated in it. Integrated cables (DAC/AEC/AOC) still present a pluggable
/// module end at the port — it just cannot be separated from its cable.
#[derive(Debug, Clone)]
pub struct Port {
    /// Owning node.
    pub node: NodeId,
    /// Physical location.
    pub loc: PortLoc,
    /// Seated transceiver (None only for never-cabled ports).
    pub xcvr: Option<Transceiver>,
}

/// A bidirectional link: two ports joined by a cable.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint port.
    pub a: PortId,
    /// Other endpoint port.
    pub b: PortId,
    /// The cable.
    pub cable: Cable,
    /// Physical tray route.
    pub route: CableRoute,
    /// Nominal capacity in Gbps.
    pub gbps: u32,
}

/// The static network description. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Hall geometry.
    pub layout: HallLayout,
    /// Component diversity profile of the fleet.
    pub diversity: DiversityProfile,
    nodes: Vec<Node>,
    ports: Vec<Port>,
    links: Vec<Link>,
    node_ports: Vec<Vec<PortId>>,
    port_link: Vec<Option<LinkId>>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    tray_occupancy: Vec<Vec<LinkId>>,
    disturb_neighbors: Vec<Vec<LinkId>>,
    name: String,
}

impl Topology {
    /// Topology name (e.g. `fat-tree-k8`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// A port by id.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Mutable port access (reseat counters, transceiver swaps).
    pub fn port_mut(&mut self, id: PortId) -> &mut Port {
        &mut self.ports[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// A link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable link access (cable replacement).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len()).map(LinkId::from_index)
    }

    /// Iterator over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Node ids of all servers.
    pub fn servers(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| !self.nodes[n.index()].is_switch())
            .collect()
    }

    /// Node ids of all switches.
    pub fn switches(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.nodes[n.index()].is_switch())
            .collect()
    }

    /// Ports belonging to a node.
    pub fn node_ports(&self, n: NodeId) -> &[PortId] {
        &self.node_ports[n.index()]
    }

    /// The link seated in a port, if cabled.
    pub fn port_link(&self, p: PortId) -> Option<LinkId> {
        self.port_link[p.index()]
    }

    /// Node endpoints of a link.
    pub fn endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        let link = &self.links[l.index()];
        (
            self.ports[link.a.index()].node,
            self.ports[link.b.index()].node,
        )
    }

    /// Neighbor nodes of `n` with the connecting link.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.index()]
    }

    /// All links of a node.
    pub fn links_of(&self, n: NodeId) -> Vec<LinkId> {
        self.adjacency[n.index()].iter().map(|&(_, l)| l).collect()
    }

    /// Links occupying a tray segment.
    pub fn tray_links(&self, seg: crate::ids::TraySegmentId) -> &[LinkId] {
        &self.tray_occupancy[seg.index()]
    }

    /// Disturbance neighbors of a link: links sharing a tray segment or
    /// panel-adjacent at either endpoint. These are the links physically
    /// perturbed when this link's cable is touched (§1 cascading failures).
    pub fn disturb_neighbors(&self, l: LinkId) -> &[LinkId] {
        &self.disturb_neighbors[l.index()]
    }

    /// Given a link and one of its endpoint nodes, the port on that node.
    pub fn port_on(&self, l: LinkId, n: NodeId) -> Option<PortId> {
        let link = &self.links[l.index()];
        if self.ports[link.a.index()].node == n {
            Some(link.a)
        } else if self.ports[link.b.index()].node == n {
            Some(link.b)
        } else {
            None
        }
    }

    /// Mean cable length in meters (wiring-complexity input for topomaint).
    pub fn mean_cable_length_m(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        self.links.iter().map(|l| l.cable.length_m).sum::<f64>() / self.links.len() as f64
    }

    /// Fraction of links whose cable leaves its rack.
    pub fn cross_rack_fraction(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        let cross = self
            .links
            .iter()
            .filter(|l| !l.route.segments.is_empty())
            .count();
        cross as f64 / self.links.len() as f64
    }
}

/// Incremental topology constructor used by all generators.
pub struct TopologyBuilder {
    layout: HallLayout,
    diversity: DiversityProfile,
    nodes: Vec<Node>,
    ports: Vec<Port>,
    links: Vec<Link>,
    node_ports: Vec<Vec<PortId>>,
    port_link: Vec<Option<LinkId>>,
    next_free_u: Vec<u8>,
    rng: Stream,
    name: String,
}

impl TopologyBuilder {
    /// Start building in the given hall with the given component diversity.
    /// `rng` seeds design-family sampling (deterministic per root seed).
    pub fn new(name: &str, layout: HallLayout, diversity: DiversityProfile, rng: &SimRng) -> Self {
        let racks = layout.rack_count();
        TopologyBuilder {
            layout,
            diversity,
            nodes: Vec::new(),
            ports: Vec::new(),
            links: Vec::new(),
            node_ports: Vec::new(),
            port_link: Vec::new(),
            next_free_u: vec![1; racks],
            rng: rng.stream("topology-builder", 0),
            name: name.to_string(),
        }
    }

    /// Hall geometry in use.
    pub fn layout(&self) -> &HallLayout {
        &self.layout
    }

    /// Place a switch at the top of the given rack (ToRs) or the next free
    /// U from the bottom (spines in network racks). Returns its node id.
    pub fn add_switch(
        &mut self,
        name: &str,
        spec: SwitchSpec,
        tier: Tier,
        rack: RackLoc,
    ) -> NodeId {
        let rack_id = self.layout.rack_id(rack);
        let u = match tier {
            // ToRs go at the top of the rack (standard practice).
            Tier::Tor => self.layout.rack_height_u - spec.height_u + 1,
            _ => self.alloc_u(rack_id, spec.height_u),
        };
        self.push_node(Node {
            kind: NodeKind::Switch { spec, tier },
            rack: rack_id,
            u,
            name: name.to_string(),
        })
    }

    /// Place a server in the next free U of the given rack.
    pub fn add_server(&mut self, name: &str, rack: RackLoc) -> NodeId {
        let rack_id = self.layout.rack_id(rack);
        let u = self.alloc_u(rack_id, 2); // 2U servers
        self.push_node(Node {
            kind: NodeKind::Server,
            rack: rack_id,
            u,
            name: name.to_string(),
        })
    }

    fn alloc_u(&mut self, rack: RackId, height: u8) -> u8 {
        let u = self.next_free_u[rack.index()];
        // Wrap rather than overflow if a generator overfills a rack; the
        // simulation doesn't model physical collision, only geometry.
        let next = u.saturating_add(height);
        self.next_free_u[rack.index()] = if next >= self.layout.rack_height_u {
            1
        } else {
            next
        };
        u
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        self.node_ports.push(Vec::new());
        id
    }

    fn alloc_port(&mut self, node: NodeId) -> PortId {
        let slot = self.node_ports[node.index()].len() as u16;
        let n = &self.nodes[node.index()];
        let loc = PortLoc {
            rack: n.rack,
            u: n.u,
            face: Face::Rear,
            slot,
        };
        let id = PortId::from_index(self.ports.len());
        self.ports.push(Port {
            node,
            loc,
            xcvr: None,
        });
        self.port_link.push(None);
        self.node_ports[node.index()].push(id);
        id
    }

    /// Cable two nodes together with the given form factor. Medium is
    /// chosen from the routed length per §3.1; separable media get
    /// independently sampled transceiver design families at both ends.
    pub fn connect(&mut self, a: NodeId, b: NodeId, form: FormFactor) -> LinkId {
        let pa = self.alloc_port(a);
        let pb = self.alloc_port(b);
        let ra = self.layout.rack_loc(self.nodes[a.index()].rack);
        let rb = self.layout.rack_loc(self.nodes[b.index()].rack);
        let route = self.layout.route(ra, rb);
        let medium = CableMedium::for_length(route.length_m, form);
        let fam_a = DesignFamily::sample(&mut self.rng, self.diversity.vendor_count);
        let fam_b = if medium.is_separable() {
            DesignFamily::sample(&mut self.rng, self.diversity.vendor_count)
        } else {
            fam_a // integrated cable: both ends from the same product
        };
        self.ports[pa.index()].xcvr = Some(Transceiver::new(form, fam_a));
        self.ports[pb.index()].xcvr = Some(Transceiver::new(form, fam_b));
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link {
            a: pa,
            b: pb,
            cable: Cable {
                medium,
                length_m: route.length_m,
            },
            route,
            gbps: form.gbps(),
        });
        self.port_link[pa.index()] = Some(id);
        self.port_link[pb.index()] = Some(id);
        id
    }

    /// Finish: compute adjacency, tray occupancy, and disturbance
    /// neighbors.
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, link) in self.links.iter().enumerate() {
            let id = LinkId::from_index(i);
            let na = self.ports[link.a.index()].node;
            let nb = self.ports[link.b.index()].node;
            adjacency[na.index()].push((nb, id));
            adjacency[nb.index()].push((na, id));
        }
        let mut tray_occupancy = vec![Vec::new(); self.layout.tray_segment_count()];
        for (i, link) in self.links.iter().enumerate() {
            for seg in &link.route.segments {
                tray_occupancy[seg.index()].push(LinkId::from_index(i));
            }
        }
        // Disturbance neighbors: tray-sharing plus panel adjacency.
        let mut disturb: Vec<std::collections::BTreeSet<LinkId>> =
            vec![Default::default(); self.links.len()];
        for occ in &tray_occupancy {
            for (i, &la) in occ.iter().enumerate() {
                for &lb in &occ[i + 1..] {
                    disturb[la.index()].insert(lb);
                    disturb[lb.index()].insert(la);
                }
            }
        }
        // Panel adjacency: group cabled ports by (rack, u, face); slots
        // within +/-2 are neighbors.
        use std::collections::BTreeMap;
        let mut panels: BTreeMap<(RackId, u8, u8), Vec<(u16, LinkId)>> = BTreeMap::new();
        for (pi, port) in self.ports.iter().enumerate() {
            if let Some(l) = self.port_link[pi] {
                let face = match port.loc.face {
                    Face::Front => 0u8,
                    Face::Rear => 1,
                };
                panels
                    .entry((port.loc.rack, port.loc.u, face))
                    .or_default()
                    .push((port.loc.slot, l));
            }
        }
        for group in panels.values_mut() {
            group.sort_unstable_by_key(|&(slot, _)| slot);
            for (i, &(slot_i, li)) in group.iter().enumerate() {
                for &(slot_j, lj) in &group[i + 1..] {
                    if slot_j - slot_i > 2 {
                        break;
                    }
                    if li != lj {
                        disturb[li.index()].insert(lj);
                        disturb[lj.index()].insert(li);
                    }
                }
            }
        }
        Topology {
            layout: self.layout,
            diversity: self.diversity,
            nodes: self.nodes,
            ports: self.ports,
            links: self.links,
            node_ports: self.node_ports,
            port_link: self.port_link,
            adjacency,
            tray_occupancy,
            disturb_neighbors: disturb
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rack_pair() -> Topology {
        let rng = SimRng::root(1);
        let mut b = TopologyBuilder::new(
            "pair",
            HallLayout::new(1, 2),
            DiversityProfile::cloud_typical(),
            &rng,
        );
        let s0 = b.add_switch(
            "tor-0",
            SwitchSpec::tor32(),
            Tier::Tor,
            RackLoc { row: 0, col: 0 },
        );
        let s1 = b.add_switch(
            "tor-1",
            SwitchSpec::tor32(),
            Tier::Tor,
            RackLoc { row: 0, col: 1 },
        );
        let srv = b.add_server("srv-0", RackLoc { row: 0, col: 0 });
        b.connect(s0, s1, FormFactor::QsfpDd);
        b.connect(s0, srv, FormFactor::Qsfp28);
        b.build()
    }

    #[test]
    fn builder_wires_adjacency() {
        let t = two_rack_pair();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId(1)).len(), 1);
        let (a, b) = t.endpoints(LinkId(0));
        assert_eq!((a, b), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn intra_rack_link_is_dac() {
        let t = two_rack_pair();
        // Link 1: tor-0 to srv-0, same rack → short → DAC.
        assert_eq!(t.link(LinkId(1)).cable.medium, CableMedium::Dac);
        assert!(t.link(LinkId(1)).route.segments.is_empty());
    }

    #[test]
    fn cross_rack_link_has_route_and_xcvrs() {
        let t = two_rack_pair();
        let l = t.link(LinkId(0));
        assert!(l.cable.length_m > 3.0);
        let pa = t.port(l.a);
        assert!(pa.xcvr.is_some());
        assert_eq!(pa.xcvr.as_ref().unwrap().form, FormFactor::QsfpDd);
    }

    #[test]
    fn port_on_returns_correct_side() {
        let t = two_rack_pair();
        let l = LinkId(0);
        let p = t.port_on(l, NodeId(1)).unwrap();
        assert_eq!(t.port(p).node, NodeId(1));
        assert!(t.port_on(l, NodeId(2)).is_none());
    }

    #[test]
    fn tor_placed_at_rack_top() {
        let t = two_rack_pair();
        let tor = t.node(NodeId(0));
        assert_eq!(tor.u, 42); // 42U rack, 1U switch at top
    }

    #[test]
    fn deterministic_given_same_seed() {
        let a = two_rack_pair();
        let b = two_rack_pair();
        let fa = a.port(a.link(LinkId(0)).a).xcvr.as_ref().unwrap().family;
        let fb = b.port(b.link(LinkId(0)).a).xcvr.as_ref().unwrap().family;
        assert_eq!(fa.vendor, fb.vendor);
        assert_eq!(fa.tab_style, fb.tab_style);
    }

    #[test]
    fn panel_neighbors_marked_disturbing() {
        // Build a ToR with several server links: their ports sit at
        // adjacent slots on the same faceplate, so they must disturb each
        // other.
        let rng = SimRng::root(2);
        let mut b = TopologyBuilder::new(
            "fan",
            HallLayout::new(1, 1),
            DiversityProfile::standardized(),
            &rng,
        );
        let tor = b.add_switch(
            "tor",
            SwitchSpec::tor32(),
            Tier::Tor,
            RackLoc { row: 0, col: 0 },
        );
        let mut links = Vec::new();
        for i in 0..4 {
            let s = b.add_server(&format!("srv-{i}"), RackLoc { row: 0, col: 0 });
            links.push(b.connect(tor, s, FormFactor::Qsfp28));
        }
        let t = b.build();
        // Link 0's ToR port is slot 0; slots 1 and 2 are within radius 2.
        let n = t.disturb_neighbors(links[0]);
        assert!(n.contains(&links[1]));
        assert!(n.contains(&links[2]));
        assert!(!n.contains(&links[0]));
    }

    #[test]
    fn tray_sharing_marked_disturbing() {
        let rng = SimRng::root(3);
        let mut b = TopologyBuilder::new(
            "row",
            HallLayout::new(1, 3),
            DiversityProfile::standardized(),
            &rng,
        );
        let s0 = b.add_switch(
            "a",
            SwitchSpec::tor32(),
            Tier::Tor,
            RackLoc { row: 0, col: 0 },
        );
        let s2 = b.add_switch(
            "c",
            SwitchSpec::tor32(),
            Tier::Tor,
            RackLoc { row: 0, col: 2 },
        );
        let s1 = b.add_switch(
            "b",
            SwitchSpec::tor32(),
            Tier::Tor,
            RackLoc { row: 0, col: 1 },
        );
        let l02 = b.connect(s0, s2, FormFactor::QsfpDd);
        let l01 = b.connect(s0, s1, FormFactor::QsfpDd);
        let t = b.build();
        // Both cables traverse the col0-col1 tray segment.
        assert!(t.disturb_neighbors(l02).contains(&l01));
        assert!(t.disturb_neighbors(l01).contains(&l02));
    }

    #[test]
    fn stats_helpers() {
        let t = two_rack_pair();
        assert!(t.mean_cable_length_m() > 0.0);
        assert!((t.cross_rack_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(t.servers().len(), 1);
        assert_eq!(t.switches().len(), 2);
    }
}
