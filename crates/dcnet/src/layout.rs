//! Physical hall geometry: rack grid, port positions, cable trays.
//!
//! Maintenance is a *physical* activity, so the substrate must answer
//! physical questions the control plane and robots ask:
//!
//! * Where is this port? (travel time for technicians/robots; §3.4's
//!   "racks can be as high as 52U … at head height and above".)
//! * Which tray segments does this cable traverse? (Cables sharing a tray
//!   are the ones disturbed by pulling it — the §1 cascading-failure
//!   mechanism.)
//! * Which ports sit next to this one on the faceplate? (High cabling
//!   density around a port is what makes grasping hard, §3.3.3.)
//!
//! The hall is a grid of `rows × racks_per_row` racks. Each row has an
//! overhead tray running along it, segmented per rack gap; cross-hall
//! spine trays at column 0 join rows. A cable from rack A to rack B rises
//! to the tray, runs along row A to the spine, crosses, and runs along row
//! B — the classic "trunks running beside and above the racks" of §3.2.

use crate::ids::{RackId, TraySegmentId};

/// Rack-grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RackLoc {
    /// Row index (0-based).
    pub row: u32,
    /// Rack index within the row (0-based).
    pub col: u32,
}

/// Which face of the rack a port is reached from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// Cold-aisle side.
    Front,
    /// Hot-aisle side (most network gear cables here).
    Rear,
}

/// Physical location of a port: rack, height, face, faceplate slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortLoc {
    /// The rack holding the device.
    pub rack: RackId,
    /// Rack-unit height of the device (1-based from the floor).
    pub u: u8,
    /// Rack face.
    pub face: Face,
    /// Slot index along the device faceplate (0-based, left to right).
    pub slot: u16,
}

impl PortLoc {
    /// Height of the port above the floor in meters (1U = 44.45 mm).
    pub fn height_m(&self) -> f64 {
        f64::from(self.u) * 0.04445
    }

    /// Whether two ports are *panel neighbors*: same rack, same face, same
    /// U, within `radius` slots. Pulling a cable disturbs its panel
    /// neighbors.
    pub fn is_panel_neighbor(&self, other: &PortLoc, radius: u16) -> bool {
        self.rack == other.rack
            && self.face == other.face
            && self.u == other.u
            && self.slot.abs_diff(other.slot) <= radius
            && self.slot != other.slot
    }
}

/// Hall geometry parameters and tray arithmetic.
#[derive(Debug, Clone)]
pub struct HallLayout {
    /// Number of rack rows.
    pub rows: u32,
    /// Racks per row.
    pub racks_per_row: u32,
    /// Rack width in meters (standard 600 mm).
    pub rack_width_m: f64,
    /// Row-to-row pitch in meters (rack depth + aisle).
    pub row_pitch_m: f64,
    /// Rack height in U (42 standard, up to 52 per §3.4).
    pub rack_height_u: u8,
    /// Vertical rise from gear to the overhead tray, per end, in meters.
    pub tray_rise_m: f64,
}

impl HallLayout {
    /// A standard hall: `rows × racks_per_row` of 42U racks.
    pub fn new(rows: u32, racks_per_row: u32) -> Self {
        HallLayout {
            rows: rows.max(1),
            racks_per_row: racks_per_row.max(1),
            rack_width_m: 0.6,
            row_pitch_m: 2.4,
            rack_height_u: 42,
            tray_rise_m: 2.6,
        }
    }

    /// Total rack count.
    pub fn rack_count(&self) -> usize {
        (self.rows * self.racks_per_row) as usize
    }

    /// Map grid coordinates to a rack id.
    pub fn rack_id(&self, loc: RackLoc) -> RackId {
        debug_assert!(loc.row < self.rows && loc.col < self.racks_per_row);
        RackId(loc.row * self.racks_per_row + loc.col)
    }

    /// Map a rack id back to grid coordinates.
    pub fn rack_loc(&self, id: RackId) -> RackLoc {
        RackLoc {
            row: id.0 / self.racks_per_row,
            col: id.0 % self.racks_per_row,
        }
    }

    /// Floor-plan coordinates of a rack's center, meters.
    pub fn rack_xy(&self, loc: RackLoc) -> (f64, f64) {
        (
            (f64::from(loc.col) + 0.5) * self.rack_width_m,
            (f64::from(loc.row) + 0.5) * self.row_pitch_m,
        )
    }

    /// Aisle walking distance between two racks in meters (Manhattan along
    /// the row then across at the row head — humans and mobile robots
    /// cannot cut through racks).
    pub fn walk_distance_m(&self, a: RackLoc, b: RackLoc) -> f64 {
        if a.row == b.row {
            f64::from(a.col.abs_diff(b.col)) * self.rack_width_m
        } else {
            // Walk to the row head, cross rows, walk back in.
            let out = f64::from(a.col) * self.rack_width_m;
            let cross = f64::from(a.row.abs_diff(b.row)) * self.row_pitch_m;
            let back = f64::from(b.col) * self.rack_width_m;
            out + cross + back
        }
    }

    // --- Tray-segment id arithmetic ------------------------------------
    //
    // Along-row segments: for each row r there are (racks_per_row - 1)
    // segments joining adjacent rack tops; id = r * (racks_per_row-1) + c
    // joins col c to col c+1.
    // Spine segments: (rows - 1) segments at column 0 joining row r to
    // r+1; ids follow all along-row segments.

    fn along_segments_per_row(&self) -> u32 {
        self.racks_per_row.saturating_sub(1)
    }

    /// Total number of tray segments in the hall.
    pub fn tray_segment_count(&self) -> usize {
        (self.rows * self.along_segments_per_row() + (self.rows - 1)) as usize
    }

    fn along_seg(&self, row: u32, col: u32) -> TraySegmentId {
        TraySegmentId(row * self.along_segments_per_row() + col)
    }

    fn spine_seg(&self, row: u32) -> TraySegmentId {
        TraySegmentId(self.rows * self.along_segments_per_row() + row)
    }

    /// Tray route between two racks: the segment list a cable occupies and
    /// its routed length in meters (including the rises at both ends).
    /// Intra-rack cabling uses no tray and gets a short fixed length.
    pub fn route(&self, a: RackLoc, b: RackLoc) -> CableRoute {
        if a == b {
            return CableRoute {
                segments: Vec::new(),
                length_m: 1.5, // in-rack patch slack
            };
        }
        let mut segments = Vec::new();
        let mut length = 2.0 * self.tray_rise_m;
        if a.row == b.row {
            let (lo, hi) = (a.col.min(b.col), a.col.max(b.col));
            for c in lo..hi {
                segments.push(self.along_seg(a.row, c));
            }
            length += f64::from(hi - lo) * self.rack_width_m;
        } else {
            // Along row a to the spine at col 0.
            for c in 0..a.col {
                segments.push(self.along_seg(a.row, c));
            }
            length += f64::from(a.col) * self.rack_width_m;
            // Across the spine.
            let (lo, hi) = (a.row.min(b.row), a.row.max(b.row));
            for r in lo..hi {
                segments.push(self.spine_seg(r));
            }
            length += f64::from(hi - lo) * self.row_pitch_m;
            // Along row b from the spine.
            for c in 0..b.col {
                segments.push(self.along_seg(b.row, c));
            }
            length += f64::from(b.col) * self.rack_width_m;
        }
        CableRoute {
            segments,
            length_m: length + 1.0, // connector service loops
        }
    }
}

/// A routed cable path: tray segments occupied plus total length.
#[derive(Debug, Clone)]
pub struct CableRoute {
    /// Tray segments the cable occupies (empty for intra-rack links).
    pub segments: Vec<TraySegmentId>,
    /// Routed length in meters.
    pub length_m: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hall() -> HallLayout {
        HallLayout::new(4, 10)
    }

    #[test]
    fn rack_id_roundtrip() {
        let h = hall();
        for row in 0..4 {
            for col in 0..10 {
                let loc = RackLoc { row, col };
                assert_eq!(h.rack_loc(h.rack_id(loc)), loc);
            }
        }
        assert_eq!(h.rack_count(), 40);
    }

    #[test]
    fn same_rack_route_is_traysless() {
        let h = hall();
        let loc = RackLoc { row: 1, col: 3 };
        let r = h.route(loc, loc);
        assert!(r.segments.is_empty());
        assert!(r.length_m < 3.0);
    }

    #[test]
    fn same_row_route_uses_along_segments() {
        let h = hall();
        let r = h.route(RackLoc { row: 2, col: 1 }, RackLoc { row: 2, col: 4 });
        assert_eq!(r.segments.len(), 3);
        // 3 racks * 0.6 m + 2 * 2.6 rise + 1.0 slack
        assert!((r.length_m - (1.8 + 5.2 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn cross_row_route_passes_spine() {
        let h = hall();
        let r = h.route(RackLoc { row: 0, col: 2 }, RackLoc { row: 3, col: 1 });
        // 2 along in row 0 + 3 spine + 1 along in row 3
        assert_eq!(r.segments.len(), 6);
        let spine_count = r
            .segments
            .iter()
            .filter(|s| s.0 >= h.rows * (h.racks_per_row - 1))
            .count();
        assert_eq!(spine_count, 3);
    }

    #[test]
    fn route_is_symmetric_in_length() {
        let h = hall();
        let a = RackLoc { row: 0, col: 7 };
        let b = RackLoc { row: 3, col: 2 };
        let ab = h.route(a, b);
        let ba = h.route(b, a);
        assert!((ab.length_m - ba.length_m).abs() < 1e-9);
        // Same multiset of segments.
        let mut s1 = ab.segments.clone();
        let mut s2 = ba.segments.clone();
        s1.sort();
        s2.sort();
        assert_eq!(s1, s2);
    }

    #[test]
    fn segment_ids_unique_and_in_range() {
        let h = hall();
        let count = h.tray_segment_count();
        let mut seen = std::collections::HashSet::new();
        for row in 0..h.rows {
            for col in 0..h.racks_per_row - 1 {
                let s = h.along_seg(row, col);
                assert!((s.0 as usize) < count);
                assert!(seen.insert(s));
            }
        }
        for row in 0..h.rows - 1 {
            let s = h.spine_seg(row);
            assert!((s.0 as usize) < count);
            assert!(seen.insert(s));
        }
        assert_eq!(seen.len(), count);
    }

    #[test]
    fn walk_distance_same_row() {
        let h = hall();
        let d = h.walk_distance_m(RackLoc { row: 1, col: 2 }, RackLoc { row: 1, col: 7 });
        assert!((d - 3.0).abs() < 1e-9);
    }

    #[test]
    fn walk_distance_cross_row_goes_via_row_head() {
        let h = hall();
        let d = h.walk_distance_m(RackLoc { row: 0, col: 5 }, RackLoc { row: 2, col: 5 });
        // 5*0.6 out + 2*2.4 cross + 5*0.6 back
        assert!((d - (3.0 + 4.8 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn panel_neighbors() {
        let a = PortLoc {
            rack: RackId(1),
            u: 40,
            face: Face::Rear,
            slot: 10,
        };
        let near = PortLoc { slot: 12, ..a };
        let far = PortLoc { slot: 14, ..a };
        let other_u = PortLoc { u: 39, ..a };
        assert!(a.is_panel_neighbor(&near, 2));
        assert!(!a.is_panel_neighbor(&far, 2));
        assert!(!a.is_panel_neighbor(&other_u, 2));
        assert!(
            !a.is_panel_neighbor(&a, 2),
            "a port is not its own neighbor"
        );
    }

    #[test]
    fn port_height() {
        let p = PortLoc {
            rack: RackId(0),
            u: 42,
            face: Face::Front,
            slot: 0,
        };
        assert!((p.height_m() - 1.8669).abs() < 1e-3);
    }
}
