//! # dcmaint-dcnet — the datacenter-network substrate
//!
//! Everything the maintenance system operates *on*: the paper (§3.1)
//! inventories "server NICs, switches, routers, line cards, (optical)
//! transceivers, and cables (fiber or copper)", and this crate models that
//! inventory with its physical embedding:
//!
//! * [`components`] — transceiver form factors and design families, cable
//!   media (DAC / AEC / AOC / LC / MPO) with separability and core counts,
//!   switch specs, fleet diversity;
//! * [`layout`] — the hall: rack grid, port positions, overhead cable
//!   trays, walking distances;
//! * [`topology`] / [`gen`] — the cabled graph and its generators
//!   (leaf-spine, fat-tree, Jellyfish, Xpander) with tray routing and
//!   disturbance-neighbor precomputation;
//! * [`state`] — live link health (up / degraded / flapping / down) and
//!   administrative state (in-service / draining / drained / maintenance);
//! * [`routing`] — BFS + deterministic ECMP, path diversity, pair
//!   connectivity;
//! * [`flows`] — fluid max-min fair rates and the loss → tail-latency
//!   model behind the flapping-link experiments.
//!
//! The split between static [`topology::Topology`] and dynamic
//! [`state::NetState`] is deliberate: one built topology is shared by many
//! simulation runs, and everything mutable is in one small, cloneable
//! struct.
//!
//! ```
//! use dcmaint_dcnet::{gen, DiversityProfile, LinkHealth, NetState};
//! use dcmaint_dcnet::routing::{connected, ecmp_path};
//! use dcmaint_des::SimRng;
//!
//! // A 2-spine, 4-leaf Clos with 2 servers per leaf.
//! let topo = gen::leaf_spine(2, 4, 2, 1, DiversityProfile::cloud_typical(), &SimRng::root(7));
//! let mut state = NetState::new(&topo);
//! let servers = topo.servers();
//!
//! // Healthy: any pair routes on a shortest path.
//! let path = ecmp_path(&topo, &state, servers[0], servers[7], 42).unwrap();
//! assert_eq!(path.len(), 4); // srv → leaf → spine → leaf → srv
//!
//! // Fail one uplink: ECMP steers around it.
//! state.set_health(path[1], LinkHealth::Down, 1.0);
//! assert!(connected(&topo, &state, servers[0], servers[7]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod flows;
pub mod gen;
pub mod ids;
pub mod layout;
pub mod routing;
pub mod state;
pub mod topology;

pub use components::{
    Cable, CableMedium, DesignFamily, DiversityProfile, FormFactor, SwitchSpec, Transceiver,
};
pub use ids::{LinkId, NodeId, PortId, RackId, RowId, TraySegmentId};
pub use layout::{CableRoute, Face, HallLayout, PortLoc, RackLoc};
pub use state::{AdminState, LinkHealth, LinkState, NetState};
pub use topology::{Link, Node, NodeKind, Port, Tier, Topology, TopologyBuilder};
