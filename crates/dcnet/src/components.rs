//! Hardware component model: transceivers, cables, switches, NICs.
//!
//! §3.1 of the paper enumerates the physical inventory of a DC network —
//! "server NICs, switches, routers, line cards, (optical) transceivers, and
//! cables (fiber or copper)" — and §3.2/§4 stress two properties that the
//! maintenance system must confront:
//!
//! 1. **Link-length-driven media choice**: short links use DAC copper,
//!    medium links factory-integrated AEC/AOC, long links *separable*
//!    transceiver + fiber. Only separable links can be cleaned; integrated
//!    ones are replace-only. The escalation policy branches on this.
//! 2. **Diversity**: "literally tens of different designs for optical
//!    transceivers" — backend shape, pull-tab, stiffness all vary even
//!    though docking is standardized. Diversity is what makes robotic
//!    vision/grasping hard, so each component carries a *design family*
//!    that feeds the robot vision-model error rate.

use dcmaint_des::Stream;

/// Transceiver form factors seen in large DC fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormFactor {
    /// SFP28 — 25G single lane.
    Sfp28,
    /// QSFP28 — 100G, 4 lanes.
    Qsfp28,
    /// QSFP56 — 200G.
    Qsfp56,
    /// QSFP-DD — 400G, 8 lanes.
    QsfpDd,
    /// OSFP — 400/800G.
    Osfp,
}

impl FormFactor {
    /// Nominal lane count (fiber cores used by an MPO on this transceiver).
    pub fn lanes(self) -> u8 {
        match self {
            FormFactor::Sfp28 => 1,
            FormFactor::Qsfp28 | FormFactor::Qsfp56 => 4,
            FormFactor::QsfpDd | FormFactor::Osfp => 8,
        }
    }

    /// Nominal speed in Gbps.
    pub fn gbps(self) -> u32 {
        match self {
            FormFactor::Sfp28 => 25,
            FormFactor::Qsfp28 => 100,
            FormFactor::Qsfp56 => 200,
            FormFactor::QsfpDd => 400,
            FormFactor::Osfp => 800,
        }
    }

    /// The form factor whose nominal speed matches `gbps` (used when
    /// reconstructing links from a recorded topology); falls back to the
    /// nearest lower tier.
    pub fn from_gbps(gbps: u32) -> FormFactor {
        match gbps {
            0..=25 => FormFactor::Sfp28,
            26..=100 => FormFactor::Qsfp28,
            101..=200 => FormFactor::Qsfp56,
            201..=400 => FormFactor::QsfpDd,
            _ => FormFactor::Osfp,
        }
    }

    /// All form factors, for sweeps.
    pub const ALL: [FormFactor; 5] = [
        FormFactor::Sfp28,
        FormFactor::Qsfp28,
        FormFactor::Qsfp56,
        FormFactor::QsfpDd,
        FormFactor::Osfp,
    ];
}

/// A transceiver *design family*: the backend variation (§4 "hardware
/// redesign and standardization") that robots must visually recognize and
/// grip. Two transceivers of the same form factor but different families
/// need different grasp parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignFamily {
    /// Vendor index (anonymized).
    pub vendor: u8,
    /// Pull-tab style: 0 = rigid tab, 1 = flexible loop, 2 = bail latch.
    pub tab_style: u8,
    /// Whether the MPO end-face is polished at the APC 8° angle (§3.3.3:
    /// "some MPO cables have an 8-degree angle on the end-faces").
    pub angled_endface: bool,
}

impl DesignFamily {
    /// Sample a family from a fleet with `vendor_count` vendors.
    pub fn sample(rng: &mut Stream, vendor_count: u8) -> Self {
        DesignFamily {
            vendor: rng.below(u64::from(vendor_count.max(1))) as u8,
            tab_style: rng.below(3) as u8,
            angled_endface: rng.chance(0.5),
        }
    }
}

/// A pluggable transceiver instance.
#[derive(Debug, Clone)]
pub struct Transceiver {
    /// Mechanical/electrical form factor.
    pub form: FormFactor,
    /// Visual/grasp design family.
    pub family: DesignFamily,
    /// Cumulative reseat count (gold-finger wear is finite).
    pub reseat_count: u32,
}

impl Transceiver {
    /// New transceiver of the given form and family.
    pub fn new(form: FormFactor, family: DesignFamily) -> Self {
        Transceiver {
            form,
            family,
            reseat_count: 0,
        }
    }
}

/// Cable medium, per §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CableMedium {
    /// Direct-attach copper: short, integrated, no optics.
    Dac,
    /// Active electrical cable: integrated transceivers, copper.
    Aec,
    /// Active optical cable: integrated transceivers, fiber.
    Aoc,
    /// Separable duplex fiber with LC connectors (1 core pair).
    FiberLc,
    /// Separable multi-fiber MPO trunk with `cores` fibers.
    FiberMpo {
        /// Number of fiber cores in the trunk (8 for 400G, 16 for 800G…).
        cores: u8,
    },
}

impl CableMedium {
    /// Whether the cable detaches from its transceiver — precondition for
    /// the cleaning repair (§3.2: integrated cables can only be replaced).
    pub fn is_separable(self) -> bool {
        matches!(self, CableMedium::FiberLc | CableMedium::FiberMpo { .. })
    }

    /// Whether the medium is optical (contamination applies) as opposed to
    /// copper (oxidation applies).
    pub fn is_optical(self) -> bool {
        !matches!(self, CableMedium::Dac | CableMedium::Aec)
    }

    /// Number of independently inspectable fiber cores (0 for copper).
    pub fn cores(self) -> u8 {
        match self {
            CableMedium::Dac | CableMedium::Aec => 0,
            CableMedium::FiberLc | CableMedium::Aoc => 2,
            CableMedium::FiberMpo { cores } => cores,
        }
    }

    /// Choose the medium a fleet would deploy for a link of `length_m`
    /// meters at the given form factor, following §3.1: "short links of a
    /// few meters will use … DAC", medium lengths integrated AEC/AOC,
    /// "longer links will use separate optical transceivers and fiber
    /// cables".
    pub fn for_length(length_m: f64, form: FormFactor) -> CableMedium {
        if length_m <= 3.0 {
            CableMedium::Dac
        } else if length_m <= 10.0 {
            // AOC dominates AEC at higher speeds.
            if form.gbps() >= 200 {
                CableMedium::Aoc
            } else {
                CableMedium::Aec
            }
        } else if form.lanes() <= 2 {
            CableMedium::FiberLc
        } else {
            // One core per lane in each direction; 400G → 8-core MPO (§3.2:
            // "an 800 Gbps link will use 8 fibers within a single MPO").
            CableMedium::FiberMpo {
                cores: form.lanes().max(2),
            }
        }
    }
}

/// A cable instance.
#[derive(Debug, Clone)]
pub struct Cable {
    /// Physical medium.
    pub medium: CableMedium,
    /// Routed length in meters (tray path, not Euclidean).
    pub length_m: f64,
}

/// Switch hardware description.
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    /// Port count (radix).
    pub radix: u16,
    /// Ports per line card (replacement granularity for the final
    /// escalation stage).
    pub ports_per_linecard: u16,
    /// Rack units occupied.
    pub height_u: u8,
}

impl SwitchSpec {
    /// A typical 32-port 1U ToR/leaf switch.
    pub fn tor32() -> Self {
        SwitchSpec {
            radix: 32,
            ports_per_linecard: 32,
            height_u: 1,
        }
    }

    /// A typical 64-port 2U spine switch.
    pub fn spine64() -> Self {
        SwitchSpec {
            radix: 64,
            ports_per_linecard: 16,
            height_u: 2,
        }
    }
}

/// Fleet-level component diversity: the number of distinct design families
/// deployed. §4 argues diversity is the main automation obstacle; the robot
/// vision model consumes this index.
#[derive(Debug, Clone, Copy)]
pub struct DiversityProfile {
    /// Number of distinct transceiver vendors in the fleet.
    pub vendor_count: u8,
}

impl DiversityProfile {
    /// A homogeneous fleet (the §4 "hardware redesign" endpoint).
    pub fn standardized() -> Self {
        DiversityProfile { vendor_count: 1 }
    }

    /// A typical large-cloud fleet: "literally tens of different designs".
    pub fn cloud_typical() -> Self {
        DiversityProfile { vendor_count: 12 }
    }

    /// Normalized diversity in `[0, 1]`: 0 = one design, 1 = 24+ designs.
    /// The robot misrecognition probability scales with this.
    pub fn index(&self) -> f64 {
        f64::from(self.vendor_count.saturating_sub(1)).min(23.0) / 23.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    #[test]
    fn form_factor_lanes_and_speed() {
        assert_eq!(FormFactor::QsfpDd.lanes(), 8);
        assert_eq!(FormFactor::Qsfp28.gbps(), 100);
        assert_eq!(FormFactor::Osfp.gbps(), 800);
    }

    #[test]
    fn gbps_roundtrip() {
        for f in FormFactor::ALL {
            assert_eq!(FormFactor::from_gbps(f.gbps()), f);
        }
    }

    #[test]
    fn media_selection_by_length() {
        assert_eq!(
            CableMedium::for_length(2.0, FormFactor::Qsfp28),
            CableMedium::Dac
        );
        assert_eq!(
            CableMedium::for_length(7.0, FormFactor::Qsfp28),
            CableMedium::Aec
        );
        assert_eq!(
            CableMedium::for_length(7.0, FormFactor::QsfpDd),
            CableMedium::Aoc
        );
        assert_eq!(
            CableMedium::for_length(30.0, FormFactor::Sfp28),
            CableMedium::FiberLc
        );
        assert_eq!(
            CableMedium::for_length(30.0, FormFactor::QsfpDd),
            CableMedium::FiberMpo { cores: 8 }
        );
    }

    #[test]
    fn separability_gates_cleaning() {
        assert!(!CableMedium::Dac.is_separable());
        assert!(!CableMedium::Aoc.is_separable());
        assert!(CableMedium::FiberLc.is_separable());
        assert!(CableMedium::FiberMpo { cores: 8 }.is_separable());
    }

    #[test]
    fn optical_vs_copper() {
        assert!(!CableMedium::Dac.is_optical());
        assert!(!CableMedium::Aec.is_optical());
        assert!(CableMedium::Aoc.is_optical());
        assert!(CableMedium::FiberMpo { cores: 16 }.is_optical());
    }

    #[test]
    fn core_counts() {
        assert_eq!(CableMedium::Dac.cores(), 0);
        assert_eq!(CableMedium::FiberLc.cores(), 2);
        assert_eq!(CableMedium::FiberMpo { cores: 12 }.cores(), 12);
    }

    #[test]
    fn diversity_index_bounds() {
        assert_eq!(DiversityProfile::standardized().index(), 0.0);
        let typical = DiversityProfile::cloud_typical().index();
        assert!(typical > 0.3 && typical < 0.7, "index {typical}");
        let max = DiversityProfile { vendor_count: 40 }.index();
        assert_eq!(max, 1.0);
    }

    #[test]
    fn family_sampling_within_vendor_count() {
        let mut rng = SimRng::root(3).stream("fam", 0);
        for _ in 0..200 {
            let f = DesignFamily::sample(&mut rng, 5);
            assert!(f.vendor < 5);
            assert!(f.tab_style < 3);
        }
    }

    #[test]
    fn family_sampling_zero_vendors_clamps() {
        let mut rng = SimRng::root(4).stream("fam", 0);
        let f = DesignFamily::sample(&mut rng, 0);
        assert_eq!(f.vendor, 0);
    }

    #[test]
    fn switch_specs() {
        assert_eq!(SwitchSpec::tor32().radix, 32);
        assert_eq!(SwitchSpec::spine64().ports_per_linecard, 16);
    }
}
