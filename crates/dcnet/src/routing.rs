//! Routing over the live network: BFS shortest paths with ECMP tie-breaks.
//!
//! The experiments need three routing questions answered, all against the
//! *current* [`NetState`] (down/drained links excluded):
//!
//! 1. Is this server pair connected at all? → availability accounting.
//! 2. Which links does a flow between two nodes traverse? → flow model.
//! 3. How much path diversity survives? → drain-impact estimates used by
//!    the control plane before approving maintenance.
//!
//! Path selection is deterministic: among equal-cost next hops, a
//! flow-keyed hash picks one, so identical runs route identically and a
//! single flow never oscillates between paths (which would smear the loss
//! model across the fabric).

use std::collections::VecDeque;

use crate::ids::{LinkId, NodeId};
use crate::state::NetState;
use crate::topology::Topology;

/// BFS distances from `src` over routable links. `u32::MAX` = unreachable.
pub fn distances_from(topo: &Topology, state: &NetState, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.node_count()];
    let mut q = VecDeque::new();
    dist[src.index()] = 0;
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        let d = dist[n.index()];
        for &(m, l) in topo.neighbors(n) {
            if state.link(l).routable() && dist[m.index()] == u32::MAX {
                dist[m.index()] = d + 1;
                q.push_back(m);
            }
        }
    }
    dist
}

/// Whether `a` and `b` are connected over routable links.
pub fn connected(topo: &Topology, state: &NetState, a: NodeId, b: NodeId) -> bool {
    distances_from(topo, state, a)[b.index()] != u32::MAX
}

/// Deterministic ECMP path from `src` to `dst` as a list of links, or
/// `None` if disconnected. Among equal-cost next hops the choice is keyed
/// by `flow_key`, so distinct flows spread across the ECMP fan-out while
/// each flow is stable.
pub fn ecmp_path(
    topo: &Topology,
    state: &NetState,
    src: NodeId,
    dst: NodeId,
    flow_key: u64,
) -> Option<Vec<LinkId>> {
    if src == dst {
        return Some(Vec::new());
    }
    // Distances *to* dst so we can walk downhill from src.
    let dist = distances_from(topo, state, dst);
    if dist[src.index()] == u32::MAX {
        return None;
    }
    let mut path = Vec::with_capacity(dist[src.index()] as usize);
    let mut here = src;
    let mut hop = 0u64;
    while here != dst {
        let d_here = dist[here.index()];
        let mut candidates: Vec<(NodeId, LinkId)> = topo
            .neighbors(here)
            .iter()
            .copied()
            .filter(|&(m, l)| state.link(l).routable() && dist[m.index()] + 1 == d_here)
            .collect();
        debug_assert!(!candidates.is_empty(), "downhill neighbor must exist");
        if candidates.is_empty() {
            return None; // state changed mid-walk; treat as disconnected
        }
        // Stable ECMP choice: hash(flow_key, hop) over the sorted fan-out.
        candidates.sort_unstable_by_key(|&(_, l)| l);
        let h = splitmix(flow_key ^ hop.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let pick = (h % candidates.len() as u64) as usize;
        let (next, link) = candidates[pick];
        path.push(link);
        here = next;
        hop += 1;
    }
    Some(path)
}

/// Number of distinct equal-cost shortest paths from `src` to `dst`
/// (counted by DP over the BFS DAG, capped at `u64::MAX`). Path diversity
/// is what the control plane checks before draining a link.
pub fn ecmp_path_count(topo: &Topology, state: &NetState, src: NodeId, dst: NodeId) -> u64 {
    if src == dst {
        return 1;
    }
    let dist = distances_from(topo, state, src);
    if dist[dst.index()] == u32::MAX {
        return 0;
    }
    // Process nodes in increasing BFS distance.
    let mut order: Vec<NodeId> = topo
        .node_ids()
        .filter(|n| dist[n.index()] != u32::MAX)
        .collect();
    order.sort_unstable_by_key(|n| dist[n.index()]);
    let mut count = vec![0u64; topo.node_count()];
    count[src.index()] = 1;
    for n in order {
        let c = count[n.index()];
        if c == 0 {
            continue;
        }
        let d = dist[n.index()];
        for &(m, l) in topo.neighbors(n) {
            if state.link(l).routable() && dist[m.index()] == d + 1 {
                count[m.index()] = count[m.index()].saturating_add(c);
            }
        }
    }
    count[dst.index()]
}

/// Fraction of the given node pairs that are connected. The fleet-level
/// service-availability proxy used by several experiments.
pub fn pair_connectivity(topo: &Topology, state: &NetState, pairs: &[(NodeId, NodeId)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let ok = pairs
        .iter()
        .filter(|&&(a, b)| connected(topo, state, a, b))
        .count();
    ok as f64 / pairs.len() as f64
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::DiversityProfile;
    use crate::gen::{fat_tree, leaf_spine};
    use crate::state::{AdminState, LinkHealth};
    use dcmaint_des::SimRng;

    fn ls() -> (Topology, NetState) {
        let t = leaf_spine(
            2,
            3,
            2,
            1,
            DiversityProfile::standardized(),
            &SimRng::root(1),
        );
        let s = NetState::new(&t);
        (t, s)
    }

    #[test]
    fn all_pairs_connected_when_healthy() {
        let (t, s) = ls();
        let servers = t.servers();
        for &a in &servers {
            for &b in &servers {
                assert!(connected(&t, &s, a, b));
            }
        }
    }

    #[test]
    fn path_has_expected_length() {
        let (t, s) = ls();
        let servers = t.servers();
        // Different leaves: server → leaf → spine → leaf → server = 4 hops.
        let (a, b) = (servers[0], servers[2]);
        let p = ecmp_path(&t, &s, a, b, 7).unwrap();
        assert_eq!(p.len(), 4);
        // Same leaf: server → leaf → server = 2 hops.
        let p2 = ecmp_path(&t, &s, servers[0], servers[1], 7).unwrap();
        assert_eq!(p2.len(), 2);
    }

    #[test]
    fn path_is_stable_per_flow_key() {
        let (t, s) = ls();
        let servers = t.servers();
        let p1 = ecmp_path(&t, &s, servers[0], servers[4], 99).unwrap();
        let p2 = ecmp_path(&t, &s, servers[0], servers[4], 99).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_flow_keys_spread_over_ecmp() {
        let (t, s) = ls();
        let servers = t.servers();
        let paths: std::collections::HashSet<Vec<LinkId>> = (0..32)
            .map(|k| ecmp_path(&t, &s, servers[0], servers[4], k).unwrap())
            .collect();
        // 2 spines → at least 2 distinct paths should appear over 32 keys.
        assert!(paths.len() >= 2, "only {} distinct paths", paths.len());
    }

    #[test]
    fn down_link_reroutes_or_disconnects() {
        let (t, mut s) = ls();
        let servers = t.servers();
        // Kill the server's access link: the pair must disconnect.
        let access = t.links_of(servers[0])[0];
        s.set_health(access, LinkHealth::Down, 1.0);
        assert!(!connected(&t, &s, servers[0], servers[2]));
        // Other pairs unaffected.
        assert!(connected(&t, &s, servers[2], servers[4]));
    }

    #[test]
    fn spine_failure_survivable_in_leaf_spine() {
        let (t, mut s) = ls();
        // Take down every link of spine 0; leaf-spine with 2 spines
        // remains connected through spine 1.
        let spine = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        for l in t.links_of(spine) {
            s.set_health(l, LinkHealth::Down, 1.0);
        }
        let servers = t.servers();
        assert!(connected(&t, &s, servers[0], servers[4]));
    }

    #[test]
    fn ecmp_count_matches_fabric() {
        let (t, s) = ls();
        let servers = t.servers();
        // Cross-leaf: exactly one path per spine.
        assert_eq!(ecmp_path_count(&t, &s, servers[0], servers[2]), 2);
        // Same node.
        assert_eq!(ecmp_path_count(&t, &s, servers[0], servers[0]), 1);
    }

    #[test]
    fn ecmp_count_fat_tree() {
        let t = fat_tree(4, DiversityProfile::standardized(), &SimRng::root(2));
        let s = NetState::new(&t);
        let servers = t.servers();
        // Cross-pod in k=4 fat-tree: 4 core paths.
        let cross: Vec<_> = servers
            .iter()
            .filter(|&&n| t.node(n).name.starts_with("srv-0-0"))
            .chain(
                servers
                    .iter()
                    .filter(|&&n| t.node(n).name.starts_with("srv-1-0")),
            )
            .copied()
            .collect();
        let count = ecmp_path_count(&t, &s, cross[0], *cross.last().unwrap());
        assert_eq!(count, 4);
    }

    #[test]
    fn drained_links_excluded_from_routing() {
        let (t, mut s) = ls();
        let servers = t.servers();
        let access = t.links_of(servers[0])[0];
        s.set_admin(access, AdminState::Drained);
        assert!(!connected(&t, &s, servers[0], servers[2]));
    }

    #[test]
    fn pair_connectivity_fraction() {
        let (t, mut s) = ls();
        let servers = t.servers();
        let pairs: Vec<_> = (0..servers.len() - 1)
            .map(|i| (servers[i], servers[i + 1]))
            .collect();
        assert_eq!(pair_connectivity(&t, &s, &pairs), 1.0);
        let access = t.links_of(servers[0])[0];
        s.set_health(access, LinkHealth::Down, 1.0);
        let frac = pair_connectivity(&t, &s, &pairs);
        assert!(frac < 1.0 && frac > 0.5);
    }

    #[test]
    fn empty_pairs_is_full_connectivity() {
        let (t, s) = ls();
        assert_eq!(pair_connectivity(&t, &s, &[]), 1.0);
    }
}
