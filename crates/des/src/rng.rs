//! Reproducible randomness with named substreams.
//!
//! A simulation mixes many stochastic processes (failure arrivals, repair
//! outcomes, travel times, …). If they all draw from one RNG, adding a draw
//! in one model perturbs every other model — experiments stop being
//! comparable across code changes. [`SimRng`] therefore derives an
//! independent substream per `(root seed, label, index)` so each process
//! owns its own deterministic sequence:
//!
//! ```
//! use dcmaint_des::SimRng;
//!
//! let root = SimRng::root(42);
//! let mut failures = root.stream("link-failures", 0);
//! let mut repairs = root.stream("repair-outcomes", 0);
//! // Identical construction yields identical sequences:
//! let mut failures2 = SimRng::root(42).stream("link-failures", 0);
//! assert_eq!(failures.next_u64(), failures2.next_u64());
//! // Different labels yield decorrelated sequences:
//! assert_ne!(failures.next_u64(), repairs.next_u64());
//! ```
//!
//! Substream derivation uses an FNV-1a hash of the label folded into a
//! SplitMix64 finalizer — cheap, stable across platforms and rustc versions
//! (unlike `DefaultHasher`, which is explicitly unstable).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Factory for deterministic RNG substreams. Cheap to copy.
#[derive(Debug, Clone, Copy)]
pub struct SimRng {
    seed: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: good avalanche, used to decorrelate derived seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SimRng {
    /// A root from which all substreams are derived. One experiment = one
    /// root seed.
    pub fn root(seed: u64) -> Self {
        SimRng { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the substream named `label` with ordinal `index` (e.g. one
    /// stream per link: `stream("link", link_id)`).
    pub fn stream(&self, label: &str, index: u64) -> Stream {
        let mut s = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        s = splitmix64(s ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // SmallRng seeds from 32 bytes; expand via successive splitmix.
        let mut bytes = [0u8; 32];
        let mut x = s;
        for chunk in bytes.chunks_exact_mut(8) {
            x = splitmix64(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Stream {
            inner: SmallRng::from_seed(bytes),
            label: label.to_owned(),
            index,
            draws: 0,
        }
    }

    /// Derive a child factory, for handing a namespaced root to a subsystem.
    pub fn child(&self, label: &str) -> SimRng {
        SimRng {
            seed: splitmix64(self.seed ^ fnv1a(label.as_bytes())),
        }
    }
}

/// How a freshly reconstructed [`Stream`] is brought to its recorded
/// position (see [`Stream::restore_pos`]).
///
/// A checkpoint pins a stream as `(label, index, draws)`. Getting a new
/// stream *to* `draws` admits three strategies with very different costs:
///
/// * [`StreamRestore::Replay`] — burn `draws` raw generator steps.
///   O(draws): correct everywhere, and the only option when all we have
///   is the serialized position (disk restore).
/// * [`StreamRestore::Adopt`] — clone a live donor stream that is
///   *already at* the target position. O(1): the in-memory fork path,
///   where the parent engine still holds every stream. This is the
///   "cache the counted position at fork time" fix — deep-horizon forks
///   no longer pay linear replay.
/// * [`StreamRestore::Reseed`] — re-derive the stream from a different
///   root at draw 0, discarding the recorded position. O(1): used for
///   twin branches, which deliberately diverge from the parent's noise
///   while staying fully seeded (same branch root → same sequence).
#[derive(Debug, Clone, Copy)]
pub enum StreamRestore<'a> {
    /// Replay the recorded number of raw draws (O(draws)).
    Replay,
    /// Clone this donor, which must match `(label, index)` and already
    /// sit exactly at the target draw count (O(1)).
    Adopt(&'a Stream),
    /// Re-derive `(label, index)` under this root, at draw 0 (O(1)).
    Reseed(&'a SimRng),
}

/// A component-level restore mode: the same three strategies as
/// [`StreamRestore`], but carrying a component-typed donor (`D`, e.g. a
/// tech pool holding several streams) or an owned namespaced reseed
/// root. Components project it per stream via [`RngRestore::stream`].
#[derive(Debug, Clone, Copy)]
pub enum RngRestore<'a, D> {
    /// Replay recorded draw counts (O(draws) per stream).
    Replay,
    /// Adopt each stream from this live donor component (O(1)).
    Adopt(&'a D),
    /// Re-derive each stream fresh under this namespaced root (O(1)).
    Reseed(SimRng),
}

impl<'a, D> RngRestore<'a, D> {
    /// Project the component mode onto one of its streams: `pick`
    /// selects the matching stream out of the donor component.
    pub fn stream<'s>(&'s self, pick: impl FnOnce(&'a D) -> &'s Stream) -> StreamRestore<'s>
    where
        'a: 's,
    {
        match self {
            RngRestore::Replay => StreamRestore::Replay,
            RngRestore::Adopt(donor) => StreamRestore::Adopt(pick(donor)),
            RngRestore::Reseed(root) => StreamRestore::Reseed(root),
        }
    }
}

/// One deterministic random stream. Wraps `SmallRng` and adds the sampling
/// helpers the simulation needs.
///
/// Every helper that touches the generator advances it by *exactly one*
/// step, and the stream counts those steps in [`Stream::draws`]. A
/// stream's position is therefore fully described by the triple
/// `(label, index, draws)` — which is how checkpoints record it: restore
/// reconstructs the stream from `(label, index)` and fast-forwards it by
/// `draws` (see [`Stream::fast_forward_to`]).
#[derive(Debug, Clone)]
pub struct Stream {
    inner: SmallRng,
    label: String,
    index: u64,
    draws: u64,
}

impl Stream {
    /// The label this stream was derived under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The ordinal this stream was derived under.
    pub fn stream_index(&self) -> u64 {
        self.index
    }

    /// Generator steps consumed so far. Together with `(label, index)`
    /// this pins the stream's exact position for checkpointing.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Advance the stream to an absolute position of `target` draws —
    /// the restore half of the checkpoint contract. The stream must not
    /// already be past `target` (a snapshot can only be *ahead of or at*
    /// a freshly reconstructed stream, never behind it).
    ///
    /// # Panics
    /// If `target < self.draws()`.
    pub fn fast_forward_to(&mut self, target: u64) {
        assert!(
            target >= self.draws,
            "stream {:?}[{}] is at draw {} — cannot rewind to {}",
            self.label,
            self.index,
            self.draws,
            target
        );
        while self.draws < target {
            self.inner.next_u64();
            self.draws += 1;
        }
    }

    /// Bring this stream to the recorded position `target` using the
    /// chosen strategy (see [`StreamRestore`] for the cost model).
    ///
    /// # Panics
    /// `Replay` panics if `target < self.draws()` (cannot rewind).
    /// `Adopt` panics if the donor's `(label, index)` differ or the
    /// donor is not exactly at `target` draws — adopting a mispositioned
    /// donor would silently break the restore ≡ continuous contract.
    pub fn restore_pos(&mut self, target: u64, how: StreamRestore<'_>) {
        match how {
            StreamRestore::Replay => self.fast_forward_to(target),
            StreamRestore::Adopt(donor) => {
                assert_eq!(
                    (donor.label.as_str(), donor.index),
                    (self.label.as_str(), self.index),
                    "adopt donor is a different stream"
                );
                assert_eq!(
                    donor.draws, target,
                    "adopt donor for {:?}[{}] sits at draw {} — snapshot says {}",
                    self.label, self.index, donor.draws, target
                );
                *self = donor.clone();
            }
            StreamRestore::Reseed(root) => {
                *self = root.stream(&self.label.clone(), self.index);
            }
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.draws += 1;
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`. Returns `lo` when the range is empty or
    /// non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo || !lo.is_finite() || !hi.is_finite() {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n == 0` returns 0 (without
    /// consuming a draw).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.draws += 1;
            self.inner.gen_range(0..n)
        }
    }

    /// Uniform index into a slice of length `len`. `len == 0` returns 0
    /// (caller must not index with it in that case).
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 || p.is_nan() {
            false
        } else {
            self.uniform() < p
        }
    }

    /// Pick a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Sample an index according to `weights` (non-negative; zero total
    /// falls back to uniform). Used for weighted root-cause selection.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if weights.is_empty() {
            return 0;
        }
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                x -= w;
                if x <= 0.0 {
                    return i;
                }
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_construction_same_sequence() {
        let mut a = SimRng::root(7).stream("x", 3);
        let mut b = SimRng::root(7).stream("x", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let root = SimRng::root(7);
        let a: Vec<u64> = {
            let mut s = root.stream("alpha", 0);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = root.stream("beta", 0);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_decorrelate() {
        let root = SimRng::root(7);
        let mut a = root.stream("link", 0);
        let mut b = root.stream("link", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn child_namespacing() {
        let a = SimRng::root(7).child("faults").stream("x", 0).next_u64();
        let b = SimRng::root(7).child("robots").stream("x", 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = SimRng::root(1).stream("u", 0);
        for _ in 0..1000 {
            let x = s.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut s = SimRng::root(2).stream("u", 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.uniform()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut s = SimRng::root(3).stream("c", 0);
        assert!(s.chance(1.0));
        assert!(s.chance(2.0));
        assert!(!s.chance(0.0));
        assert!(!s.chance(-1.0));
        assert!(!s.chance(f64::NAN));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut s = SimRng::root(4).stream("c", 0);
        let n = 50_000;
        let hits = (0..n).filter(|_| s.chance(0.3)).count();
        let freq = hits as f64 / f64::from(n);
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut s = SimRng::root(5).stream("w", 0);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[s.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_zero_total_uniform() {
        let mut s = SimRng::root(6).stream("w", 0);
        let weights = [0.0, 0.0];
        let mut saw = [false; 2];
        for _ in 0..100 {
            saw[s.weighted_index(&weights)] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut s = SimRng::root(8).stream("sh", 0);
        let mut v: Vec<u32> = (0..50).collect();
        s.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut s = SimRng::root(9).stream("ch", 0);
        let empty: [u8; 0] = [];
        assert!(s.choose(&empty).is_none());
    }

    #[test]
    fn golden_values_pin_cross_platform_stability() {
        // Checkpoints record RNG positions as (label, index, draws) and
        // fast-forward on restore — which is only sound if the underlying
        // generator's exact output sequence never changes. This test pins
        // the first values of a fixed substream. If it ever fails, the
        // vendored `SmallRng` (xoshiro256++) or the substream derivation
        // changed behavior, and every existing snapshot is invalid: bump
        // `dcmaint_ckpt::VERSION` before touching these constants.
        let mut s = SimRng::root(42).stream("golden", 7);
        let got: Vec<u64> = (0..4).map(|_| s.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                4071200674389040522,
                10471641712820285646,
                5603479199768057760,
                12343104976382023101,
            ],
            "SmallRng/substream sequence changed — old checkpoints are invalid"
        );
        // And the derived seed itself (label/FNV/splitmix path).
        assert_eq!(SimRng::root(42).child("golden").seed(), 8134469790158313673);
    }

    #[test]
    fn draws_count_every_generator_step_exactly() {
        let mut s = SimRng::root(11).stream("count", 0);
        assert_eq!(s.draws(), 0);
        s.next_u64();
        s.uniform();
        s.uniform_range(1.0, 2.0);
        s.below(10);
        s.index(5);
        s.chance(0.5);
        assert_eq!(s.draws(), 6);
        // Zero-draw paths consume nothing.
        s.below(0);
        s.chance(0.0);
        s.chance(1.5);
        s.chance(f64::NAN);
        s.uniform_range(3.0, 3.0);
        s.choose::<u8>(&[]);
        s.shuffle(&mut [1u8]);
        assert_eq!(s.draws(), 6);
        // Composite helpers: one draw each…
        s.weighted_index(&[1.0, 2.0]);
        s.choose(&[1, 2, 3]);
        assert_eq!(s.draws(), 8);
        // …and shuffle spends n−1.
        let mut v: Vec<u32> = (0..10).collect();
        s.shuffle(&mut v);
        assert_eq!(s.draws(), 17);
    }

    #[test]
    fn fast_forward_to_reproduces_a_live_stream() {
        let mut live = SimRng::root(99).stream("ff", 3);
        for i in 0..257u64 {
            // Mix helper kinds so the draw accounting is what's tested,
            // not just next_u64 in a row.
            match i % 4 {
                0 => {
                    live.next_u64();
                }
                1 => {
                    live.uniform();
                }
                2 => {
                    live.below(1 + i);
                }
                _ => {
                    live.chance(0.7);
                }
            }
        }
        let pos = live.draws();
        let mut restored = SimRng::root(99).stream("ff", 3);
        restored.fast_forward_to(pos);
        assert_eq!(restored.draws(), pos);
        for _ in 0..32 {
            assert_eq!(restored.next_u64(), live.next_u64());
        }
    }

    #[test]
    fn adopt_restore_is_equivalent_to_replay() {
        // The O(1) fork path must land byte-for-byte where the O(draws)
        // replay path lands. Golden contract for the in-memory fork.
        let mut live = SimRng::root(42).stream("golden", 7);
        for _ in 0..1000 {
            live.uniform();
        }
        let pos = live.draws();

        let mut replayed = SimRng::root(42).stream("golden", 7);
        replayed.restore_pos(pos, StreamRestore::Replay);
        let mut adopted = SimRng::root(42).stream("golden", 7);
        adopted.restore_pos(pos, StreamRestore::Adopt(&live));

        assert_eq!(adopted.draws(), pos);
        for _ in 0..64 {
            let want = replayed.next_u64();
            assert_eq!(adopted.next_u64(), want);
            assert_eq!(live.next_u64(), want);
        }
    }

    #[test]
    fn adopt_restore_golden_values() {
        // Pin the adopted sequence against the same golden table the
        // replay path pins, at an absolute position: draws 0..4 consumed
        // by the donor, adoption resumes at the 3rd golden value.
        let mut donor = SimRng::root(42).stream("golden", 7);
        donor.next_u64();
        donor.next_u64();
        let mut s = SimRng::root(42).stream("golden", 7);
        s.restore_pos(2, StreamRestore::Adopt(&donor));
        assert_eq!(s.next_u64(), 5603479199768057760);
        assert_eq!(s.next_u64(), 12343104976382023101);
    }

    #[test]
    #[should_panic(expected = "different stream")]
    fn adopt_refuses_foreign_donor() {
        let donor = SimRng::root(42).stream("other", 7);
        let mut s = SimRng::root(42).stream("golden", 7);
        s.restore_pos(0, StreamRestore::Adopt(&donor));
    }

    #[test]
    #[should_panic(expected = "sits at draw")]
    fn adopt_refuses_mispositioned_donor() {
        let mut donor = SimRng::root(42).stream("golden", 7);
        donor.next_u64();
        let mut s = SimRng::root(42).stream("golden", 7);
        s.restore_pos(3, StreamRestore::Adopt(&donor));
    }

    #[test]
    fn reseed_restore_rederives_under_new_root() {
        let mut s = SimRng::root(42).stream("golden", 7);
        for _ in 0..17 {
            s.next_u64();
        }
        let branch_root = SimRng::root(42).child("twin").child("3");
        s.restore_pos(17, StreamRestore::Reseed(&branch_root));
        // Position resets: reseeded streams start their own sequence.
        assert_eq!(s.draws(), 0);
        assert_eq!(s.label(), "golden");
        assert_eq!(s.stream_index(), 7);
        let mut want = branch_root.stream("golden", 7);
        for _ in 0..32 {
            assert_eq!(s.next_u64(), want.next_u64());
        }
    }

    #[test]
    fn component_mode_projects_per_stream() {
        struct Donor {
            a: Stream,
        }
        let mut donor = Donor {
            a: SimRng::root(5).stream("a", 0),
        };
        donor.a.next_u64();
        let how: RngRestore<'_, Donor> = RngRestore::Adopt(&donor);
        let mut s = SimRng::root(5).stream("a", 0);
        s.restore_pos(1, how.stream(|d| &d.a));
        assert_eq!(s.draws(), 1);

        let reseed: RngRestore<'_, Donor> = RngRestore::Reseed(SimRng::root(6));
        s.restore_pos(1, reseed.stream(|d| &d.a));
        assert_eq!(s.draws(), 0);
        let mut want = SimRng::root(6).stream("a", 0);
        assert_eq!(s.next_u64(), want.next_u64());

        let replay: RngRestore<'_, Donor> = RngRestore::Replay;
        let mut r = SimRng::root(5).stream("a", 0);
        r.restore_pos(1, replay.stream(|d| &d.a));
        assert_eq!(r.draws(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn fast_forward_refuses_to_rewind() {
        let mut s = SimRng::root(1).stream("x", 0);
        s.next_u64();
        s.next_u64();
        s.fast_forward_to(1);
    }

    #[test]
    fn uniform_range_degenerate() {
        let mut s = SimRng::root(10).stream("r", 0);
        assert_eq!(s.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(s.uniform_range(5.0, 4.0), 5.0);
        let x = s.uniform_range(2.0, 4.0);
        assert!((2.0..4.0).contains(&x));
    }
}
