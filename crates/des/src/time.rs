//! Simulated time.
//!
//! The kernel keeps time as an integer count of **microseconds** since the
//! start of the simulation. Microsecond resolution is fine enough to order
//! network telemetry events and coarse enough that a `u64` covers ~584,000
//! years of simulated time — no overflow handling is needed anywhere else.
//!
//! Two types are provided, mirroring `std::time`:
//!
//! * [`SimTime`] — an instant (point on the simulation clock),
//! * [`SimDuration`] — a span between two instants.
//!
//! Both are `Copy`, totally ordered, and implement the arithmetic that makes
//! sense (`SimTime + SimDuration = SimTime`, `SimTime - SimTime =
//! SimDuration`, durations add/scale). Arithmetic is saturating rather than
//! panicking: a scheduler fed a corrupted delay should clamp, not abort a
//! multi-hour experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const MICROS_PER_MILLI: u64 = 1_000;
const MICROS_PER_SEC: u64 = 1_000_000;
const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

/// An instant on the simulation clock, in microseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled at or after this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microsecond count since time zero.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours since time zero, as a float (for reporting only).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Days since time zero, as a float (for reporting only).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_DAY as f64
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier` is
    /// actually later (callers comparing out-of-order telemetry rely on
    /// this).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time-of-day offset within a 24-hour simulated day. Used by diurnal
    /// models (utilization curves, technician shifts).
    pub fn time_of_day(self) -> SimDuration {
        SimDuration(self.0 % MICROS_PER_DAY)
    }

    /// Whole simulated days elapsed since time zero.
    pub fn day_index(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MICROS_PER_MIN)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * MICROS_PER_HOUR)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MICROS_PER_DAY)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to
    /// [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = s * MICROS_PER_SEC as f64;
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us as u64)
        }
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span in minutes, as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MIN as f64
    }

    /// Span in hours, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Span in days, as a float.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_DAY as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a float factor, clamping at the representable range.
    /// Negative / NaN factors clamp to zero.
    pub fn mul_f64(self, k: f64) -> Self {
        if !k.is_finite() || k <= 0.0 {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v as u64)
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

fn fmt_micros(us: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if us >= MICROS_PER_DAY {
        write!(f, "{:.2}d", us as f64 / MICROS_PER_DAY as f64)
    } else if us >= MICROS_PER_HOUR {
        write!(f, "{:.2}h", us as f64 / MICROS_PER_HOUR as f64)
    } else if us >= MICROS_PER_MIN {
        write!(f, "{:.2}m", us as f64 / MICROS_PER_MIN as f64)
    } else if us >= MICROS_PER_SEC {
        write!(f, "{:.2}s", us as f64 / MICROS_PER_SEC as f64)
    } else if us >= MICROS_PER_MILLI {
        write!(f, "{:.2}ms", us as f64 / MICROS_PER_MILLI as f64)
    } else {
        write!(f, "{us}us")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_micros(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_micros(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        let t = SimTime::from_micros(10) + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_010);
    }

    #[test]
    fn instant_difference_is_duration() {
        let a = SimTime::from_micros(500);
        let b = SimTime::from_micros(1_700);
        assert_eq!(b - a, SimDuration::from_micros(1_200));
        // Reverse order saturates.
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn time_of_day_wraps() {
        let t = SimTime::ZERO + SimDuration::from_days(3) + SimDuration::from_hours(5);
        assert_eq!(t.time_of_day(), SimDuration::from_hours(5));
        assert_eq!(t.day_index(), 3);
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_picks_human_unit() {
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.50m");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_days(2).to_string(), "2.00d");
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "t+1.50s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
