//! Sampling distributions used by the failure, repair, and mobility models.
//!
//! Implemented in-house via inverse-transform / standard algorithms rather
//! than pulling in `rand_distr`: the set we need is small, the
//! implementations are a few lines each, and owning them guarantees the
//! sampled sequences are stable across dependency upgrades (experiment
//! reproducibility outlives `Cargo.lock`).
//!
//! All samplers take a [`Stream`] and return `f64` values; durations are
//! obtained through [`Dist::sample_duration`]. Parameters are validated at
//! construction via [`Dist::validated`] for code paths that take
//! user-supplied config.

use crate::rng::Stream;
use crate::time::SimDuration;

/// A parameterized distribution over non-negative reals.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant parameter names are standard notation
pub enum Dist {
    /// Always `value`. Useful for pinning timings in tests.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean (= 1/rate). The memoryless workhorse
    /// for failure inter-arrival times.
    Exp { mean: f64 },
    /// Weibull with scale λ and shape k. `k > 1` models wear-out (aging
    /// transceivers), `k < 1` infant mortality.
    Weibull { scale: f64, shape: f64 },
    /// Log-normal parameterized by the *median* and σ of the underlying
    /// normal. Human task durations (repairs, travel) are classically
    /// log-normal: most take the typical time, a long tail takes much more.
    LogNormal { median: f64, sigma: f64 },
    /// Pareto (Lomax-free, classic form) with minimum `xm` and tail index
    /// α. Heavy-tailed flow sizes and rare long outages.
    Pareto { xm: f64, alpha: f64 },
    /// Triangular on `[lo, hi]` with mode `mode`. Expert-elicited task
    /// times ("at best 2 min, usually 5, worst 15").
    Triangular { lo: f64, mode: f64, hi: f64 },
}

/// Error returned by [`Dist::validated`] for nonsensical parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError(pub String);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution: {}", self.0)
    }
}
impl std::error::Error for DistError {}

impl Dist {
    /// Validate parameters, returning the distribution unchanged on success.
    pub fn validated(self) -> Result<Self, DistError> {
        let bad = |m: &str| Err(DistError(m.to_string()));
        match self {
            Dist::Constant(v) if !v.is_finite() || v < 0.0 => bad("constant must be finite, >= 0"),
            Dist::Uniform { lo, hi } if lo > hi || lo < 0.0 || !hi.is_finite() => {
                bad("uniform requires 0 <= lo <= hi < inf")
            }
            Dist::Exp { mean } if mean <= 0.0 || mean.is_nan() || mean.is_infinite() => {
                bad("exp mean must be positive, finite")
            }
            Dist::Weibull { scale, shape } if !(scale > 0.0 && shape > 0.0) => {
                bad("weibull scale and shape must be positive")
            }
            Dist::LogNormal { median, sigma } if !(median > 0.0 && sigma >= 0.0) => {
                bad("lognormal median must be positive, sigma >= 0")
            }
            Dist::Pareto { xm, alpha } if !(xm > 0.0 && alpha > 0.0) => {
                bad("pareto xm and alpha must be positive")
            }
            Dist::Triangular { lo, mode, hi } if !(lo <= mode && mode <= hi && lo >= 0.0) => {
                bad("triangular requires 0 <= lo <= mode <= hi")
            }
            other => Ok(other),
        }
    }

    /// Draw one sample. Invalid parameters degrade to 0.0 rather than
    /// panicking (construction-time validation is the real guard).
    pub fn sample(&self, rng: &mut Stream) -> f64 {
        match *self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            Dist::Exp { mean } => {
                if mean <= 0.0 {
                    return 0.0;
                }
                // Inverse transform; 1-u avoids ln(0).
                -mean * (1.0 - rng.uniform()).ln()
            }
            Dist::Weibull { scale, shape } => {
                if scale <= 0.0 || shape <= 0.0 {
                    return 0.0;
                }
                let u = 1.0 - rng.uniform();
                scale * (-u.ln()).powf(1.0 / shape)
            }
            Dist::LogNormal { median, sigma } => {
                if median <= 0.0 {
                    return 0.0;
                }
                let z = standard_normal(rng);
                median * (sigma * z).exp()
            }
            Dist::Pareto { xm, alpha } => {
                if xm <= 0.0 || alpha <= 0.0 {
                    return 0.0;
                }
                let u = 1.0 - rng.uniform();
                xm / u.powf(1.0 / alpha)
            }
            Dist::Triangular { lo, mode, hi } => {
                if !(lo <= mode && mode <= hi) {
                    return lo.max(0.0);
                }
                if hi <= lo {
                    return lo;
                }
                let u = rng.uniform();
                let fc = (mode - lo) / (hi - lo);
                if u < fc {
                    lo + ((hi - lo) * (mode - lo) * u).sqrt()
                } else {
                    hi - ((hi - lo) * (hi - mode) * (1.0 - u)).sqrt()
                }
            }
        }
    }

    /// Draw a sample and interpret it as seconds, producing a duration.
    pub fn sample_duration(&self, rng: &mut Stream) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng))
    }

    /// Analytic mean where closed-form exists (Pareto with α ≤ 1 has none
    /// and returns infinity). Used by provisioning math and sanity tests.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exp { mean } => mean,
            Dist::Weibull { scale, shape } => scale * gamma(1.0 + 1.0 / shape),
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Pareto { xm, alpha } => {
                if alpha > 1.0 {
                    alpha * xm / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Triangular { lo, mode, hi } => (lo + mode + hi) / 3.0,
        }
    }
}

/// Box–Muller transform (basic form; one draw discarded for simplicity —
/// sampling cost is negligible next to event dispatch).
fn standard_normal(rng: &mut Stream) -> f64 {
    let u1 = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
    let u2 = rng.uniform();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lanczos approximation of Γ(x) for x > 0; accurate to ~1e-13, far beyond
/// what the Weibull mean needs.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a / 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn stream() -> Stream {
        SimRng::root(99).stream("dist-tests", 0)
    }

    fn empirical_mean(d: Dist, n: usize) -> f64 {
        let mut s = stream();
        (0..n).map(|_| d.sample(&mut s)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut s = stream();
        let d = Dist::Constant(4.2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut s), 4.2);
        }
    }

    #[test]
    fn exp_mean_matches() {
        let m = empirical_mean(Dist::Exp { mean: 3.0 }, 60_000);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        let d = Dist::Weibull {
            scale: 2.0,
            shape: 1.5,
        };
        let m = empirical_mean(d, 60_000);
        assert!((m - d.mean()).abs() < 0.05, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn weibull_shape_one_is_exponential_mean() {
        let d = Dist::Weibull {
            scale: 5.0,
            shape: 1.0,
        };
        assert!((d.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_median_matches() {
        let d = Dist::LogNormal {
            median: 10.0,
            sigma: 0.8,
        };
        let mut s = stream();
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut s)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[10_000];
        assert!((med - 10.0).abs() < 0.5, "median {med}");
    }

    #[test]
    fn lognormal_is_right_skewed() {
        let d = Dist::LogNormal {
            median: 10.0,
            sigma: 1.0,
        };
        let m = empirical_mean(d, 60_000);
        assert!(m > 12.0, "mean {m} should exceed median for sigma=1");
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Dist::Pareto {
            xm: 2.0,
            alpha: 2.5,
        };
        let mut s = stream();
        for _ in 0..5_000 {
            assert!(d.sample(&mut s) >= 2.0);
        }
    }

    #[test]
    fn pareto_mean_infinite_for_small_alpha() {
        let d = Dist::Pareto {
            xm: 1.0,
            alpha: 0.9,
        };
        assert!(d.mean().is_infinite());
    }

    #[test]
    fn triangular_bounded_and_mean() {
        let d = Dist::Triangular {
            lo: 1.0,
            mode: 2.0,
            hi: 6.0,
        };
        let mut s = stream();
        for _ in 0..5_000 {
            let x = d.sample(&mut s);
            assert!((1.0..=6.0).contains(&x));
        }
        let m = empirical_mean(d, 60_000);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn uniform_bounds() {
        let d = Dist::Uniform { lo: 3.0, hi: 7.0 };
        let mut s = stream();
        for _ in 0..2_000 {
            let x = d.sample(&mut s);
            assert!((3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(Dist::Exp { mean: 0.0 }.validated().is_err());
        assert!(Dist::Exp { mean: -1.0 }.validated().is_err());
        assert!(Dist::Weibull {
            scale: 1.0,
            shape: 0.0
        }
        .validated()
        .is_err());
        assert!(Dist::Uniform { lo: 5.0, hi: 2.0 }.validated().is_err());
        assert!(Dist::Triangular {
            lo: 1.0,
            mode: 0.5,
            hi: 2.0
        }
        .validated()
        .is_err());
        assert!(Dist::Constant(f64::NAN).validated().is_err());
        assert!(Dist::Exp { mean: 2.0 }.validated().is_ok());
    }

    #[test]
    fn sample_duration_is_seconds() {
        let mut s = stream();
        let d = Dist::Constant(2.5).sample_duration(&mut s);
        assert_eq!(d, SimDuration::from_millis(2500));
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }
}
