//! # dcmaint-des — deterministic discrete-event simulation kernel
//!
//! The foundation every other `dcmaint` crate builds on. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time,
//! * [`Scheduler`] — a deterministic timestamped event queue (FIFO within a
//!   timestamp, O(1) lazy cancellation, optional horizon),
//! * [`SimRng`] / [`Stream`] — reproducible named RNG substreams so each
//!   stochastic process owns an independent sequence,
//! * [`Dist`] — the sampling distributions (exponential, Weibull,
//!   log-normal, Pareto, triangular, …) used by failure and repair models.
//!
//! ## Why not an async runtime?
//!
//! The networking guides this project follows favour explicit, poll-driven
//! designs with no hidden clocks (the smoltcp idiom). A simulation must be
//! bit-reproducible: same seed, same event order, same report. A
//! work-stealing executor schedules tasks nondeterministically; a binary
//! heap with a sequence-number tiebreaker does not. All "concurrency" in the
//! simulated datacenter (robots moving while links flap while technicians
//! drive) is expressed as interleaved events on one logical timeline.
//!
//! ## Shape of a model
//!
//! A model defines a single event enum and runs the loop itself:
//!
//! ```
//! use dcmaint_des::{Dist, Scheduler, SimDuration, SimRng};
//!
//! enum Ev { Fail(u32), Repair(u32) }
//!
//! let rng = SimRng::root(1);
//! let mut arrivals = rng.stream("arrivals", 0);
//! let mut sched = Scheduler::with_horizon(
//!     dcmaint_des::SimTime::ZERO + SimDuration::from_hours(24),
//! );
//! let mtbf = Dist::Exp { mean: 3600.0 };
//! sched.schedule_in(mtbf.sample_duration(&mut arrivals), Ev::Fail(0));
//!
//! let mut failures = 0;
//! while let Some(fired) = sched.pop() {
//!     match fired.payload {
//!         Ev::Fail(link) => {
//!             failures += 1;
//!             sched.schedule_in(SimDuration::from_mins(5), Ev::Repair(link));
//!             sched.schedule_in(mtbf.sample_duration(&mut arrivals), Ev::Fail(link));
//!         }
//!         Ev::Repair(_) => {}
//!     }
//! }
//! assert!(failures > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod rng;
mod sched;
mod time;

pub use dist::{Dist, DistError};
pub use rng::{RngRestore, SimRng, Stream, StreamRestore};
pub use sched::{EventKey, Fired, SchedProf, SchedStats, Scheduler};
pub use time::{SimDuration, SimTime};
