//! The event scheduler: a deterministic priority queue of timestamped events.
//!
//! Design follows the event-driven/poll style of embedded network stacks:
//! the kernel owns *when* things happen, the model owns *what* happens. The
//! model defines one event type `E` (typically an enum covering the whole
//! simulation) and drives a plain loop:
//!
//! ```
//! use dcmaint_des::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32), Stop }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_in(SimDuration::from_secs(1), Ev::Ping(1));
//! sched.schedule_in(SimDuration::from_secs(3), Ev::Stop);
//! sched.schedule_in(SimDuration::from_secs(2), Ev::Ping(2));
//!
//! let mut seen = Vec::new();
//! while let Some(ev) = sched.pop() {
//!     match ev.payload {
//!         Ev::Ping(n) => seen.push(n),
//!         Ev::Stop => break,
//!     }
//! }
//! assert_eq!(seen, vec![1, 2]);
//! assert_eq!(sched.now(), SimTime::ZERO + SimDuration::from_secs(3));
//! ```
//!
//! Determinism: events at the same instant are delivered in the order they
//! were scheduled (FIFO within a timestamp), enforced by a monotonically
//! increasing sequence number used as a tiebreaker. Two runs that schedule
//! identical (time, payload) sequences observe identical delivery orders.
//!
//! Cancellation: [`Scheduler::schedule`] returns an [`EventKey`]; a canceled
//! key is skipped at pop time (lazy deletion), which keeps cancel O(1).

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::{SimDuration, SimTime};

/// Handle identifying a scheduled event, usable to cancel it before firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

/// An event delivered by [`Scheduler::pop`]: the payload plus the instant it
/// fired (which is also the scheduler's new `now`).
#[derive(Debug)]
pub struct Fired<E> {
    /// Instant at which the event fired.
    pub at: SimTime,
    /// Model-defined payload.
    pub payload: E,
    /// The key the event was scheduled under.
    pub key: EventKey,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and invert
        // the sequence comparison so equal timestamps pop FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A point-in-time snapshot of scheduler state, for observability hooks:
/// the clock plus queue depth and delivery count, readable in O(1) without
/// disturbing the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Current simulation instant.
    pub now: SimTime,
    /// Events delivered so far.
    pub delivered: u64,
    /// Events still queued (including lazily-canceled ones).
    pub pending: usize,
}

/// Lifetime profile counters for one scheduler: how much work the queue
/// did, independent of what remains in it. All counts are driven purely
/// by the (deterministic) event sequence, so they are byte-identical
/// across same-seed runs — the engine self-profiler surfaces them as
/// `prof/sched/…` registry counters. Updating them is a handful of
/// integer ops per call, cheap enough to stay always-on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedProf {
    /// `schedule` calls accepted into the queue.
    pub scheduled: u64,
    /// `schedule` calls dropped for lying beyond the horizon.
    pub dropped_horizon: u64,
    /// Successful `cancel` calls (fresh tombstones).
    pub canceled: u64,
    /// Tombstone compaction passes actually run.
    pub compactions: u64,
    /// Queue-depth high-water mark (entries physically in the heap).
    pub max_pending: u64,
}

/// Deterministic discrete-event scheduler. See the crate docs for the
/// event-loop pattern.
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    canceled: BTreeSet<u64>,
    /// Tombstones believed to sit in the heap. Exact for cancels of
    /// genuinely pending events; a cancel of an already-fired key
    /// overcounts until the next compaction recomputes the truth.
    tombstones: usize,
    delivered: u64,
    horizon: SimTime,
    prof: SchedProf,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// New scheduler at time zero with no horizon.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            canceled: BTreeSet::new(),
            tombstones: 0,
            delivered: 0,
            horizon: SimTime::MAX,
            prof: SchedProf::default(),
        }
    }

    /// New scheduler that silently drops events scheduled after `horizon`
    /// and stops popping once `now` would pass it. This bounds experiment
    /// runtime without every model having to check the clock.
    pub fn with_horizon(horizon: SimTime) -> Self {
        let mut s = Self::new();
        s.horizon = horizon;
        s
    }

    /// The current simulation instant: the timestamp of the last event
    /// popped (time zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon ([`SimTime::MAX`] when unbounded).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending (including lazily-canceled ones).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Alias for [`Scheduler::pending`]: queue length including
    /// tombstones — what the heap physically holds.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of events that will actually fire: the queue length minus
    /// known tombstones. Exact whenever cancels targeted genuinely
    /// pending events (canceling an already-fired key overcounts the
    /// tombstone estimate until the next compaction corrects it).
    pub fn live_len(&self) -> usize {
        self.heap.len().saturating_sub(self.tombstones)
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Snapshot clock, delivery count, and queue depth in one call —
    /// the hook the observability plane stamps journal lines with.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            now: self.now,
            delivered: self.delivered,
            pending: self.heap.len(),
        }
    }

    /// Schedule `payload` at absolute instant `at`. Scheduling in the past
    /// clamps to `now` (delivered next, after already-queued events at
    /// `now`). Events beyond the horizon are dropped and a dead key is
    /// returned.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventKey {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        if at > self.horizon {
            // Dead key: never inserted, can never fire; cancel is a no-op.
            self.prof.dropped_horizon += 1;
            return EventKey(seq);
        }
        self.heap.push(Entry { at, seq, payload });
        self.prof.scheduled += 1;
        self.prof.max_pending = self.prof.max_pending.max(self.heap.len() as u64);
        EventKey(seq)
    }

    /// Schedule `payload` after `delay` relative to `now`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventKey {
        self.schedule(self.now + delay, payload)
    }

    /// Schedule `payload` to fire immediately (at `now`, after events
    /// already queued for `now`).
    pub fn schedule_now(&mut self, payload: E) -> EventKey {
        self.schedule(self.now, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event had
    /// not yet fired or been canceled. Amortized O(1); removal happens
    /// lazily on pop, with a compaction pass once tombstones exceed half
    /// the heap (so canceled events never dominate memory — or a
    /// checkpoint's serialized queue).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.seq {
            return false;
        }
        let fresh = self.canceled.insert(key.0);
        if fresh {
            self.tombstones += 1;
            self.prof.canceled += 1;
            self.maybe_compact();
        }
        fresh
    }

    /// Rebuild the heap without tombstoned entries once they exceed half
    /// of it. Only keys actually found in the heap leave the canceled
    /// set: a key canceled *after* firing stays recorded, preserving the
    /// double-cancel contract (`cancel` returns `false` the second time).
    fn maybe_compact(&mut self) {
        if self.tombstones * 2 <= self.heap.len() {
            return;
        }
        self.prof.compactions += 1;
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut live = Vec::with_capacity(entries.len());
        for e in entries {
            if !self.canceled.remove(&e.seq) {
                live.push(e);
            }
        }
        self.heap = BinaryHeap::from(live);
        // Whatever remains in `canceled` refers to already-fired keys —
        // not tombstones in the heap.
        self.tombstones = 0;
    }

    /// Timestamp of the next event that will fire, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_canceled();
        self.heap.peek().map(|e| e.at)
    }

    /// The next event that *will* fire — `(timestamp, &payload)` —
    /// without popping it or advancing the clock. Skips tombstones and
    /// respects the horizon exactly like [`Scheduler::pop`], so a
    /// non-`None` peek is a promise about the next pop. This is the
    /// hook decision-point planners use to inspect the upcoming event
    /// before the engine commits to it.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        self.skip_canceled();
        match self.heap.peek() {
            Some(e) if e.at <= self.horizon => Some((e.at, &e.payload)),
            _ => None,
        }
    }

    /// Pop the next event, advancing `now` to its timestamp. Returns `None`
    /// when the queue is empty or the next event lies beyond the horizon (in
    /// which case `now` advances to the horizon).
    pub fn pop(&mut self) -> Option<Fired<E>> {
        self.skip_canceled();
        match self.heap.peek() {
            None => {
                // Queue drained: the simulation has run to the end of time.
                if self.horizon != SimTime::MAX {
                    self.now = self.horizon;
                }
                None
            }
            Some(e) if e.at > self.horizon => {
                self.now = self.horizon;
                None
            }
            Some(_) => {
                let e = self.heap.pop().expect("peeked entry present");
                self.now = e.at;
                self.delivered += 1;
                Some(Fired {
                    at: e.at,
                    payload: e.payload,
                    key: EventKey(e.seq),
                })
            }
        }
    }

    fn skip_canceled(&mut self) {
        while let Some(e) = self.heap.peek() {
            if self.canceled.remove(&e.seq) {
                self.heap.pop();
                self.tombstones = self.tombstones.saturating_sub(1);
            } else {
                break;
            }
        }
    }

    /// The lifetime profile counters (see [`SchedProf`]).
    pub fn prof(&self) -> SchedProf {
        self.prof
    }

    /// Overwrite the profile counters — used by checkpoint restore so a
    /// resumed scheduler reports the same lifetime totals a continuous
    /// run would. Separate from [`Scheduler::restore`] to keep that
    /// signature (and older snapshots' decode paths) stable.
    pub fn set_prof(&mut self, prof: SchedProf) {
        self.prof = prof;
    }

    // ----- checkpoint support ----------------------------------------

    /// Export the pending queue in canonical `(at, seq)` order, each
    /// entry as `(at, seq, &payload)`. Tombstoned entries are included —
    /// a snapshot must reproduce the queue *exactly* so a restored run
    /// compacts at the same instants a continuous one does. The sort
    /// makes the serialization canonical: two schedulers holding the
    /// same logical queue export identical sequences regardless of heap
    /// layout history.
    pub fn export_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut v: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .map(|e| (e.at, e.seq, &e.payload))
            .collect();
        v.sort_by_key(|&(at, seq, _)| (at, seq));
        v
    }

    /// Export the tombstone set (canceled keys not yet lazily removed,
    /// plus keys canceled after firing).
    pub fn export_canceled(&self) -> Vec<u64> {
        self.canceled.iter().copied().collect()
    }

    /// The next sequence number to be assigned (exported so a restored
    /// scheduler hands out the same keys a continuous one would).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Rebuild a scheduler from exported state. `entries` are `(at, seq,
    /// payload)` triples in the canonical order [`Scheduler::export_entries`]
    /// produces; `canceled` is the exported tombstone set. The tombstone
    /// count is recomputed exactly (every canceled key matched against
    /// the entries), so compaction behavior after restore is identical
    /// to the continuous run's.
    pub fn restore(
        now: SimTime,
        seq: u64,
        delivered: u64,
        horizon: SimTime,
        entries: Vec<(SimTime, u64, E)>,
        canceled: Vec<u64>,
    ) -> Self {
        let canceled: BTreeSet<u64> = canceled.into_iter().collect();
        let tombstones = entries
            .iter()
            .filter(|(_, s, _)| canceled.contains(s))
            .count();
        let heap = BinaryHeap::from(
            entries
                .into_iter()
                .map(|(at, seq, payload)| Entry { at, seq, payload })
                .collect::<Vec<_>>(),
        );
        Scheduler {
            heap,
            now,
            seq,
            canceled,
            tombstones,
            delivered,
            horizon,
            // Lifetime counters are not part of this signature; callers
            // that persist them reinstate via `set_prof`.
            prof: SchedProf::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_micros(30), "c");
        s.schedule(SimTime::from_micros(10), "a");
        s.schedule(SimTime::from_micros(20), "b");
        let got: Vec<_> = std::iter::from_fn(|| s.pop().map(|f| f.payload)).collect();
        assert_eq!(got, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_micros(5), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| s.pop().map(|f| f.payload)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_micros(42), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_micros(42));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_micros(100), "first");
        s.pop();
        s.schedule(SimTime::from_micros(5), "late");
        let f = s.pop().unwrap();
        assert_eq!(f.at, SimTime::from_micros(100));
        assert_eq!(f.payload, "late");
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s = Scheduler::new();
        let k1 = s.schedule(SimTime::from_micros(10), 1);
        let _k2 = s.schedule(SimTime::from_micros(20), 2);
        assert!(s.cancel(k1));
        assert!(!s.cancel(k1), "double-cancel reports false");
        let got: Vec<_> = std::iter::from_fn(|| s.pop().map(|f| f.payload)).collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut s = Scheduler::new();
        let k = s.schedule(SimTime::from_micros(1), ());
        s.pop();
        // Firing consumed the entry; cancel of a fired key inserts into the
        // tombstone set but can never suppress anything. It still returns
        // true (the key was valid); a later identical key is impossible
        // because seq is unique.
        assert!(s.cancel(k));
        assert!(s.pop().is_none());
    }

    #[test]
    fn horizon_stops_delivery_and_advances_clock() {
        let mut s = Scheduler::with_horizon(SimTime::from_micros(100));
        s.schedule(SimTime::from_micros(50), "in");
        s.schedule(SimTime::from_micros(150), "out");
        assert_eq!(s.pop().unwrap().payload, "in");
        assert!(s.pop().is_none());
        assert_eq!(s.now(), SimTime::from_micros(100));
    }

    #[test]
    fn beyond_horizon_schedule_is_dropped() {
        let mut s = Scheduler::with_horizon(SimTime::from_micros(10));
        s.schedule(SimTime::from_micros(11), ());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn peek_time_skips_canceled() {
        let mut s = Scheduler::new();
        let k = s.schedule(SimTime::from_micros(5), 1);
        s.schedule(SimTime::from_micros(9), 2);
        s.cancel(k);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn delivered_counter() {
        let mut s = Scheduler::new();
        for i in 0..5u32 {
            s.schedule(SimTime::from_micros(u64::from(i)), i);
        }
        while s.pop().is_some() {}
        assert_eq!(s.delivered(), 5);
    }

    #[test]
    fn stats_snapshot_tracks_clock_and_queue() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_micros(10), ());
        s.schedule(SimTime::from_micros(20), ());
        assert_eq!(
            s.stats(),
            SchedStats {
                now: SimTime::ZERO,
                delivered: 0,
                pending: 2
            }
        );
        s.pop();
        let st = s.stats();
        assert_eq!(st.now, SimTime::from_micros(10));
        assert_eq!(st.delivered, 1);
        assert_eq!(st.pending, 1);
    }

    #[test]
    fn tombstone_compaction_bounds_the_heap() {
        // Schedule N events, cancel most of them: the heap must shed the
        // tombstones instead of carrying them to the end of the run.
        let mut s = Scheduler::new();
        let keys: Vec<EventKey> = (0..100u64)
            .map(|i| s.schedule(SimTime::from_micros(1000 + i), i))
            .collect();
        assert_eq!(s.len(), 100);
        assert_eq!(s.live_len(), 100);
        for k in &keys[..80] {
            assert!(s.cancel(*k));
        }
        // Compaction keeps the physical queue within 2× the live count:
        // tombstones never outnumber live entries.
        assert_eq!(s.live_len(), 20);
        assert!(
            s.len() <= 2 * s.live_len(),
            "heap {} > 2× live {} — tombstones not compacted",
            s.len(),
            s.live_len()
        );
        // Delivery is unaffected: exactly the uncanceled payloads, in order.
        let got: Vec<_> = std::iter::from_fn(|| s.pop().map(|f| f.payload)).collect();
        assert_eq!(got, (80..100).collect::<Vec<_>>());
    }

    #[test]
    fn compaction_preserves_cancel_semantics() {
        let mut s = Scheduler::new();
        let fired = s.schedule(SimTime::from_micros(1), "f");
        s.pop();
        // Cancel of a fired key still reports true once, false after —
        // even though the compaction right after it runs on an empty heap.
        assert!(s.cancel(fired));
        assert!(!s.cancel(fired));
        // And live cancels still dedupe across a compaction boundary.
        let a = s.schedule(SimTime::from_micros(10), "a");
        let _b = s.schedule(SimTime::from_micros(20), "b");
        assert!(s.cancel(a));
        assert!(!s.cancel(a));
        assert_eq!(s.live_len(), 1);
    }

    #[test]
    fn export_restore_round_trip_preserves_delivery() {
        let mut s = Scheduler::with_horizon(SimTime::from_micros(10_000));
        for i in 0..20u64 {
            s.schedule(SimTime::from_micros(100 + 7 * i), i);
        }
        let k = s.schedule(SimTime::from_micros(150), 99);
        s.cancel(k);
        // Advance partway.
        for _ in 0..5 {
            s.pop();
        }
        // Snapshot.
        let entries: Vec<(SimTime, u64, u64)> = s
            .export_entries()
            .into_iter()
            .map(|(at, seq, p)| (at, seq, *p))
            .collect();
        // Canonical order is sorted (at, seq).
        let mut sorted = entries.clone();
        sorted.sort_by_key(|&(at, seq, _)| (at, seq));
        assert_eq!(entries, sorted);
        let canceled = s.export_canceled();
        let mut restored = Scheduler::restore(
            s.now(),
            s.next_seq(),
            s.delivered(),
            s.horizon(),
            entries,
            canceled,
        );
        // Both deliver identical (time, payload, key) sequences from here.
        loop {
            let a = s.pop();
            let b = restored.pop();
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.payload, x.key), (y.at, y.payload, y.key));
                }
                (x, y) => panic!("length mismatch: {:?} vs {:?}", x.is_some(), y.is_some()),
            }
        }
        assert_eq!(s.now(), restored.now());
        assert_eq!(s.delivered(), restored.delivered());
    }

    #[test]
    fn prof_counters_track_queue_work() {
        let mut s = Scheduler::with_horizon(SimTime::from_micros(1_000));
        assert_eq!(s.prof(), SchedProf::default());
        let keys: Vec<EventKey> = (0..10u64)
            .map(|i| s.schedule(SimTime::from_micros(10 + i), i))
            .collect();
        s.schedule(SimTime::from_micros(2_000), 99); // beyond horizon
        assert!(s.cancel(keys[0]));
        // Before any compaction a double-cancel is not a fresh cancel
        // and must not bump the counter.
        assert!(!s.cancel(keys[0]));
        for k in &keys[1..8] {
            assert!(s.cancel(*k));
        }
        while s.pop().is_some() {}
        let p = s.prof();
        assert_eq!(p.scheduled, 10);
        assert_eq!(p.dropped_horizon, 1);
        assert_eq!(p.canceled, 8);
        assert_eq!(p.max_pending, 10);
        assert!(p.compactions >= 1, "mass cancel must trigger compaction");
        // Restore starts the counters fresh; set_prof reinstates them.
        let mut restored: Scheduler<u64> = Scheduler::restore(
            s.now(),
            s.next_seq(),
            s.delivered(),
            s.horizon(),
            vec![],
            vec![],
        );
        assert_eq!(restored.prof(), SchedProf::default());
        restored.set_prof(p);
        assert_eq!(restored.prof(), p);
    }

    #[test]
    fn schedule_now_fires_after_existing_now_events() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::ZERO, "a");
        s.schedule_now("b");
        let got: Vec<_> = std::iter::from_fn(|| s.pop().map(|f| f.payload)).collect();
        assert_eq!(got, vec!["a", "b"]);
    }
}
