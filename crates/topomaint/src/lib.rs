//! # dcmaint-topomaint — self-maintainability of network topologies
//!
//! §4 of the paper: expander topologies (Jellyfish, Xpander) beat Clos
//! fabrics on paper but are undeployed because "the complexity to
//! manually deploy the complex wiring looms" — and asks "perhaps we can
//! create a metric for self-maintainability of a network design?"
//!
//! This crate is that metric. [`analyze`] measures, over the *same*
//! physical hall model every generator uses:
//!
//! * **wiring complexity** — total/mean cable length, cross-rack
//!   fraction, distinct cable-length SKUs (each SKU is another thing a
//!   robot must recognize and stock);
//! * **tray congestion** — how many cables share each pathway (the §1
//!   cascading-failure surface);
//! * **blast radius** — mean disturbance-neighbor count per link;
//! * **row locality** — fraction of links whose both ends are served by
//!   the same row-scope robot (§3.4's cheapest mobility tier);
//! * **drainability** — fraction of links that can be drained for
//!   maintenance without disconnecting sampled service pairs.
//!
//! These combine into a 0–100 [`MaintainabilityReport::index`]. Scores
//! are comparative — the experiments (E8) rank topologies, they don't
//! interpret absolute values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reconfig;

use std::collections::BTreeSet;

use dcmaint_dcnet::routing::pair_connectivity;
use dcmaint_dcnet::{AdminState, NetState, NodeId, Topology};
use dcmaint_des::{SimRng, Stream};

/// Everything [`analyze`] measures about one topology.
#[derive(Debug, Clone)]
pub struct MaintainabilityReport {
    /// Topology name.
    pub topology: String,
    /// Link count.
    pub links: usize,
    /// Switch count.
    pub switches: usize,
    /// Total routed cable length, meters.
    pub total_cable_m: f64,
    /// Mean routed cable length, meters.
    pub mean_cable_m: f64,
    /// Fraction of links leaving their rack.
    pub cross_rack_frac: f64,
    /// Fraction of links spanning rows (need hall-scope robots or two
    /// coordinated row robots).
    pub cross_row_frac: f64,
    /// Distinct cable-length SKUs (0.5 m granularity).
    pub cable_skus: usize,
    /// Maximum links sharing one tray segment.
    pub max_tray_load: usize,
    /// Mean links per occupied tray segment.
    pub mean_tray_load: f64,
    /// Mean disturbance neighbors per link.
    pub mean_blast_radius: f64,
    /// Fraction of links drainable without disconnecting sampled pairs.
    pub drainable_frac: f64,
    /// Mean cables per cross-rack (rackA, rackB) pair. Structured
    /// fabrics route many cables between the same rack pairs, so they
    /// deploy (and get re-laid by robots) as pre-fabricated trunk
    /// bundles; random topologies route nearly every cable uniquely —
    /// §4's "complex wiring looms".
    pub mean_bundle_size: f64,
    /// Composite self-maintainability index, 0 (nightmare) – 100
    /// (robot-friendly).
    pub index: f64,
}

/// Analyze a topology. `pair_samples` service pairs are sampled
/// deterministically from `rng` for the drainability check.
pub fn analyze(topo: &Topology, pair_samples: usize, rng: &SimRng) -> MaintainabilityReport {
    let links = topo.link_count();
    let mut total_len = 0.0;
    let mut cross_rack = 0usize;
    let mut cross_row = 0usize;
    let mut skus: BTreeSet<u64> = BTreeSet::new();
    let mut blast = 0usize;
    let mut rack_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    for l in topo.link_ids() {
        let link = topo.link(l);
        total_len += link.cable.length_m;
        skus.insert((link.cable.length_m * 2.0).round() as u64);
        let (a, b) = topo.endpoints(l);
        let rka = topo.node(a).rack;
        let rkb = topo.node(b).rack;
        if !link.route.segments.is_empty() {
            cross_rack += 1;
            rack_pairs.insert((rka.0.min(rkb.0), rka.0.max(rkb.0)));
        }
        let ra = topo.layout.rack_loc(rka);
        let rb = topo.layout.rack_loc(rkb);
        if ra.row != rb.row {
            cross_row += 1;
        }
        blast += topo.disturb_neighbors(l).len();
    }
    let mean_bundle_size = if rack_pairs.is_empty() {
        1.0
    } else {
        cross_rack as f64 / rack_pairs.len() as f64
    };
    let mut tray_loads: Vec<usize> = Vec::new();
    for seg in 0..topo.layout.tray_segment_count() {
        let n = topo
            .tray_links(dcmaint_dcnet::TraySegmentId(seg as u32))
            .len();
        if n > 0 {
            tray_loads.push(n);
        }
    }
    let max_tray_load = tray_loads.iter().copied().max().unwrap_or(0);
    let mean_tray_load = if tray_loads.is_empty() {
        0.0
    } else {
        tray_loads.iter().sum::<usize>() as f64 / tray_loads.len() as f64
    };
    let drainable_frac = drainability(topo, pair_samples, &mut rng.stream("topomaint-pairs", 0));
    let linkf = links.max(1) as f64;
    let report = MaintainabilityReport {
        topology: topo.name().to_string(),
        links,
        switches: topo.switches().len(),
        total_cable_m: total_len,
        mean_cable_m: total_len / linkf,
        cross_rack_frac: cross_rack as f64 / linkf,
        cross_row_frac: cross_row as f64 / linkf,
        cable_skus: skus.len(),
        max_tray_load,
        mean_tray_load,
        mean_blast_radius: blast as f64 / linkf,
        drainable_frac,
        mean_bundle_size,
        index: 0.0,
    };
    let index = index_of(&report);
    MaintainabilityReport { index, ..report }
}

/// Fraction of links individually drainable without hurting the sampled
/// pair connectivity.
fn drainability(topo: &Topology, pair_samples: usize, stream: &mut Stream) -> f64 {
    let servers = topo.servers();
    // Random-topology fabrics attach servers per switch; if a topology
    // has no servers, sample switch pairs instead.
    let endpoints: Vec<NodeId> = if servers.len() >= 2 {
        servers
    } else {
        topo.switches()
    };
    if endpoints.len() < 2 || topo.link_count() == 0 {
        return 1.0;
    }
    let mut pairs = Vec::new();
    for _ in 0..pair_samples.max(8) {
        let a = endpoints[stream.index(endpoints.len())];
        let b = endpoints[stream.index(endpoints.len())];
        if a != b {
            pairs.push((a, b));
        }
    }
    let state = NetState::new(topo);
    let before = pair_connectivity(topo, &state, &pairs);
    let mut drainable = 0usize;
    for l in topo.link_ids() {
        let mut trial = state.clone();
        trial.set_admin(l, AdminState::Drained);
        if pair_connectivity(topo, &trial, &pairs) >= before {
            drainable += 1;
        }
    }
    drainable as f64 / topo.link_count() as f64
}

/// The composite index. Each penalty is normalized by a soft scale
/// chosen so a clean leaf-spine lands around 70–85 and a congested
/// random mesh lands visibly lower; weights favour the factors the paper
/// calls out (wiring looms, cascading surfaces).
pub fn index_of(r: &MaintainabilityReport) -> f64 {
    let cable_pen = (r.mean_cable_m / 40.0).min(1.0) * 20.0;
    let tray_pen =
        (r.mean_tray_load / 60.0).min(1.0) * 10.0 + (r.max_tray_load as f64 / 200.0).min(1.0) * 5.0;
    let blast_pen = (r.mean_blast_radius / 40.0).min(1.0) * 10.0;
    let sku_pen = (r.cable_skus as f64 / 30.0).min(1.0) * 10.0;
    let row_pen = r.cross_row_frac * 10.0;
    // Unbundleable wiring is the dominant §4 deployability obstacle.
    let bundle_pen = (1.0 - (r.mean_bundle_size - 1.0) / 4.0).clamp(0.0, 1.0) * 20.0;
    let drain_bonus_loss = (1.0 - r.drainable_frac) * 15.0;
    (100.0 - cable_pen - tray_pen - blast_pen - sku_pen - row_pen - bundle_pen - drain_bonus_loss)
        .clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::{fat_tree, jellyfish, leaf_spine, xpander};
    use dcmaint_dcnet::DiversityProfile;

    fn rng() -> SimRng {
        SimRng::root(42)
    }

    #[test]
    fn analyze_reports_sane_ranges() {
        let t = leaf_spine(4, 8, 4, 1, DiversityProfile::cloud_typical(), &rng());
        let r = analyze(&t, 30, &rng());
        assert_eq!(r.links, t.link_count());
        assert!(r.mean_cable_m > 0.0);
        assert!((0.0..=1.0).contains(&r.cross_rack_frac));
        assert!((0.0..=1.0).contains(&r.cross_row_frac));
        assert!((0.0..=1.0).contains(&r.drainable_frac));
        assert!((0.0..=100.0).contains(&r.index));
        assert!(r.cable_skus > 0);
    }

    #[test]
    fn leaf_spine_beats_jellyfish_on_maintainability() {
        // The §4 claim, quantified: random wiring looms score worse.
        let ls = leaf_spine(4, 16, 2, 1, DiversityProfile::cloud_typical(), &rng());
        let jf = jellyfish(20, 8, 2, DiversityProfile::cloud_typical(), &rng());
        let rls = analyze(&ls, 30, &rng());
        let rjf = analyze(&jf, 30, &rng());
        assert!(
            rls.index > rjf.index,
            "leaf-spine {:.1} vs jellyfish {:.1}",
            rls.index,
            rjf.index
        );
        // And the mechanism is the wiring loom: random peerings cannot
        // be pre-bundled into trunks, structured fabrics can.
        assert!(
            rls.mean_bundle_size > 2.0 * rjf.mean_bundle_size,
            "bundles: leaf-spine {:.2} vs jellyfish {:.2}",
            rls.mean_bundle_size,
            rjf.mean_bundle_size
        );
    }

    #[test]
    fn expanders_have_high_drainability() {
        // Expanders' rich path diversity means almost every link is
        // individually drainable — the one axis where they are *more*
        // maintainable. (Server access links are never drainable, so
        // compare switch-switch fabric only via a serverless build.)
        let xp = xpander(6, 4, 0, DiversityProfile::cloud_typical(), &rng());
        let r = analyze(&xp, 30, &rng());
        assert!(r.drainable_frac > 0.9, "drainable {}", r.drainable_frac);
    }

    #[test]
    fn fat_tree_analysis_runs() {
        let ft = fat_tree(4, DiversityProfile::cloud_typical(), &rng());
        let r = analyze(&ft, 30, &rng());
        assert!(r.index > 0.0);
        assert_eq!(r.switches, 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = jellyfish(12, 4, 1, DiversityProfile::cloud_typical(), &rng());
        let a = analyze(&t, 20, &rng());
        let b = analyze(&t, 20, &rng());
        assert_eq!(a.index, b.index);
        assert_eq!(a.drainable_frac, b.drainable_frac);
    }

    #[test]
    fn index_penalizes_each_axis() {
        let base = MaintainabilityReport {
            topology: "x".into(),
            links: 100,
            switches: 10,
            total_cable_m: 0.0,
            mean_cable_m: 5.0,
            cross_rack_frac: 0.5,
            cross_row_frac: 0.1,
            cable_skus: 5,
            max_tray_load: 20,
            mean_tray_load: 10.0,
            mean_blast_radius: 5.0,
            drainable_frac: 0.9,
            mean_bundle_size: 3.0,
            index: 0.0,
        };
        let i0 = index_of(&base);
        let longer = MaintainabilityReport {
            mean_cable_m: 30.0,
            ..base.clone()
        };
        assert!(index_of(&longer) < i0);
        let congested = MaintainabilityReport {
            mean_tray_load: 50.0,
            max_tray_load: 150,
            ..base.clone()
        };
        assert!(index_of(&congested) < i0);
        let undrainable = MaintainabilityReport {
            drainable_frac: 0.2,
            ..base.clone()
        };
        assert!(index_of(&undrainable) < i0);
        let many_skus = MaintainabilityReport {
            cable_skus: 30,
            ..base.clone()
        };
        assert!(index_of(&many_skus) < i0);
        let unbundled = MaintainabilityReport {
            mean_bundle_size: 1.0,
            ..base
        };
        assert!(index_of(&unbundled) < i0);
    }
}
