//! Robotic topology reconfiguration — the §4 extension.
//!
//! "The robotics that enables a self-maintaining network will also be
//! able to deploy arbitrary topologies potentially. Is this useful?"
//! One concrete, near-term use the paper's framing suggests: when a
//! switch dies, its attached nodes are stranded until a human replaces
//! the chassis (hours). A robotic patch panel can instead *re-patch*
//! those cables to spare ports on healthy switches within minutes,
//! restoring connectivity while the slow hardware swap proceeds in the
//! background.
//!
//! [`plan_rewire`] computes that plan against a failed switch —
//! which nodes are stranded, which healthy switches have spare ports,
//! how many cable moves the robot needs — and [`apply_rewire`] rebuilds
//! the topology with the patches in place so connectivity can be
//! verified with the ordinary routing machinery.

use dcmaint_dcnet::routing::distances_from;
use dcmaint_dcnet::topology::{NodeKind, Tier};
use dcmaint_dcnet::{FormFactor, NetState, NodeId, Topology, TopologyBuilder};
use dcmaint_des::{SimDuration, SimRng};

/// One cable move: re-patch `node`'s link (formerly to the failed
/// switch) onto `new_switch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patch {
    /// The stranded node being rescued.
    pub node: NodeId,
    /// The healthy switch receiving the cable.
    pub new_switch: NodeId,
}

/// A computed rewiring plan.
#[derive(Debug, Clone)]
pub struct RewirePlan {
    /// The failed switch being bypassed.
    pub failed: NodeId,
    /// Nodes disconnected by the failure (no path to the rest of the
    /// fabric).
    pub stranded: Vec<NodeId>,
    /// The cable moves.
    pub patches: Vec<Patch>,
    /// Stranded nodes the plan could not rescue (no spare ports in
    /// range).
    pub unrescued: usize,
    /// Robot time to execute: cable moves are serialized on the row
    /// robot at ~20 minutes each (unplug, re-route along the tray,
    /// clean, plug, verify).
    pub robot_time: SimDuration,
}

/// Per-cable-move robot time: re-route + clean + verify.
const MINUTES_PER_MOVE: u64 = 20;

/// Compute which nodes a switch failure strands: nodes with no path to
/// any other switch once `failed`'s links are down.
pub fn stranded_by(topo: &Topology, failed: NodeId) -> Vec<NodeId> {
    let mut state = NetState::new(topo);
    for l in topo.links_of(failed) {
        state.set_health(l, dcmaint_dcnet::LinkHealth::Down, 1.0);
    }
    // Reachability from an arbitrary healthy switch.
    let Some(&root) = topo.switches().iter().find(|&&s| s != failed) else {
        return Vec::new();
    };
    let dist = distances_from(topo, &state, root);
    topo.node_ids()
        .filter(|&n| n != failed && dist[n.index()] == u32::MAX)
        .collect()
}

/// Spare (uncabled) ports on a switch.
pub fn spare_ports(topo: &Topology, switch: NodeId) -> usize {
    match &topo.node(switch).kind {
        NodeKind::Switch { spec, .. } => {
            (spec.radix as usize).saturating_sub(topo.node_ports(switch).len())
        }
        NodeKind::Server => 0,
    }
}

/// Plan the rewire: assign each stranded node to the nearest healthy
/// switch (by aisle walking distance) with spare port capacity.
pub fn plan_rewire(topo: &Topology, failed: NodeId) -> RewirePlan {
    let stranded = stranded_by(topo, failed);
    let layout = &topo.layout;
    let mut capacity: Vec<(NodeId, usize)> = topo
        .switches()
        .into_iter()
        .filter(|&s| s != failed)
        .map(|s| (s, spare_ports(topo, s)))
        .filter(|&(_, c)| c > 0)
        .collect();
    let mut patches = Vec::new();
    let mut unrescued = 0;
    for &node in &stranded {
        let from = layout.rack_loc(topo.node(node).rack);
        let best = capacity
            .iter_mut()
            .filter(|(_, c)| *c > 0)
            .min_by(|(a, _), (b, _)| {
                let da = layout.walk_distance_m(from, layout.rack_loc(topo.node(*a).rack));
                let db = layout.walk_distance_m(from, layout.rack_loc(topo.node(*b).rack));
                da.partial_cmp(&db).expect("finite distances")
            });
        match best {
            Some((sw, c)) => {
                patches.push(Patch {
                    node,
                    new_switch: *sw,
                });
                *c -= 1;
            }
            None => unrescued += 1,
        }
    }
    let robot_time = SimDuration::from_mins(MINUTES_PER_MOVE) * patches.len() as u64;
    RewirePlan {
        failed,
        stranded,
        patches,
        unrescued,
        robot_time,
    }
}

/// Rebuild the topology with the failed switch's links removed and the
/// plan's patches added, so standard routing can verify the outcome.
/// The failed switch remains as a node with no cabled ports.
pub fn apply_rewire(topo: &Topology, plan: &RewirePlan, rng: &SimRng) -> Topology {
    let mut b = TopologyBuilder::new(
        &format!("{}-rewired", topo.name()),
        topo.layout.clone(),
        topo.diversity,
        rng,
    );
    // Re-add nodes in the original order so NodeIds are stable.
    for n in topo.node_ids() {
        let node = topo.node(n);
        let rack = topo.layout.rack_loc(node.rack);
        let id = match &node.kind {
            NodeKind::Switch { spec, tier } => b.add_switch(&node.name, spec.clone(), *tier, rack),
            NodeKind::Server => b.add_server(&node.name, rack),
        };
        debug_assert_eq!(id, n, "node ids must be stable across rebuild");
    }
    for l in topo.link_ids() {
        let (a, bb) = topo.endpoints(l);
        if a == plan.failed || bb == plan.failed {
            continue;
        }
        b.connect(a, bb, FormFactor::from_gbps(topo.link(l).gbps));
    }
    for p in &plan.patches {
        let form = match topo.node(p.node).kind {
            NodeKind::Server => FormFactor::Qsfp28,
            NodeKind::Switch { .. } => FormFactor::QsfpDd,
        };
        b.connect(p.node, p.new_switch, form);
    }
    b.build()
}

/// Convenience summary used by experiment E12: strand count, rescue
/// fraction, and the robot-vs-human downtime comparison for one failed
/// switch.
#[derive(Debug, Clone)]
pub struct RewireOutcome {
    /// Nodes stranded by the failure.
    pub stranded: usize,
    /// Fraction of stranded nodes reconnected after the rewire
    /// (verified by routing on the rebuilt topology).
    pub restored_frac: f64,
    /// Robot rewire completion time.
    pub rewire_time: SimDuration,
}

/// Evaluate a failure + rewire of `failed`, verifying restoration by
/// routing on the rebuilt topology.
pub fn evaluate_rewire(topo: &Topology, failed: NodeId, rng: &SimRng) -> RewireOutcome {
    let plan = plan_rewire(topo, failed);
    if plan.stranded.is_empty() {
        return RewireOutcome {
            stranded: 0,
            restored_frac: 1.0,
            rewire_time: SimDuration::ZERO,
        };
    }
    let rebuilt = apply_rewire(topo, &plan, rng);
    let state = NetState::new(&rebuilt);
    let root = rebuilt
        .switches()
        .into_iter()
        .find(|&s| s != failed)
        .expect("another switch exists");
    let dist = distances_from(&rebuilt, &state, root);
    let restored = plan
        .stranded
        .iter()
        .filter(|n| dist[n.index()] != u32::MAX)
        .count();
    RewireOutcome {
        stranded: plan.stranded.len(),
        restored_frac: restored as f64 / plan.stranded.len() as f64,
        rewire_time: plan.robot_time,
    }
}

/// Which switches are worth testing in E12: ToR/leaf switches (their
/// failure strands servers; spine failures are absorbed by ECMP).
pub fn tor_switches(topo: &Topology) -> Vec<NodeId> {
    topo.switches()
        .into_iter()
        .filter(|&s| topo.node(s).tier() == Some(Tier::Tor))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::{jellyfish, leaf_spine};
    use dcmaint_dcnet::DiversityProfile;

    fn rng() -> SimRng {
        SimRng::root(12)
    }

    fn ls() -> Topology {
        leaf_spine(2, 4, 4, 1, DiversityProfile::cloud_typical(), &rng())
    }

    #[test]
    fn leaf_failure_strands_its_servers() {
        let t = ls();
        let leaf = tor_switches(&t)[0];
        let stranded = stranded_by(&t, leaf);
        // Exactly the leaf's 4 servers (spines stay connected).
        assert_eq!(stranded.len(), 4);
        for n in &stranded {
            assert!(!t.node(*n).is_switch());
        }
    }

    #[test]
    fn spine_failure_strands_nobody() {
        let t = ls();
        let spine = t.node_ids().find(|&n| t.node(n).name == "spine-0").unwrap();
        assert!(stranded_by(&t, spine).is_empty(), "ECMP absorbs it");
    }

    #[test]
    fn plan_rescues_all_with_spare_ports() {
        let t = ls();
        let leaf = tor_switches(&t)[0];
        let plan = plan_rewire(&t, leaf);
        assert_eq!(plan.stranded.len(), 4);
        assert_eq!(plan.patches.len(), 4);
        assert_eq!(plan.unrescued, 0);
        assert_eq!(plan.robot_time, SimDuration::from_mins(80));
        for p in &plan.patches {
            assert_ne!(p.new_switch, leaf);
            assert!(t.node(p.new_switch).is_switch());
        }
    }

    #[test]
    fn rewired_topology_restores_connectivity() {
        let t = ls();
        let leaf = tor_switches(&t)[0];
        let out = evaluate_rewire(&t, leaf, &rng());
        assert_eq!(out.stranded, 4);
        assert_eq!(out.restored_frac, 1.0, "all servers reconnected");
        assert!(out.rewire_time < SimDuration::from_hours(2));
    }

    #[test]
    fn rebuild_preserves_node_ids_and_surviving_links() {
        let t = ls();
        let leaf = tor_switches(&t)[0];
        let plan = plan_rewire(&t, leaf);
        let rebuilt = apply_rewire(&t, &plan, &rng());
        assert_eq!(rebuilt.node_count(), t.node_count());
        // Failed switch keeps no cabled ports; patched servers have one.
        assert!(rebuilt.links_of(leaf).is_empty());
        for p in &plan.patches {
            assert!(!rebuilt.links_of(p.node).is_empty());
        }
        // Link count: original minus failed's links plus patches.
        assert_eq!(
            rebuilt.link_count(),
            t.link_count() - t.links_of(leaf).len() + plan.patches.len()
        );
    }

    #[test]
    fn jellyfish_tor_failure_mostly_rescuable() {
        let t = jellyfish(12, 4, 3, DiversityProfile::cloud_typical(), &rng());
        let tor = tor_switches(&t)[0];
        let out = evaluate_rewire(&t, tor, &rng());
        assert_eq!(out.stranded, 3, "its 3 servers strand");
        assert!(out.restored_frac > 0.99);
    }

    #[test]
    fn spare_port_accounting() {
        let t = ls();
        let leaf = tor_switches(&t)[0];
        // tor32 with 2 uplinks + 4 servers cabled → 26 spare.
        assert_eq!(spare_ports(&t, leaf), 32 - 6);
        let server = t.servers()[0];
        assert_eq!(spare_ports(&t, server), 0);
    }
}
