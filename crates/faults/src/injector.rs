//! The fault-arrival process.
//!
//! Incidents arrive as a Poisson process over the whole fabric (rate =
//! links / MTBI, modulated by environmental stress), each landing on a
//! uniformly random link; the incident's hidden cause is sampled by the
//! link's cable medium, and its manifestation (degraded / flapping /
//! down, plus loss rate) by the cause. Disturbance-seeded *latent* faults
//! enter through [`FaultInjector::seeded_incident`] with an
//! hours-to-days manifestation delay — the §1 cascading failure that
//! shows up "intermittently over time".
//!
//! A configurable fraction of gray incidents *self-heal* (the transient
//! comes and goes), producing the false-positive tickets the paper says
//! fine-grained repair control must tolerate.

use dcmaint_dcnet::{LinkHealth, LinkId, Topology};
use dcmaint_des::{Dist, SimDuration, SimRng, Stream};

use crate::cause::RootCause;

/// Injector configuration.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Mean time between incidents *per link* at nominal stress. Public
    /// fleet studies put optical-link incident rates at roughly one per
    /// link-year order-of-magnitude; experiments compress this to tens of
    /// days so 30–90-day runs see hundreds of incidents.
    pub mtbi_per_link: SimDuration,
    /// Probability a gray (non-down) incident self-heals before repair.
    pub self_heal_prob: f64,
    /// Mean self-heal delay.
    pub self_heal_mean: SimDuration,
    /// Mean delay for a seeded latent fault to manifest.
    pub latent_manifest_mean: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            mtbi_per_link: SimDuration::from_days(60),
            self_heal_prob: 0.15,
            self_heal_mean: SimDuration::from_hours(2),
            latent_manifest_mean: SimDuration::from_hours(36),
        }
    }
}

/// A manifested incident, ready to apply to `NetState`.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Affected link.
    pub link: LinkId,
    /// Hidden root cause (repair code must not branch on this; it is
    /// carried so outcome sampling and post-hoc analysis can see it).
    pub cause: RootCause,
    /// Manifested health.
    pub health: LinkHealth,
    /// Manifested loss rate.
    pub loss: f64,
    /// If `Some`, the incident self-heals after this delay (unless
    /// repaired first).
    pub self_heal_after: Option<SimDuration>,
}

/// Stateful incident generator. One per scenario.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    arrivals: Stream,
    causes: Stream,
    manifests: Stream,
}

impl FaultInjector {
    /// New injector drawing from the given RNG root.
    pub fn new(cfg: FaultConfig, rng: &SimRng) -> Self {
        FaultInjector {
            cfg,
            arrivals: rng.stream("fault-arrivals", 0),
            causes: rng.stream("fault-causes", 0),
            manifests: rng.stream("fault-manifests", 0),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Delay until the next fabric-wide incident. `hazard_sum` is the
    /// sum of per-link hazard weights (a fleet of `n` nominal links has
    /// `hazard_sum == n`; accumulated wear raises a link's weight above
    /// 1, and maintenance resets it — this is how proactive work lowers
    /// the organic incident rate).
    pub fn arrival_delay(&mut self, hazard_sum: f64, stress: f64) -> SimDuration {
        let hazard = hazard_sum.max(1.0);
        let per_link = self.cfg.mtbi_per_link.as_secs_f64();
        let mean = per_link / (hazard * stress.max(0.1));
        Dist::Exp { mean }.sample_duration(&mut self.arrivals)
    }

    /// Generate the next organic incident on a uniformly random link.
    pub fn next_incident(&mut self, topo: &Topology) -> Incident {
        let link = LinkId::from_index(self.arrivals.index(topo.link_count()));
        let medium = topo.link(link).cable.medium;
        let cause = RootCause::sample(medium, &mut self.causes);
        self.manifest(link, cause)
    }

    /// Manifest a specific cause on a specific link (latent faults seeded
    /// by disturbance, or experiment-scripted failures).
    pub fn seeded_incident(&mut self, link: LinkId, cause: RootCause) -> Incident {
        self.manifest(link, cause)
    }

    /// Delay before a disturbance-seeded latent fault manifests.
    pub fn latent_manifest_delay(&mut self) -> SimDuration {
        Dist::Exp {
            mean: self.cfg.latent_manifest_mean.as_secs_f64(),
        }
        .sample_duration(&mut self.manifests)
    }

    /// Append the injector's RNG positions to a checkpoint. The config is
    /// rebuilt from the scenario config on restore, so only stream
    /// positions are recorded.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.u64(self.arrivals.draws());
        enc.u64(self.causes.draws());
        enc.u64(self.manifests.draws());
    }

    /// Reposition a freshly constructed injector at checkpointed stream
    /// positions. Inverse of [`FaultInjector::save`]. `rng` picks how:
    /// replay the recorded draw counts (disk restore), adopt the live
    /// donor injector's streams (in-memory fork), or reseed under a
    /// branch root (twin planning).
    pub fn restore_draws(
        &mut self,
        dec: &mut dcmaint_ckpt::Dec,
        rng: dcmaint_des::RngRestore<'_, FaultInjector>,
    ) -> Result<(), dcmaint_ckpt::CkptError> {
        self.arrivals
            .restore_pos(dec.u64()?, rng.stream(|i| &i.arrivals));
        self.causes
            .restore_pos(dec.u64()?, rng.stream(|i| &i.causes));
        self.manifests
            .restore_pos(dec.u64()?, rng.stream(|i| &i.manifests));
        Ok(())
    }

    fn manifest(&mut self, link: LinkId, cause: RootCause) -> Incident {
        let (health, loss) = cause.manifest(&mut self.manifests);
        // Only gray failures self-heal; hard-down hardware does not come
        // back on its own.
        let self_heal_after =
            if health != LinkHealth::Down && self.manifests.chance(self.cfg.self_heal_prob) {
                Some(
                    Dist::Exp {
                        mean: self.cfg.self_heal_mean.as_secs_f64(),
                    }
                    .sample_duration(&mut self.manifests),
                )
            } else {
                None
            };
        Incident {
            link,
            cause,
            health,
            loss,
            self_heal_after,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::DiversityProfile;

    fn topo() -> Topology {
        leaf_spine(
            2,
            4,
            2,
            1,
            DiversityProfile::cloud_typical(),
            &SimRng::root(1),
        )
    }

    fn injector() -> FaultInjector {
        FaultInjector::new(FaultConfig::default(), &SimRng::root(42))
    }

    #[test]
    fn arrival_rate_scales_with_links_and_stress() {
        let mut inj = injector();
        let n = 3000;
        let mean_small: f64 = (0..n)
            .map(|_| inj.arrival_delay(100.0, 1.0).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        let mean_large: f64 = (0..n)
            .map(|_| inj.arrival_delay(1000.0, 1.0).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        let mean_stressed: f64 = (0..n)
            .map(|_| inj.arrival_delay(100.0, 2.0).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean_small / mean_large - 10.0).abs() < 1.5,
            "10x links → 10x rate ({mean_small} vs {mean_large})"
        );
        assert!(
            (mean_small / mean_stressed - 2.0).abs() < 0.4,
            "2x stress → 2x rate"
        );
    }

    #[test]
    fn incidents_land_on_valid_links() {
        let t = topo();
        let mut inj = injector();
        for _ in 0..500 {
            let i = inj.next_incident(&t);
            assert!(i.link.index() < t.link_count());
            assert!(i.loss >= 0.0 && i.loss <= 1.0);
            assert_ne!(i.health, LinkHealth::Up);
        }
    }

    #[test]
    fn causes_respect_medium() {
        let t = topo();
        let mut inj = injector();
        for _ in 0..2000 {
            let i = inj.next_incident(&t);
            let medium = t.link(i.link).cable.medium;
            if i.cause == RootCause::DirtyEndFace {
                assert!(medium.is_optical(), "dirt on copper link");
            }
        }
    }

    #[test]
    fn hard_down_never_self_heals() {
        let t = topo();
        let mut inj = injector();
        for _ in 0..2000 {
            let i = inj.next_incident(&t);
            if i.health == LinkHealth::Down {
                assert!(i.self_heal_after.is_none());
            }
        }
    }

    #[test]
    fn some_gray_incidents_self_heal() {
        let t = topo();
        let mut inj = injector();
        let mut gray = 0;
        let mut heal = 0;
        for _ in 0..5000 {
            let i = inj.next_incident(&t);
            if i.health != LinkHealth::Down {
                gray += 1;
                if i.self_heal_after.is_some() {
                    heal += 1;
                }
            }
        }
        let frac = f64::from(heal) / f64::from(gray.max(1));
        assert!((frac - 0.15).abs() < 0.03, "self-heal fraction {frac}");
    }

    #[test]
    fn seeded_incident_keeps_cause() {
        let mut inj = injector();
        let i = inj.seeded_incident(LinkId(3), RootCause::DamagedFiber);
        assert_eq!(i.link, LinkId(3));
        assert_eq!(i.cause, RootCause::DamagedFiber);
    }

    #[test]
    fn latent_delay_hours_scale() {
        let mut inj = injector();
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| inj.latent_manifest_delay().as_hours_f64())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 36.0).abs() < 3.0, "mean {mean} h");
    }

    #[test]
    fn deterministic_across_runs() {
        let t = topo();
        let mut a = injector();
        let mut b = injector();
        for _ in 0..50 {
            let ia = a.next_incident(&t);
            let ib = b.next_incident(&t);
            assert_eq!(ia.link, ib.link);
            assert_eq!(ia.cause, ib.cause);
            assert_eq!(ia.health, ib.health);
        }
    }
}
