//! Maintenance-plane fault physics: the robots and their control plane
//! are hardware too.
//!
//! §3.4 and §4 of the paper warn that once robots do the maintenance,
//! the maintenance plane itself becomes critical infrastructure — grip
//! slips, vision misidentifications, actuator stalls, units breaking
//! down mid-operation, spare magazines jamming, telemetry dropping out,
//! and dispatch messages getting lost. This module models each hazard
//! as a seed-deterministic process. The robotics crate maps its
//! `OpPhase` vocabulary onto the coarse [`RobotPhaseClass`] here (the
//! dependency points robotics → faults, so this crate cannot name
//! `OpPhase` itself).
//!
//! All hazards are **off by default**: `RobotFaultConfig::default()`
//! draws nothing from the RNG, so runs without maintenance-plane chaos
//! reproduce byte-identically what they produced before this module
//! existed.

use dcmaint_des::{SimDuration, Stream};

/// Coarse mechanical class of an operation phase, from the fault
/// model's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobotPhaseClass {
    /// Locomotion (gantry/AGV travel).
    Motion,
    /// Camera + recognition work.
    Vision,
    /// Gripper engaged on a component.
    Grip,
    /// Powered manipulation (cleaning, cable work, insertion).
    Actuation,
    /// Spare-magazine handling.
    Magazine,
    /// Passive waits (dwell, verification soak) — only whole-unit
    /// breakdown applies.
    Passive,
}

/// A maintenance-plane fault drawn during an operation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobotFault {
    /// Gripper lost the component.
    GripSlip,
    /// Vision locked onto the wrong port/component.
    VisionMisidentify,
    /// An actuator seized; the unit freezes in place.
    ActuatorStall,
    /// The whole unit broke down mid-operation.
    UnitBreakdown,
    /// The spare magazine jammed during a swap.
    MagazineJam,
}

impl RobotFault {
    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            RobotFault::GripSlip => "grip-slip",
            RobotFault::VisionMisidentify => "vision-misid",
            RobotFault::ActuatorStall => "actuator-stall",
            RobotFault::UnitBreakdown => "unit-breakdown",
            RobotFault::MagazineJam => "magazine-jam",
        }
    }

    /// Whether this fault leaves the unit frozen (stall) rather than
    /// able to back out of the operation on its own.
    pub fn freezes_unit(self) -> bool {
        matches!(self, RobotFault::ActuatorStall | RobotFault::UnitBreakdown)
    }
}

/// Hazard rates for the maintenance plane. Time-based hazards are
/// expressed as mean time between faults *while exposed* (a unit only
/// accumulates actuator-stall exposure during powered phases);
/// event-based hazards are per-attempt probabilities.
#[derive(Debug, Clone)]
pub struct RobotFaultConfig {
    /// Master switch. When false no hazard is ever sampled and no RNG
    /// draw is made.
    pub enabled: bool,
    /// Mean operating time between whole-unit breakdowns (exposure:
    /// every phase).
    pub unit_mtbf: SimDuration,
    /// Mean powered time between actuator stalls (exposure: Motion,
    /// Grip, Actuation, Magazine phases).
    pub actuator_mtbf: SimDuration,
    /// Per-grip-phase probability the gripper drops the component
    /// (beyond the retried slips already modeled inside the grip
    /// phase itself — this one aborts the operation).
    pub grip_slip_prob: f64,
    /// Per-vision-phase probability of locking onto the wrong target.
    pub vision_misid_prob: f64,
    /// Per-magazine-phase probability of a spare jam.
    pub magazine_jam_prob: f64,
    /// Probability an entire telemetry poll cycle is lost (alerts
    /// delayed to the next poll).
    pub telemetry_dropout: f64,
    /// Probability a dispatch message is lost in flight (recovered
    /// only by the controller's watchdog).
    pub dispatch_loss: f64,
}

impl Default for RobotFaultConfig {
    fn default() -> Self {
        RobotFaultConfig {
            enabled: false,
            unit_mtbf: SimDuration::from_hours(200),
            actuator_mtbf: SimDuration::from_hours(80),
            grip_slip_prob: 0.0,
            vision_misid_prob: 0.0,
            magazine_jam_prob: 0.0,
            telemetry_dropout: 0.0,
            dispatch_loss: 0.0,
        }
    }
}

impl RobotFaultConfig {
    /// A chaos preset with every hazard turned on at rates high enough
    /// to exercise recovery within a short run (used by E14's stressed
    /// arms and the `robot_breakdown` example).
    pub fn chaos() -> Self {
        RobotFaultConfig {
            enabled: true,
            unit_mtbf: SimDuration::from_hours(2),
            actuator_mtbf: SimDuration::from_hours(1),
            grip_slip_prob: 0.03,
            vision_misid_prob: 0.02,
            magazine_jam_prob: 0.05,
            telemetry_dropout: 0.05,
            dispatch_loss: 0.02,
        }
    }

    /// Probability of at least one fault with mean spacing `mtbf`
    /// during `exposure` of exposed time.
    fn hazard(exposure: SimDuration, mtbf: SimDuration) -> f64 {
        let m = mtbf.as_secs_f64();
        if m <= 0.0 {
            return 1.0;
        }
        1.0 - (-exposure.as_secs_f64() / m).exp()
    }

    /// Roll the hazards for one phase of the given class and duration.
    /// Returns the first fault drawn, or `None`. Disabled configs make
    /// **no** RNG draws, so they leave stream state untouched.
    pub fn sample_phase_fault(
        &self,
        class: RobotPhaseClass,
        duration: SimDuration,
        rng: &mut Stream,
    ) -> Option<RobotFault> {
        if !self.enabled {
            return None;
        }
        // Whole-unit breakdown exposure accrues in every phase.
        if rng.chance(Self::hazard(duration, self.unit_mtbf)) {
            return Some(RobotFault::UnitBreakdown);
        }
        match class {
            RobotPhaseClass::Motion | RobotPhaseClass::Actuation => {
                if rng.chance(Self::hazard(duration, self.actuator_mtbf)) {
                    return Some(RobotFault::ActuatorStall);
                }
            }
            RobotPhaseClass::Grip => {
                if rng.chance(Self::hazard(duration, self.actuator_mtbf)) {
                    return Some(RobotFault::ActuatorStall);
                }
                if rng.chance(self.grip_slip_prob) {
                    return Some(RobotFault::GripSlip);
                }
            }
            RobotPhaseClass::Vision => {
                if rng.chance(self.vision_misid_prob) {
                    return Some(RobotFault::VisionMisidentify);
                }
            }
            RobotPhaseClass::Magazine => {
                if rng.chance(Self::hazard(duration, self.actuator_mtbf)) {
                    return Some(RobotFault::ActuatorStall);
                }
                if rng.chance(self.magazine_jam_prob) {
                    return Some(RobotFault::MagazineJam);
                }
            }
            RobotPhaseClass::Passive => {}
        }
        None
    }

    /// Roll the per-poll telemetry-dropout dice. No draw when disabled.
    pub fn telemetry_dropped(&self, rng: &mut Stream) -> bool {
        self.enabled && self.telemetry_dropout > 0.0 && rng.chance(self.telemetry_dropout)
    }

    /// Roll the per-message dispatch-loss dice. No draw when disabled.
    pub fn dispatch_lost(&self, rng: &mut Stream) -> bool {
        self.enabled && self.dispatch_loss > 0.0 && rng.chance(self.dispatch_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    fn rng() -> Stream {
        SimRng::root(7).stream("robot-faults", 0)
    }

    #[test]
    fn disabled_config_never_draws() {
        let cfg = RobotFaultConfig::default();
        let mut a = rng();
        let mut b = rng();
        for class in [
            RobotPhaseClass::Motion,
            RobotPhaseClass::Grip,
            RobotPhaseClass::Magazine,
        ] {
            assert_eq!(
                cfg.sample_phase_fault(class, SimDuration::from_hours(100), &mut a),
                None
            );
        }
        assert!(!cfg.telemetry_dropped(&mut a));
        assert!(!cfg.dispatch_lost(&mut a));
        // Stream state untouched: both streams still agree.
        assert_eq!(a.uniform(), b.uniform());
    }

    #[test]
    fn hazard_scales_with_exposure() {
        let cfg = RobotFaultConfig {
            enabled: true,
            unit_mtbf: SimDuration::from_hours(10),
            ..RobotFaultConfig::default()
        };
        let mut r = rng();
        let count = |d: SimDuration, r: &mut Stream| {
            (0..4000)
                .filter(|_| {
                    cfg.sample_phase_fault(RobotPhaseClass::Passive, d, r)
                        == Some(RobotFault::UnitBreakdown)
                })
                .count()
        };
        let short = count(SimDuration::from_mins(6), &mut r);
        let long = count(SimDuration::from_mins(60), &mut r);
        // 6 min on 10 h MTBF ≈ 1%; 60 min ≈ 9.5%.
        assert!(long > 4 * short, "short {short} long {long}");
    }

    #[test]
    fn class_specific_faults_respect_class() {
        let cfg = RobotFaultConfig {
            enabled: true,
            unit_mtbf: SimDuration::from_hours(1_000_000),
            actuator_mtbf: SimDuration::from_hours(1_000_000),
            grip_slip_prob: 1.0,
            vision_misid_prob: 1.0,
            magazine_jam_prob: 1.0,
            ..RobotFaultConfig::default()
        };
        let mut r = rng();
        let d = SimDuration::from_secs(10);
        assert_eq!(
            cfg.sample_phase_fault(RobotPhaseClass::Grip, d, &mut r),
            Some(RobotFault::GripSlip)
        );
        assert_eq!(
            cfg.sample_phase_fault(RobotPhaseClass::Vision, d, &mut r),
            Some(RobotFault::VisionMisidentify)
        );
        assert_eq!(
            cfg.sample_phase_fault(RobotPhaseClass::Magazine, d, &mut r),
            Some(RobotFault::MagazineJam)
        );
        assert_eq!(
            cfg.sample_phase_fault(RobotPhaseClass::Passive, d, &mut r),
            None
        );
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let cfg = RobotFaultConfig::chaos();
        let run = || {
            let mut r = rng();
            (0..200)
                .map(|_| {
                    cfg.sample_phase_fault(
                        RobotPhaseClass::Actuation,
                        SimDuration::from_mins(5),
                        &mut r,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn control_plane_loss_rates_are_probabilities() {
        let cfg = RobotFaultConfig::chaos();
        let mut r = rng();
        let drops = (0..10_000)
            .filter(|_| cfg.telemetry_dropped(&mut r))
            .count();
        let losses = (0..10_000).filter(|_| cfg.dispatch_lost(&mut r)).count();
        // 5% and 2% nominal.
        assert!((300..700).contains(&drops), "drops {drops}");
        assert!((100..350).contains(&losses), "losses {losses}");
    }
}
