//! Root causes, repair actions, and the efficacy matrix joining them.
//!
//! §3.2 of the paper describes the field escalation ladder: reseat →
//! clean → replace transceiver → replace cable → replace NIC/line
//! card/switch, and observes that (a) reseating is "surprisingly
//! effective" as a first step and (b) failures "frequently require
//! multiple attempts to fix … and \[are\] hard to pinpoint". Both phenomena
//! fall out of one abstraction: a hidden [`RootCause`] per incident and a
//! probability matrix of which [`RepairAction`] resolves which cause.
//! The repair workflow never sees the cause — only whether the link came
//! back — exactly like the real ticket pipeline.
//!
//! Efficacy values are calibrated to reproduce the paper's qualitative
//! claims, not measured data (none is published): reseat fixes most
//! oxidation/firmware incidents and a minority of contamination ones;
//! cleaning (separable optics only) fixes nearly all contamination;
//! replacements are near-certain for their matching hardware cause.

use dcmaint_dcnet::{CableMedium, LinkHealth};
use dcmaint_des::Stream;

/// Hidden physical root cause of a link incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootCause {
    /// Contamination on a fiber end-face or inside the transceiver bore
    /// (§1: "dirt on an end-face … can cause the link to fail or to flap
    /// depending on what constitutes the dirt").
    DirtyEndFace,
    /// Oxidation/corrosion of the gold edge contacts ("gold is not immune
    /// from oxidation and corrosion", §3.2).
    OxidizedContact,
    /// Transceiver electronics/laser wear-out.
    TransceiverWear,
    /// Bent, crushed, or micro-cracked fiber.
    DamagedFiber,
    /// Switch-side port/ASIC/line-card fault.
    SwitchPortFault,
    /// Wedged transceiver firmware — a full power-cycle (which a reseat
    /// performs, §3.2 effect (ii)) clears it.
    FirmwareHang,
}

impl RootCause {
    /// Stable checkpoint tag (do not reorder without bumping the
    /// checkpoint format version).
    pub fn ckpt_tag(self) -> u8 {
        match self {
            RootCause::DirtyEndFace => 0,
            RootCause::OxidizedContact => 1,
            RootCause::TransceiverWear => 2,
            RootCause::DamagedFiber => 3,
            RootCause::SwitchPortFault => 4,
            RootCause::FirmwareHang => 5,
        }
    }

    /// Inverse of [`RootCause::ckpt_tag`].
    pub fn from_ckpt_tag(tag: u8) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(match tag {
            0 => RootCause::DirtyEndFace,
            1 => RootCause::OxidizedContact,
            2 => RootCause::TransceiverWear,
            3 => RootCause::DamagedFiber,
            4 => RootCause::SwitchPortFault,
            5 => RootCause::FirmwareHang,
            t => return Err(dcmaint_ckpt::CkptError::BadTag("root-cause", u64::from(t))),
        })
    }

    /// All causes, for iteration.
    pub const ALL: [RootCause; 6] = [
        RootCause::DirtyEndFace,
        RootCause::OxidizedContact,
        RootCause::TransceiverWear,
        RootCause::DamagedFiber,
        RootCause::SwitchPortFault,
        RootCause::FirmwareHang,
    ];

    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            RootCause::DirtyEndFace => "dirty-endface",
            RootCause::OxidizedContact => "oxidized-contact",
            RootCause::TransceiverWear => "xcvr-wear",
            RootCause::DamagedFiber => "damaged-fiber",
            RootCause::SwitchPortFault => "switch-port",
            RootCause::FirmwareHang => "fw-hang",
        }
    }

    /// Relative incidence weight of each cause on a link of the given
    /// medium. Optical media are dominated by contamination (Zhuo et al.,
    /// SIGCOMM '17 attribute most corruption to connector contamination);
    /// copper by contact oxidation. Separable optics see more dirt than
    /// factory-sealed AOCs (their connectors were mated on-site).
    pub fn weight(self, medium: CableMedium) -> f64 {
        let optical = medium.is_optical();
        let separable = medium.is_separable();
        match self {
            RootCause::DirtyEndFace => {
                if separable {
                    0.40
                } else if optical {
                    0.10 // sealed, but bore contamination still occurs
                } else {
                    0.0
                }
            }
            RootCause::OxidizedContact => {
                if optical {
                    0.15
                } else {
                    0.45
                }
            }
            RootCause::TransceiverWear => {
                if optical {
                    0.15
                } else {
                    0.10
                }
            }
            RootCause::DamagedFiber => {
                if optical {
                    0.10
                } else {
                    0.15 // copper cable damage
                }
            }
            RootCause::SwitchPortFault => 0.08,
            RootCause::FirmwareHang => 0.12,
        }
    }

    /// Sample a cause for a new incident on the given medium.
    pub fn sample(medium: CableMedium, rng: &mut Stream) -> RootCause {
        let weights: Vec<f64> = RootCause::ALL.iter().map(|c| c.weight(medium)).collect();
        RootCause::ALL[rng.weighted_index(&weights)]
    }

    /// How the cause manifests at the link layer: health state plus loss
    /// rate. Contamination and oxidation mostly present as gray failures
    /// (degraded or flapping); hardware faults mostly as hard-down. This
    /// reproduces §1's "many failures are not fail stop".
    pub fn manifest(self, rng: &mut Stream) -> (LinkHealth, f64) {
        let r = rng.uniform();
        match self {
            RootCause::DirtyEndFace => {
                if r < 0.45 {
                    (LinkHealth::Flapping, rng.uniform_range(0.005, 0.05))
                } else if r < 0.85 {
                    (LinkHealth::Degraded, rng.uniform_range(0.001, 0.02))
                } else {
                    (LinkHealth::Down, 1.0)
                }
            }
            RootCause::OxidizedContact => {
                if r < 0.35 {
                    (LinkHealth::Flapping, rng.uniform_range(0.002, 0.03))
                } else if r < 0.70 {
                    (LinkHealth::Degraded, rng.uniform_range(0.0005, 0.01))
                } else {
                    (LinkHealth::Down, 1.0)
                }
            }
            RootCause::TransceiverWear => {
                if r < 0.30 {
                    (LinkHealth::Degraded, rng.uniform_range(0.001, 0.05))
                } else {
                    (LinkHealth::Down, 1.0)
                }
            }
            RootCause::DamagedFiber => {
                if r < 0.25 {
                    (LinkHealth::Flapping, rng.uniform_range(0.01, 0.10))
                } else {
                    (LinkHealth::Down, 1.0)
                }
            }
            RootCause::SwitchPortFault => {
                if r < 0.20 {
                    (LinkHealth::Degraded, rng.uniform_range(0.001, 0.02))
                } else {
                    (LinkHealth::Down, 1.0)
                }
            }
            RootCause::FirmwareHang => (LinkHealth::Down, 1.0),
        }
    }
}

/// The repair vocabulary shared by technicians, robots, and the control
/// plane — §3.2's escalation ladder, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RepairAction {
    /// Remove the transceiver, wait, re-insert (§3.2).
    Reseat,
    /// Detach, inspect, and clean fiber end-faces and transceiver bore
    /// (§3.2, §3.3.2). Separable optics only.
    CleanEndFace,
    /// Swap in a spare transceiver.
    ReplaceTransceiver,
    /// Lay and connect a new cable (includes the cleaning process,
    /// §3.2).
    ReplaceCable,
    /// Replace the NIC / line card / switch (§3.2's final stage).
    ReplaceSwitchHardware,
}

impl RepairAction {
    /// The escalation ladder in paper order.
    pub const LADDER: [RepairAction; 5] = [
        RepairAction::Reseat,
        RepairAction::CleanEndFace,
        RepairAction::ReplaceTransceiver,
        RepairAction::ReplaceCable,
        RepairAction::ReplaceSwitchHardware,
    ];

    /// Short label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            RepairAction::Reseat => "reseat",
            RepairAction::CleanEndFace => "clean",
            RepairAction::ReplaceTransceiver => "repl-xcvr",
            RepairAction::ReplaceCable => "repl-cable",
            RepairAction::ReplaceSwitchHardware => "repl-switch",
        }
    }

    /// Stable checkpoint tag (do not reorder without bumping the
    /// checkpoint format version).
    pub fn ckpt_tag(self) -> u8 {
        match self {
            RepairAction::Reseat => 0,
            RepairAction::CleanEndFace => 1,
            RepairAction::ReplaceTransceiver => 2,
            RepairAction::ReplaceCable => 3,
            RepairAction::ReplaceSwitchHardware => 4,
        }
    }

    /// Inverse of [`RepairAction::ckpt_tag`].
    pub fn from_ckpt_tag(tag: u8) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(match tag {
            0 => RepairAction::Reseat,
            1 => RepairAction::CleanEndFace,
            2 => RepairAction::ReplaceTransceiver,
            3 => RepairAction::ReplaceCable,
            4 => RepairAction::ReplaceSwitchHardware,
            t => {
                return Err(dcmaint_ckpt::CkptError::BadTag(
                    "repair-action",
                    u64::from(t),
                ))
            }
        })
    }

    /// Whether the action is physically possible on the given medium.
    /// Cleaning needs a separable connector; everything else always
    /// applies (replacing an integrated cable replaces its transceivers).
    pub fn applicable(self, medium: CableMedium) -> bool {
        match self {
            RepairAction::CleanEndFace => medium.is_separable(),
            _ => true,
        }
    }

    /// Probability this action resolves an incident with the given hidden
    /// cause on the given medium. See the module docs for calibration
    /// rationale.
    pub fn efficacy(self, cause: RootCause, medium: CableMedium) -> f64 {
        if !self.applicable(medium) {
            return 0.0;
        }
        // Replacing an *integrated* cable (DAC/AEC/AOC) replaces its
        // factory-attached transceivers as well, so it inherits the
        // transceiver-swap cure rates for module-side causes.
        if self == RepairAction::ReplaceCable && !medium.is_separable() {
            return Self::table(RepairAction::ReplaceCable, cause)
                .max(Self::table(RepairAction::ReplaceTransceiver, cause));
        }
        Self::table(self, cause)
    }

    /// The base (action, cause) cure-probability table.
    fn table(action: RepairAction, cause: RootCause) -> f64 {
        use RepairAction as A;
        use RootCause as C;
        match (action, cause) {
            // Reseat: reboots firmware, refreshes contacts, sometimes
            // redistributes dirt enough to pass.
            (A::Reseat, C::FirmwareHang) => 0.90,
            (A::Reseat, C::OxidizedContact) => 0.80,
            (A::Reseat, C::DirtyEndFace) => 0.30,
            (A::Reseat, C::TransceiverWear) => 0.15,
            (A::Reseat, C::SwitchPortFault) => 0.05,
            (A::Reseat, C::DamagedFiber) => 0.02,
            // Clean: the contamination cure; includes a reseat, so it
            // inherits most of reseat's side benefits.
            (A::CleanEndFace, C::DirtyEndFace) => 0.95,
            (A::CleanEndFace, C::OxidizedContact) => 0.85,
            (A::CleanEndFace, C::FirmwareHang) => 0.90,
            (A::CleanEndFace, C::TransceiverWear) => 0.05,
            (A::CleanEndFace, C::SwitchPortFault) => 0.02,
            (A::CleanEndFace, C::DamagedFiber) => 0.05,
            // Replace transceiver: cures everything inside the module.
            (A::ReplaceTransceiver, C::TransceiverWear) => 0.97,
            (A::ReplaceTransceiver, C::OxidizedContact) => 0.95,
            (A::ReplaceTransceiver, C::FirmwareHang) => 0.98,
            (A::ReplaceTransceiver, C::DirtyEndFace) => 0.55, // cable side may stay dirty
            (A::ReplaceTransceiver, C::DamagedFiber) => 0.05,
            (A::ReplaceTransceiver, C::SwitchPortFault) => 0.05,
            // Replace cable (with fresh cleaning, §3.2): cures cable-side
            // causes; transceivers are reseated in the process.
            (A::ReplaceCable, C::DamagedFiber) => 0.97,
            (A::ReplaceCable, C::DirtyEndFace) => 0.96,
            (A::ReplaceCable, C::OxidizedContact) => 0.75,
            (A::ReplaceCable, C::FirmwareHang) => 0.90,
            (A::ReplaceCable, C::TransceiverWear) => 0.15,
            (A::ReplaceCable, C::SwitchPortFault) => 0.05,
            // Replace switch hardware: the final resort.
            (A::ReplaceSwitchHardware, C::SwitchPortFault) => 0.95,
            (A::ReplaceSwitchHardware, C::OxidizedContact) => 0.60, // new socket
            (A::ReplaceSwitchHardware, C::FirmwareHang) => 0.70,
            (A::ReplaceSwitchHardware, C::DirtyEndFace) => 0.10,
            (A::ReplaceSwitchHardware, C::TransceiverWear) => 0.10,
            (A::ReplaceSwitchHardware, C::DamagedFiber) => 0.02,
        }
    }

    /// Sample whether one attempt of this action resolves the incident.
    pub fn attempt(self, cause: RootCause, medium: CableMedium, rng: &mut Stream) -> bool {
        rng.chance(self.efficacy(cause, medium))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    const MPO: CableMedium = CableMedium::FiberMpo { cores: 8 };

    #[test]
    fn ladder_order_matches_paper() {
        assert_eq!(RepairAction::LADDER[0], RepairAction::Reseat);
        assert_eq!(RepairAction::LADDER[1], RepairAction::CleanEndFace);
        assert_eq!(RepairAction::LADDER[4], RepairAction::ReplaceSwitchHardware);
    }

    #[test]
    fn cleaning_requires_separable() {
        assert!(!RepairAction::CleanEndFace.applicable(CableMedium::Aoc));
        assert!(!RepairAction::CleanEndFace.applicable(CableMedium::Dac));
        assert!(RepairAction::CleanEndFace.applicable(MPO));
        assert_eq!(
            RepairAction::CleanEndFace.efficacy(RootCause::DirtyEndFace, CableMedium::Aoc),
            0.0
        );
    }

    #[test]
    fn reseat_is_surprisingly_effective() {
        // Expected first-attempt fix probability of a reseat over the
        // incident mix on separable optics must be substantial (the §3.2
        // claim) but well below certainty (multiple attempts needed).
        let expected: f64 = RootCause::ALL
            .iter()
            .map(|&c| c.weight(MPO) * RepairAction::Reseat.efficacy(c, MPO))
            .sum::<f64>()
            / RootCause::ALL.iter().map(|&c| c.weight(MPO)).sum::<f64>();
        assert!(
            expected > 0.30 && expected < 0.70,
            "reseat first-fix {expected}"
        );
    }

    #[test]
    fn every_cause_has_a_high_efficacy_cure() {
        for &cause in &RootCause::ALL {
            let best = RepairAction::LADDER
                .iter()
                .map(|a| a.efficacy(cause, MPO))
                .fold(0.0, f64::max);
            assert!(best >= 0.9, "{cause:?} best cure only {best}");
        }
    }

    #[test]
    fn no_medium_cause_dead_ends() {
        // On every medium, every cause that can occur there must have
        // some applicable action with >= 60% cure probability — otherwise
        // the escalation ladder loops at its top rung for days.
        let media = [
            CableMedium::Dac,
            CableMedium::Aec,
            CableMedium::Aoc,
            CableMedium::FiberLc,
            MPO,
        ];
        for medium in media {
            for &cause in &RootCause::ALL {
                if cause.weight(medium) == 0.0 {
                    continue;
                }
                let best = RepairAction::LADDER
                    .iter()
                    .map(|a| a.efficacy(cause, medium))
                    .fold(0.0, f64::max);
                assert!(
                    best >= 0.6,
                    "{cause:?} on {medium:?}: best cure only {best}"
                );
            }
        }
    }

    #[test]
    fn integrated_cable_swap_cures_module_causes() {
        // Replacing an AOC replaces its factory transceivers too.
        let aoc = CableMedium::Aoc;
        assert!(RepairAction::ReplaceCable.efficacy(RootCause::TransceiverWear, aoc) >= 0.9);
        assert!(RepairAction::ReplaceCable.efficacy(RootCause::FirmwareHang, aoc) >= 0.9);
        // On separable media the transceiver survives a cable swap.
        assert!(RepairAction::ReplaceCable.efficacy(RootCause::TransceiverWear, MPO) < 0.5);
    }

    #[test]
    fn escalation_monotone_for_contamination() {
        // For dirty end-faces the ladder should improve at the cleaning
        // step — the whole point of the cleaning robot.
        let reseat = RepairAction::Reseat.efficacy(RootCause::DirtyEndFace, MPO);
        let clean = RepairAction::CleanEndFace.efficacy(RootCause::DirtyEndFace, MPO);
        assert!(clean > 2.0 * reseat);
    }

    #[test]
    fn weights_reflect_medium() {
        // Copper has no end-face contamination.
        assert_eq!(RootCause::DirtyEndFace.weight(CableMedium::Dac), 0.0);
        // Separable optics see more dirt than sealed AOCs.
        assert!(
            RootCause::DirtyEndFace.weight(MPO) > RootCause::DirtyEndFace.weight(CableMedium::Aoc)
        );
        // Oxidation dominates on copper.
        assert!(
            RootCause::OxidizedContact.weight(CableMedium::Dac)
                > RootCause::OxidizedContact.weight(MPO)
        );
    }

    #[test]
    fn sampling_follows_weights() {
        let mut rng = SimRng::root(1).stream("cause", 0);
        let mut dirty = 0;
        let n = 20_000;
        for _ in 0..n {
            if RootCause::sample(MPO, &mut rng) == RootCause::DirtyEndFace {
                dirty += 1;
            }
        }
        let frac = f64::from(dirty) / f64::from(n);
        // Weight 0.40 over total 1.0.
        assert!((frac - 0.40).abs() < 0.02, "dirty fraction {frac}");
    }

    #[test]
    fn manifestation_is_mostly_gray_for_dirt() {
        let mut rng = SimRng::root(2).stream("manifest", 0);
        let mut hard_down = 0;
        let n = 10_000;
        for _ in 0..n {
            let (h, loss) = RootCause::DirtyEndFace.manifest(&mut rng);
            match h {
                LinkHealth::Down => {
                    hard_down += 1;
                    assert_eq!(loss, 1.0);
                }
                LinkHealth::Degraded | LinkHealth::Flapping => {
                    assert!(loss > 0.0 && loss < 0.2);
                }
                LinkHealth::Up => panic!("a fault never manifests as Up"),
            }
        }
        let frac = f64::from(hard_down) / f64::from(n);
        assert!(frac < 0.25, "dirt should be mostly gray, hard-down {frac}");
    }

    #[test]
    fn firmware_hang_is_fail_stop() {
        let mut rng = SimRng::root(3).stream("fw", 0);
        for _ in 0..100 {
            let (h, _) = RootCause::FirmwareHang.manifest(&mut rng);
            assert_eq!(h, LinkHealth::Down);
        }
    }

    #[test]
    fn attempt_statistics_match_efficacy() {
        let mut rng = SimRng::root(4).stream("attempt", 0);
        let n = 30_000;
        let fixes = (0..n)
            .filter(|_| RepairAction::Reseat.attempt(RootCause::OxidizedContact, MPO, &mut rng))
            .count();
        let frac = fixes as f64 / f64::from(n);
        assert!((frac - 0.80).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RootCause::DirtyEndFace.label(), "dirty-endface");
        assert_eq!(RepairAction::ReplaceCable.label(), "repl-cable");
    }
}
