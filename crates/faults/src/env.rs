//! Environmental stress model.
//!
//! §1 observes that "transient failures are a function of the workload or
//! external factors, such as environmental changes in temperature,
//! vibration and so forth" and that dirt's impact "is often dependent on
//! temperature, humidity, vibration etc.". The model here is a smooth,
//! deterministic field: a diurnal temperature cycle plus per-row offsets
//! (hot rows exist in real halls), producing a multiplicative *stress
//! factor* on hazard rates and on the manifestation of latent
//! contamination.

use dcmaint_des::SimTime;

/// Deterministic environmental field over the hall.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Mean cold-aisle temperature, °C.
    pub base_temp_c: f64,
    /// Peak-to-mean diurnal swing, °C (load-following cooling).
    pub diurnal_amp_c: f64,
    /// Per-row temperature offset, °C per row index (air handling is not
    /// uniform; later rows run warmer in this model).
    pub row_gradient_c: f64,
    /// Relative humidity fraction `[0, 1]`.
    pub humidity: f64,
    /// Ambient vibration level `[0, 1]` (fans, CRAC units, construction).
    pub vibration: f64,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            base_temp_c: 24.0,
            diurnal_amp_c: 2.0,
            row_gradient_c: 0.4,
            humidity: 0.45,
            vibration: 0.1,
        }
    }
}

impl Environment {
    /// Instantaneous temperature at a row, °C. The diurnal peak is at
    /// 15:00 local (afternoon load + outside-air peak).
    pub fn temperature_c(&self, t: SimTime, row: u32) -> f64 {
        let day_frac = t.time_of_day().as_hours_f64() / 24.0;
        let phase = (day_frac - 15.0 / 24.0) * std::f64::consts::TAU;
        self.base_temp_c + self.diurnal_amp_c * phase.cos() + self.row_gradient_c * f64::from(row)
    }

    /// Multiplicative hazard-stress factor in roughly `[0.7, 2.0]`:
    /// 1.0 at nominal conditions, rising with heat, humidity, and
    /// vibration. Applied to failure inter-arrival rates and to flapping
    /// duty cycles.
    pub fn stress_factor(&self, t: SimTime, row: u32) -> f64 {
        let temp = self.temperature_c(t, row);
        // +5% hazard per °C above nominal 24 °C (Arrhenius-flavoured).
        let temp_term = 1.0 + 0.05 * (temp - 24.0);
        // Humidity away from the 45% sweet spot adds corrosion/ESD risk.
        let humid_term = 1.0 + 0.8 * (self.humidity - 0.45).abs();
        // Vibration term: linear.
        let vib_term = 1.0 + 0.8 * self.vibration;
        (temp_term * humid_term * vib_term).clamp(0.5, 3.0)
    }

    /// A harsher environment used by stress experiments.
    pub fn stressed() -> Self {
        Environment {
            base_temp_c: 28.0,
            diurnal_amp_c: 4.0,
            row_gradient_c: 0.8,
            humidity: 0.65,
            vibration: 0.35,
        }
    }
}

/// Diurnal fabric-utilization curve in `[0, 1]`: the §4 proactive planner
/// schedules campaigns "during periods of low utilization". Peak at
/// 20:00, trough twelve hours opposite at 08:00, plus a weekday/weekend
/// distinction (weekend = days 5 and 6 of each week, 20% lower).
pub fn diurnal_utilization(t: SimTime) -> f64 {
    let day_frac = t.time_of_day().as_hours_f64() / 24.0;
    let phase = (day_frac - 20.0 / 24.0) * std::f64::consts::TAU;
    let base = 0.55 + 0.30 * phase.cos();
    let weekend = matches!(t.day_index() % 7, 5 | 6);
    let scale = if weekend { 0.8 } else { 1.0 };
    (base * scale).clamp(0.05, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimDuration;

    fn at_hour(h: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(h)
    }

    #[test]
    fn temperature_peaks_mid_afternoon() {
        let e = Environment::default();
        let t15 = e.temperature_c(at_hour(15), 0);
        let t03 = e.temperature_c(at_hour(3), 0);
        assert!(t15 > t03);
        assert!((t15 - (24.0 + 2.0)).abs() < 0.1);
    }

    #[test]
    fn later_rows_run_warmer() {
        let e = Environment::default();
        assert!(e.temperature_c(at_hour(12), 5) > e.temperature_c(at_hour(12), 0));
    }

    #[test]
    fn stress_factor_nominal_near_one() {
        let e = Environment::default();
        // 09:00, row 0: close to nominal.
        let f = e.stress_factor(at_hour(9), 0);
        assert!((0.8..1.3).contains(&f), "factor {f}");
    }

    #[test]
    fn stressed_env_raises_hazard() {
        let n = Environment::default();
        let s = Environment::stressed();
        let t = at_hour(15);
        assert!(s.stress_factor(t, 3) > 1.2 * n.stress_factor(t, 3));
    }

    #[test]
    fn stress_factor_bounded() {
        let e = Environment {
            base_temp_c: 60.0,
            diurnal_amp_c: 30.0,
            row_gradient_c: 5.0,
            humidity: 1.0,
            vibration: 1.0,
        };
        for h in 0..24 {
            let f = e.stress_factor(at_hour(h), 10);
            assert!((0.5..=3.0).contains(&f));
        }
    }

    #[test]
    fn utilization_trough_in_morning() {
        let peak = diurnal_utilization(at_hour(20));
        assert!(peak > 0.7);
        // 08:00 is the analytic minimum of the curve (weekday).
        let t08 = diurnal_utilization(at_hour(24 + 8)); // day 1, 08:00
        assert!(t08 < 0.30, "trough {t08}");
        assert!(t08 < peak);
    }

    #[test]
    fn weekend_runs_lighter() {
        // Day 5, 20:00 vs day 4, 20:00.
        let weekday = diurnal_utilization(at_hour(4 * 24 + 20));
        let weekend = diurnal_utilization(at_hour(5 * 24 + 20));
        assert!(weekend < weekday);
    }

    #[test]
    fn utilization_in_unit_interval() {
        for h in 0..24 * 14 {
            let u = diurnal_utilization(at_hour(h));
            assert!((0.05..=1.0).contains(&u));
        }
    }
}
