//! # dcmaint-faults — failure physics for the self-maintaining network
//!
//! The paper's problem statement (§1) is a taxonomy of how cloud network
//! hardware actually fails: rarely fail-stop, mostly gray — flapping
//! links, dirt-dependent transients modulated by temperature and
//! vibration, failures seeded by nearby human activity. This crate models
//! each mechanism:
//!
//! * [`cause`] — hidden [`RootCause`]s per incident, the
//!   [`RepairAction`] vocabulary, and the efficacy matrix that reproduces
//!   "reseating is surprisingly effective" and "multiple attempts needed"
//!   without scripting outcomes;
//! * `env` — diurnal temperature / humidity / vibration stress field
//!   and the fabric-utilization curve the proactive planner reads;
//! * [`gilbert`] — the Gilbert–Elliott flapping process;
//! * [`contamination`] — per-core end-face dirt with IEC-style
//!   inspection, dry/wet cleaning, and mating recontamination;
//! * [`disturb`](mod@disturb) — the cascading-failure model: contact sets, actor
//!   profiles (human vs robot gripper), transient bursts and latent
//!   faults on neighboring cables;
//! * [`injector`] — the Poisson incident process tying it together.
//!
//! ```
//! use dcmaint_des::SimRng;
//! use dcmaint_dcnet::CableMedium;
//! use dcmaint_faults::{RepairAction, RootCause};
//!
//! // The §3.2 story in three lines: sample a hidden cause on a
//! // separable MPO link and try the first-line repair.
//! let mut rng = SimRng::root(1).stream("demo", 0);
//! let medium = CableMedium::FiberMpo { cores: 8 };
//! let cause = RootCause::sample(medium, &mut rng);
//! let fixed = RepairAction::Reseat.attempt(cause, medium, &mut rng);
//! // Sometimes it works (that is the point of the efficacy matrix);
//! // either way the workflow only ever sees `fixed`, never `cause`.
//! let _ = fixed;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cause;
pub mod contamination;
pub mod disturb;
pub mod env;
pub mod gilbert;
pub mod injector;
pub mod robot;

pub use cause::{RepairAction, RootCause};
pub use contamination::EndFace;
pub use disturb::{contact_set, disturb, ActorProfile, DisturbanceEffect};
pub use env::{diurnal_utilization, Environment};
pub use gilbert::{FlapPhase, FlapProcess};
pub use injector::{FaultConfig, FaultInjector, Incident};
pub use robot::{RobotFault, RobotFaultConfig, RobotPhaseClass};
