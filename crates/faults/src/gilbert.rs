//! Gilbert–Elliott flapping process.
//!
//! §1: "a flapping network link, a link that oscillates between periods of
//! normal operation and periods that exhibit high packet loss rates". The
//! standard two-state model: sojourn in *Good* (low loss) and *Bad* (high
//! loss) states with exponential holding times. The fault layer runs one
//! process per flapping link, emitting state-change events the telemetry
//! detectors then have to recognize as a flap (not two independent
//! failures — the false-positive trap the paper's fine-grained control is
//! meant to avoid).

use dcmaint_des::{Dist, SimDuration, Stream};

/// Which half of the Gilbert–Elliott cycle the link is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapPhase {
    /// Normal operation (baseline loss).
    Good,
    /// High-loss burst.
    Bad,
}

/// One link's flapping process.
#[derive(Debug, Clone)]
pub struct FlapProcess {
    /// Mean sojourn in Good.
    pub mean_good: SimDuration,
    /// Mean sojourn in Bad.
    pub mean_bad: SimDuration,
    /// Loss rate while Bad.
    pub loss_bad: f64,
    /// Loss rate while Good (residual).
    pub loss_good: f64,
    phase: FlapPhase,
}

impl FlapProcess {
    /// Standard flap profile: minutes-scale good periods, seconds-to-
    /// minutes bad bursts with percent-scale loss. `severity ∈ [0,1]`
    /// scales burst length and loss (driven by contamination level /
    /// environment).
    pub fn with_severity(severity: f64) -> Self {
        let severity = severity.clamp(0.0, 1.0);
        FlapProcess {
            mean_good: SimDuration::from_secs_f64(600.0 * (1.0 - 0.8 * severity) + 30.0),
            mean_bad: SimDuration::from_secs_f64(10.0 + 110.0 * severity),
            loss_bad: 0.02 + 0.28 * severity,
            loss_good: 0.0001,
            phase: FlapPhase::Good,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> FlapPhase {
        self.phase
    }

    /// Current loss rate.
    pub fn loss(&self) -> f64 {
        match self.phase {
            FlapPhase::Good => self.loss_good,
            FlapPhase::Bad => self.loss_bad,
        }
    }

    /// Flip to the other phase and return how long the *new* phase will
    /// hold (schedule the next transition after this delay).
    pub fn transition(&mut self, rng: &mut Stream) -> SimDuration {
        self.phase = match self.phase {
            FlapPhase::Good => FlapPhase::Bad,
            FlapPhase::Bad => FlapPhase::Good,
        };
        self.hold_time(rng)
    }

    /// Sample the holding time of the current phase.
    pub fn hold_time(&self, rng: &mut Stream) -> SimDuration {
        let mean = match self.phase {
            FlapPhase::Good => self.mean_good,
            FlapPhase::Bad => self.mean_bad,
        };
        Dist::Exp {
            mean: mean.as_secs_f64().max(1e-6),
        }
        .sample_duration(rng)
    }

    /// Append this process's state to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.u64(self.mean_good.as_micros());
        enc.u64(self.mean_bad.as_micros());
        enc.f64(self.loss_bad);
        enc.f64(self.loss_good);
        enc.bool(self.phase == FlapPhase::Bad);
    }

    /// Inverse of [`FlapProcess::save`].
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        Ok(FlapProcess {
            mean_good: SimDuration::from_micros(dec.u64()?),
            mean_bad: SimDuration::from_micros(dec.u64()?),
            loss_bad: dec.f64()?,
            loss_good: dec.f64()?,
            phase: if dec.bool()? {
                FlapPhase::Bad
            } else {
                FlapPhase::Good
            },
        })
    }

    /// Long-run fraction of time spent in the Bad phase.
    pub fn bad_duty_cycle(&self) -> f64 {
        let g = self.mean_good.as_secs_f64();
        let b = self.mean_bad.as_secs_f64();
        if g + b <= 0.0 {
            0.0
        } else {
            b / (g + b)
        }
    }

    /// Long-run average loss rate.
    pub fn mean_loss(&self) -> f64 {
        let d = self.bad_duty_cycle();
        d * self.loss_bad + (1.0 - d) * self.loss_good
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    #[test]
    fn starts_good_and_alternates() {
        let mut rng = SimRng::root(1).stream("flap", 0);
        let mut p = FlapProcess::with_severity(0.5);
        assert_eq!(p.phase(), FlapPhase::Good);
        p.transition(&mut rng);
        assert_eq!(p.phase(), FlapPhase::Bad);
        p.transition(&mut rng);
        assert_eq!(p.phase(), FlapPhase::Good);
    }

    #[test]
    fn severity_scales_badness() {
        let mild = FlapProcess::with_severity(0.1);
        let severe = FlapProcess::with_severity(0.9);
        assert!(severe.loss_bad > mild.loss_bad);
        assert!(severe.mean_bad > mild.mean_bad);
        assert!(severe.mean_good < mild.mean_good);
        assert!(severe.bad_duty_cycle() > mild.bad_duty_cycle());
    }

    #[test]
    fn loss_follows_phase() {
        let mut rng = SimRng::root(2).stream("flap", 0);
        let mut p = FlapProcess::with_severity(0.5);
        assert!(p.loss() < 0.001);
        p.transition(&mut rng);
        assert!(p.loss() > 0.01);
    }

    #[test]
    fn hold_times_have_right_means() {
        let mut rng = SimRng::root(3).stream("flap", 0);
        let p = FlapProcess::with_severity(0.5);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| p.hold_time(&mut rng).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        let expect = p.mean_good.as_secs_f64();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn mean_loss_between_phase_losses() {
        let p = FlapProcess::with_severity(0.7);
        let m = p.mean_loss();
        assert!(m > p.loss_good && m < p.loss_bad);
    }

    #[test]
    fn severity_clamped() {
        let p = FlapProcess::with_severity(7.0);
        let q = FlapProcess::with_severity(1.0);
        assert_eq!(p.loss_bad, q.loss_bad);
    }
}
