//! Physical-disturbance cascades.
//!
//! The paper's central physical insight (§1): "when technicians move
//! fiber optical cables to reach a component, the movement of the cables
//! can cause transient packet loss in the touched cables … physical
//! motion near or with hardware creates vibrations and other physical
//! effects on the co-located hardware, which leads to additional
//! transient (or permanent!) failures". And the robotics answer (§3.3.1,
//! §3.4): task-specific grippers that "minimize accidental interaction
//! with physically close cables" and apply "no pressure on the optical
//! cable", so "a robot that knows when it will move cables also knows
//! which cables and the force applied".
//!
//! The model: every physical operation on a link carries an
//! [`ActorProfile`] (how clumsy the actor is). For each disturbance
//! neighbor of the touched link (tray-sharing or panel-adjacent, computed
//! by `dcnet`), the actor's contact probability decides whether that
//! neighbor is perturbed; perturbation is mostly a transient loss burst,
//! occasionally a new latent fault. The *contact set* is knowable in
//! advance — that is what the control plane pre-announces.

use dcmaint_dcnet::{LinkId, Topology};
use dcmaint_des::{SimDuration, Stream};

use crate::cause::RootCause;

/// How carefully an actor manipulates cables.
#[derive(Debug, Clone, Copy)]
pub struct ActorProfile {
    /// Probability of physically contacting each disturbance neighbor
    /// during an operation.
    pub contact_prob: f64,
    /// Given contact, probability of a transient loss burst on that
    /// neighbor.
    pub transient_prob: f64,
    /// Given contact, probability of inducing a new *latent* fault
    /// (permanent cascading failure).
    pub latent_prob: f64,
    /// Mean duration of induced transient bursts.
    pub burst_mean: SimDuration,
}

impl ActorProfile {
    /// A human technician working in dense cabling: wide reach, fingers
    /// and forearms brush many cables, occasionally kinks one.
    pub fn human() -> Self {
        ActorProfile {
            contact_prob: 0.55,
            transient_prob: 0.50,
            latent_prob: 0.03,
            burst_mean: SimDuration::from_secs(20),
        }
    }

    /// The §3.3.1 manipulation robot: minimized gripper surface, pressure
    /// only on the transceiver body, designed to part cables gently.
    pub fn robot() -> Self {
        ActorProfile {
            contact_prob: 0.12,
            transient_prob: 0.25,
            latent_prob: 0.002,
            burst_mean: SimDuration::from_secs(4),
        }
    }

    /// A teleoperated/supervised robot (Level 2): robot hardware but more
    /// conservative motion, between the two.
    pub fn supervised_robot() -> Self {
        ActorProfile {
            contact_prob: 0.15,
            transient_prob: 0.30,
            latent_prob: 0.004,
            burst_mean: SimDuration::from_secs(6),
        }
    }
}

/// What happened to one disturbed neighbor.
#[derive(Debug, Clone)]
pub enum DisturbanceEffect {
    /// A transient loss burst of the given length and loss rate.
    TransientBurst {
        /// Affected neighbor link.
        link: LinkId,
        /// Burst duration.
        duration: SimDuration,
        /// Loss rate during the burst.
        loss: f64,
    },
    /// A new latent fault seeded on the neighbor (will manifest as its
    /// own incident).
    LatentFault {
        /// Affected neighbor link.
        link: LinkId,
        /// The seeded cause.
        cause: RootCause,
    },
}

impl DisturbanceEffect {
    /// The affected link.
    pub fn link(&self) -> LinkId {
        match *self {
            DisturbanceEffect::TransientBurst { link, .. } => link,
            DisturbanceEffect::LatentFault { link, .. } => link,
        }
    }
}

/// The set of cables an operation on `target` may contact — §4: "a robot
/// that knows when it will move cables also knows which cables". This is
/// deterministic (topology-derived) and is what gets pre-announced.
pub fn contact_set(topo: &Topology, target: LinkId) -> Vec<LinkId> {
    topo.disturb_neighbors(target).to_vec()
}

/// Roll the dice for one physical operation on `target` by `actor`.
/// Returns the effects on neighbors (the target itself is under
/// maintenance and excluded).
pub fn disturb(
    topo: &Topology,
    target: LinkId,
    actor: &ActorProfile,
    rng: &mut Stream,
) -> Vec<DisturbanceEffect> {
    let mut effects = Vec::new();
    for &nb in topo.disturb_neighbors(target) {
        if !rng.chance(actor.contact_prob) {
            continue;
        }
        if rng.chance(actor.latent_prob) {
            // Mechanical insult: bent fiber or knocked connector.
            let cause = if rng.chance(0.6) {
                RootCause::DamagedFiber
            } else {
                RootCause::DirtyEndFace // connector knocked, seal broken
            };
            effects.push(DisturbanceEffect::LatentFault { link: nb, cause });
        } else if rng.chance(actor.transient_prob) {
            let duration = SimDuration::from_secs_f64(
                actor.burst_mean.as_secs_f64() * rng.uniform_range(0.3, 2.0),
            );
            effects.push(DisturbanceEffect::TransientBurst {
                link: nb,
                duration,
                loss: rng.uniform_range(0.01, 0.20),
            });
        }
    }
    effects
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_dcnet::gen::leaf_spine;
    use dcmaint_dcnet::DiversityProfile;
    use dcmaint_des::SimRng;

    fn topo() -> Topology {
        leaf_spine(
            4,
            8,
            4,
            1,
            DiversityProfile::cloud_typical(),
            &SimRng::root(1),
        )
    }

    #[test]
    fn contact_set_matches_topology_neighbors() {
        let t = topo();
        let l = LinkId(0);
        assert_eq!(contact_set(&t, l), t.disturb_neighbors(l).to_vec());
    }

    #[test]
    fn humans_disturb_more_than_robots() {
        let t = topo();
        let mut rng = SimRng::root(2).stream("disturb", 0);
        // Pick a link with plenty of neighbors.
        let target = t
            .link_ids()
            .max_by_key(|&l| t.disturb_neighbors(l).len())
            .unwrap();
        assert!(t.disturb_neighbors(target).len() >= 4);
        let trials = 300;
        let human: usize = (0..trials)
            .map(|_| disturb(&t, target, &ActorProfile::human(), &mut rng).len())
            .sum();
        let robot: usize = (0..trials)
            .map(|_| disturb(&t, target, &ActorProfile::robot(), &mut rng).len())
            .sum();
        assert!(
            human > robot * 3,
            "human {human} vs robot {robot} disturbances"
        );
    }

    #[test]
    fn effects_target_only_neighbors() {
        let t = topo();
        let mut rng = SimRng::root(3).stream("disturb", 0);
        let target = LinkId(0);
        let neighbors: std::collections::HashSet<_> =
            t.disturb_neighbors(target).iter().copied().collect();
        for _ in 0..100 {
            for e in disturb(&t, target, &ActorProfile::human(), &mut rng) {
                assert!(neighbors.contains(&e.link()));
                assert_ne!(e.link(), target);
            }
        }
    }

    #[test]
    fn latent_faults_are_rare_but_present_for_humans() {
        let t = topo();
        let mut rng = SimRng::root(4).stream("disturb", 0);
        let target = t
            .link_ids()
            .max_by_key(|&l| t.disturb_neighbors(l).len())
            .unwrap();
        let mut latent = 0;
        let mut transient = 0;
        for _ in 0..2000 {
            for e in disturb(&t, target, &ActorProfile::human(), &mut rng) {
                match e {
                    DisturbanceEffect::LatentFault { .. } => latent += 1,
                    DisturbanceEffect::TransientBurst { .. } => transient += 1,
                }
            }
        }
        assert!(latent > 0, "humans occasionally cause permanent damage");
        assert!(
            transient > latent * 5,
            "transients dominate: {transient} vs {latent}"
        );
    }

    #[test]
    fn burst_parameters_sane() {
        let t = topo();
        let mut rng = SimRng::root(5).stream("disturb", 0);
        let target = LinkId(1);
        for _ in 0..500 {
            for e in disturb(&t, target, &ActorProfile::human(), &mut rng) {
                if let DisturbanceEffect::TransientBurst { duration, loss, .. } = e {
                    assert!(duration > SimDuration::ZERO);
                    assert!(duration < SimDuration::from_mins(2));
                    assert!((0.01..=0.20).contains(&loss));
                }
            }
        }
    }

    #[test]
    fn supervised_robot_between_human_and_robot() {
        let h = ActorProfile::human();
        let s = ActorProfile::supervised_robot();
        let r = ActorProfile::robot();
        assert!(h.contact_prob > s.contact_prob && s.contact_prob > r.contact_prob);
        assert!(h.latent_prob > s.latent_prob && s.latent_prob > r.latent_prob);
    }
}
