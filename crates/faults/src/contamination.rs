//! Fiber end-face contamination: per-core dirt, inspection, cleaning.
//!
//! §3.2–§3.3.2: MPO trunks carry 8+ fiber cores; *each* core must be
//! inspected and cleaned to industry spec (IEC 61300-3-35 grades
//! end-faces by defects in concentric zones around the core). The
//! cleaning robot inspects every core (< 30 s for 8 cores, §3.3.2),
//! applies dry cleaning first, then wet cleaning for stubborn
//! contamination, and re-inspects — the exact pipeline modeled in
//! `dcmaint-robotics`. This module owns the underlying physical state.
//!
//! Dirt is a per-core scalar in `[0, 1]`: 0 = pristine, values above
//! [`EndFace::PASS_THRESHOLD`] fail inspection. Loss contribution grows
//! superlinearly with the worst core (one blocked core can kill the whole
//! lane group).

use dcmaint_des::Stream;

/// Contamination state of one connector end-face.
#[derive(Debug, Clone)]
pub struct EndFace {
    cores: Vec<f64>,
}

impl EndFace {
    /// Inspection pass threshold on per-core dirt (IEC-style pass/fail).
    pub const PASS_THRESHOLD: f64 = 0.25;

    /// A pristine end-face with the given core count (min 1).
    pub fn pristine(cores: u8) -> Self {
        EndFace {
            cores: vec![0.0; usize::from(cores.max(1))],
        }
    }

    /// An end-face contaminated according to field exposure: each core
    /// independently picks up dirt; `exposure ∈ [0,1]` scales severity
    /// (mating count, environment, time in service).
    pub fn contaminated(cores: u8, exposure: f64, rng: &mut Stream) -> Self {
        let mut ef = Self::pristine(cores);
        ef.contaminate(exposure, rng);
        ef
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Dirt level of one core.
    pub fn core(&self, i: usize) -> f64 {
        self.cores[i]
    }

    /// Worst (dirtiest) core level.
    pub fn worst(&self) -> f64 {
        self.cores.iter().copied().fold(0.0, f64::max)
    }

    /// Add field contamination: each core gains an exponential-ish dirt
    /// increment; a minority of cores take most of the dirt (a single
    /// fingerprint or dust particle lands somewhere specific).
    pub fn contaminate(&mut self, exposure: f64, rng: &mut Stream) {
        let exposure = exposure.clamp(0.0, 1.0);
        for c in &mut self.cores {
            // 30% of cores take a big hit, the rest take light haze.
            let hit = if rng.chance(0.3) {
                rng.uniform_range(0.3, 1.0)
            } else {
                rng.uniform_range(0.0, 0.15)
            };
            *c = (*c + exposure * hit).min(1.0);
        }
    }

    /// One mating cycle (plugging the connector) transfers a little dirt
    /// even in clean rooms; dirty mating (uncleaned bulkhead) transfers
    /// more. §3.3.2: the robot "reassembles … to minimize the risk of
    /// recontamination".
    pub fn mate(&mut self, dirty_environment: bool, rng: &mut Stream) {
        let scale = if dirty_environment { 0.15 } else { 0.02 };
        for c in &mut self.cores {
            *c = (*c + rng.uniform_range(0.0, scale)).min(1.0);
        }
    }

    /// Dry-clean every core (reel/click cleaner): removes most loose
    /// contamination but little of the bonded kind. Returns worst level
    /// after cleaning.
    pub fn clean_dry(&mut self, rng: &mut Stream) -> f64 {
        for c in &mut self.cores {
            let removal = rng.uniform_range(0.55, 0.85);
            *c *= 1.0 - removal;
        }
        self.worst()
    }

    /// Wet-then-dry clean: solvent dissolves bonded contamination;
    /// near-total removal (§3.3.2: "wet and dry methods to address a wide
    /// range of contaminants"). Returns worst level after cleaning.
    pub fn clean_wet(&mut self, rng: &mut Stream) -> f64 {
        for c in &mut self.cores {
            let removal = rng.uniform_range(0.90, 0.995);
            *c *= 1.0 - removal;
        }
        self.worst()
    }

    /// Whether every core passes inspection.
    pub fn passes_inspection(&self) -> bool {
        self.cores.iter().all(|&c| c <= Self::PASS_THRESHOLD)
    }

    /// Indices of cores failing inspection.
    pub fn failing_cores(&self) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > Self::PASS_THRESHOLD)
            .map(|(i, _)| i)
            .collect()
    }

    /// Packet-loss contribution of this end-face: negligible below the
    /// pass threshold, rising superlinearly beyond it (insertion loss →
    /// BER → frame loss is a steep curve).
    pub fn loss_contribution(&self) -> f64 {
        let w = self.worst();
        if w <= Self::PASS_THRESHOLD {
            return 0.0;
        }
        let over = (w - Self::PASS_THRESHOLD) / (1.0 - Self::PASS_THRESHOLD);
        (0.001 + 0.3 * over * over).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmaint_des::SimRng;

    fn rng() -> Stream {
        SimRng::root(7).stream("contam", 0)
    }

    #[test]
    fn pristine_passes() {
        let ef = EndFace::pristine(8);
        assert_eq!(ef.core_count(), 8);
        assert!(ef.passes_inspection());
        assert_eq!(ef.loss_contribution(), 0.0);
        assert_eq!(ef.worst(), 0.0);
    }

    #[test]
    fn heavy_contamination_fails_inspection() {
        let mut r = rng();
        let ef = EndFace::contaminated(8, 1.0, &mut r);
        assert!(!ef.passes_inspection());
        assert!(!ef.failing_cores().is_empty());
        assert!(ef.loss_contribution() > 0.0);
    }

    #[test]
    fn dry_clean_helps_wet_clean_restores() {
        let mut r = rng();
        let mut ef = EndFace::contaminated(8, 1.0, &mut r);
        let before = ef.worst();
        let after_dry = ef.clean_dry(&mut r);
        assert!(after_dry < before);
        let after_wet = ef.clean_wet(&mut r);
        assert!(
            after_wet < 0.1,
            "wet clean should near-restore: {after_wet}"
        );
        assert!(ef.passes_inspection());
    }

    #[test]
    fn single_dry_pass_may_not_suffice() {
        // Statistically, heavily bonded contamination survives one dry
        // pass often enough that the robot's re-inspect step matters.
        let mut r = rng();
        let mut survived = 0;
        for _ in 0..200 {
            let mut ef = EndFace::contaminated(8, 1.0, &mut r);
            ef.clean_dry(&mut r);
            if !ef.passes_inspection() {
                survived += 1;
            }
        }
        assert!(survived > 20, "only {survived} dirty after dry clean");
    }

    #[test]
    fn mating_recontaminates() {
        let mut r = rng();
        let mut ef = EndFace::pristine(8);
        for _ in 0..60 {
            ef.mate(true, &mut r);
        }
        assert!(ef.worst() > 0.5, "repeated dirty mating accumulates");
        let mut clean_env = EndFace::pristine(8);
        for _ in 0..10 {
            clean_env.mate(false, &mut r);
        }
        assert!(clean_env.passes_inspection());
    }

    #[test]
    fn loss_grows_with_dirt() {
        let mut light = EndFace::pristine(2);
        let mut heavy = EndFace::pristine(2);
        // Manually poke: contaminate one core just over vs far over.
        light.cores[0] = 0.35;
        heavy.cores[0] = 0.95;
        assert!(heavy.loss_contribution() > light.loss_contribution() * 3.0);
        assert!(heavy.loss_contribution() <= 1.0);
    }

    #[test]
    fn zero_core_request_clamps_to_one() {
        let ef = EndFace::pristine(0);
        assert_eq!(ef.core_count(), 1);
    }

    #[test]
    fn exposure_scales_contamination() {
        let mut r = rng();
        let mut worst_lo = 0.0;
        let mut worst_hi = 0.0;
        for _ in 0..100 {
            worst_lo += EndFace::contaminated(8, 0.1, &mut r).worst();
            worst_hi += EndFace::contaminated(8, 0.9, &mut r).worst();
        }
        assert!(worst_hi > 2.0 * worst_lo);
    }
}
