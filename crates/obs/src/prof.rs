//! The engine self-profiler: per-subsystem span accounting for the
//! maintenance plane's *own* hot paths.
//!
//! A plane that manages itself must first observe itself (the MAPE-K
//! premise). This module is the observation layer for the simulator's
//! machinery rather than for simulated incidents: where does a simulated
//! year of wall time actually go — the scheduler, telemetry polls, fault
//! injection, the controller, robot dispatch, ticket bookkeeping, or
//! checkpoint encode/decode?
//!
//! The design splits every measurement into two strictly separated
//! halves, following the rest of the crate:
//!
//! * **Deterministic counts** — per-event-kind and per-subsystem event
//!   tallies, scheduler queue statistics, checkpoint payload sizes.
//!   These live in the [`ObsRegistry`](crate::ObsRegistry) under
//!   `prof/…` keys, so they merge across sweep workers, persist through
//!   checkpoints, and are byte-identical across same-seed runs.
//! * **Timing-only spans** — wall-clock nanoseconds per subsystem,
//!   accumulated by a [`WallProfile`] owned here. Inherently
//!   nondeterministic; surfaced only via side files (`BENCH_engine.json`)
//!   and stderr, never on any seeded output path.
//!
//! When disabled a `Prof` is fully inert: [`Prof::start`] returns `None`
//! without reading the clock, [`Prof::record`] returns before touching
//! anything, and no allocation ever happens — so profiling-off runs are
//! byte-identical to a build without the profiler.

use std::time::Instant;

use crate::wall::WallProfile;

/// Key prefix for every deterministic profiler counter in the registry.
/// Keeps the profiler's namespace disjoint from the simulation counters
/// (`ticket/…`, `op/…`, …) that experiment assertions pin.
pub const PROF_PREFIX: &str = "prof/";

/// The span taxonomy: every engine event and hot-path hook is attributed
/// to exactly one of these subsystems (DESIGN §3.13).
pub const SUBSYSTEMS: &[&str] = &[
    "sched",      // des::sched schedule/pop/cancel + queue bookkeeping
    "faults",     // fault arrivals, self-heals, flaps, cascades
    "dcnet",      // link recompute + telemetry polling
    "controller", // dispatch decisions, proactive/predictive scans
    "robotics",   // robot op lifecycle: start/done/stall/abort/recover
    "tickets",    // ticket open/verify/close bookkeeping
    "recovery",   // watchdog + degradation ladder
    "ckpt",       // snapshot encode/decode
    "twin",       // digital-twin planning: fork fan-out + branch scoring
    "autonomic",  // MAPE-K loop: monitor windows, posterior updates, knob moves
];

/// Scoped wall timing per subsystem. A thin wrapper over
/// [`WallProfile`] — the `Instant` values it handles are produced inside
/// `obs::wall`, the single module sanctioned to read the clock — plus
/// the enabled flag the engine's deterministic-count hooks key off.
#[derive(Debug, Clone, Default)]
pub struct Prof {
    enabled: bool,
    wall: WallProfile,
}

impl Prof {
    /// A profiler that records.
    pub fn enabled() -> Self {
        Prof {
            enabled: true,
            wall: WallProfile::enabled(),
        }
    }

    /// A profiler that ignores everything (the default).
    pub fn disabled() -> Self {
        Prof::default()
    }

    /// Whether this profiler records. Deterministic-count hooks check
    /// this before touching the registry so a disabled profiler leaves
    /// zero `prof/…` entries.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span: reads the clock iff profiling is on. Pass the
    /// result to [`Prof::record`] after the measured section.
    pub fn start(&self) -> Option<Instant> {
        self.wall.start()
    }

    /// Close a span under `subsystem`. No-op when `started` is `None`.
    pub fn record(&mut self, subsystem: &'static str, started: Option<Instant>) {
        self.wall.record(subsystem, started);
    }

    /// Accumulated `(subsystem, total ns, spans)` entries, sorted by
    /// subsystem name. Empty when disabled.
    pub fn entries(&self) -> Vec<(&'static str, u64, u64)> {
        self.wall.entries_sorted()
    }

    /// Total spans recorded.
    pub fn total_count(&self) -> u64 {
        self.wall.total_count()
    }

    /// Render as a JSON object string (same shape as `BENCH_obs.json`).
    pub fn to_json(&self) -> String {
        self.wall.to_json()
    }
}

/// Wall share per entry in percent of the summed total. Shares are
/// computed over the entry set itself, so they sum to ~100% by
/// construction (modulo float rounding); an empty or all-zero set
/// yields all-zero shares.
pub fn shares(entries: &[(&'static str, u64, u64)]) -> Vec<(&'static str, f64)> {
    let total: u64 = entries.iter().fold(0u64, |acc, e| acc.saturating_add(e.1));
    entries
        .iter()
        .map(|&(name, ns, _)| {
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * ns as f64 / total as f64
            };
            (name, pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prof_is_inert() {
        let mut p = Prof::disabled();
        assert!(!p.is_enabled());
        let t = p.start();
        assert!(t.is_none(), "disabled profiler must not read the clock");
        p.record("sched", t);
        assert_eq!(p.total_count(), 0);
        assert!(p.entries().is_empty());
        assert_eq!(p.to_json(), "{}");
    }

    #[test]
    fn enabled_prof_accumulates_per_subsystem() {
        let mut p = Prof::enabled();
        assert!(p.is_enabled());
        p.record("tickets", p.start());
        p.record("sched", p.start());
        p.record("tickets", p.start());
        assert_eq!(p.total_count(), 3);
        let e = p.entries();
        assert_eq!(e.len(), 2);
        // Sorted by name regardless of first-touch order.
        assert_eq!(e[0].0, "sched");
        assert_eq!(e[1].0, "tickets");
        assert_eq!(e[1].2, 2);
    }

    #[test]
    fn shares_sum_to_one_hundred_percent() {
        let entries = [("a", 300u64, 3u64), ("b", 100, 1), ("c", 600, 2)];
        let s = shares(&entries);
        let total: f64 = s.iter().map(|&(_, pct)| pct).sum();
        assert!((total - 100.0).abs() < 1e-9, "shares sum to {total}");
        assert!((s[0].1 - 30.0).abs() < 1e-9);
        assert!((s[2].1 - 60.0).abs() < 1e-9);
        // Degenerate sets stay well-defined.
        assert!(shares(&[]).is_empty());
        assert_eq!(shares(&[("z", 0, 0)])[0].1, 0.0);
    }

    #[test]
    fn taxonomy_is_sorted_unique_and_prefixed_keys_are_disjoint() {
        let mut sorted = SUBSYSTEMS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), SUBSYSTEMS.len(), "duplicate subsystem");
        for s in SUBSYSTEMS {
            assert!(!s.starts_with(PROF_PREFIX));
            assert!(!s.is_empty());
        }
    }
}
