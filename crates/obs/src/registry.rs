//! Global-free counters and fixed-bucket duration histograms.
//!
//! No statics, no locks: one [`ObsRegistry`] value is threaded through
//! the engine and read out of the run report. Keys are `&'static str`
//! (the closed label vocabulary), so recording allocates only when a
//! *new* series first appears — and nothing at all when disabled.
//!
//! Histogram buckets are fixed at construction (log-spaced, 100 ms to
//! 3 days) so two runs bucket identically regardless of data order.

use dcmaint_des::SimDuration;

/// Fixed histogram bucket upper bounds, in microseconds.
const BOUNDS_US: [u64; 14] = [
    100_000,         // 100 ms
    1_000_000,       // 1 s
    5_000_000,       // 5 s
    15_000_000,      // 15 s
    30_000_000,      // 30 s
    60_000_000,      // 1 min
    300_000_000,     // 5 min
    900_000_000,     // 15 min
    1_800_000_000,   // 30 min
    3_600_000_000,   // 1 h
    14_400_000_000,  // 4 h
    43_200_000_000,  // 12 h
    86_400_000_000,  // 1 d
    259_200_000_000, // 3 d
];

/// One duration histogram series, keyed `family/key` (for example
/// `phase/grip` or `span/queued`).
#[derive(Debug, Clone)]
struct Hist {
    family: &'static str,
    key: &'static str,
    counts: [u64; BOUNDS_US.len()],
    overflow: u64,
    total: u64,
    sum_us: u64,
}

/// A read-only view of one histogram series for reports.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Series family (`phase`, `span`, `detect`, …).
    pub family: &'static str,
    /// Series key within the family.
    pub key: &'static str,
    /// Observation count.
    pub total: u64,
    /// Sum of observations.
    pub sum: SimDuration,
    /// `(bucket upper bound, count)` pairs, fixed bounds.
    pub buckets: Vec<(SimDuration, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observation; zero when empty.
    pub fn mean(&self) -> SimDuration {
        match self.sum.as_micros().checked_div(self.total) {
            Some(us) => SimDuration::from_micros(us),
            None => SimDuration::ZERO,
        }
    }
}

/// Counters + histograms for one run. Disabled by default; a disabled
/// registry records nothing.
#[derive(Debug, Clone, Default)]
pub struct ObsRegistry {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    hists: Vec<Hist>,
}

impl ObsRegistry {
    /// A registry that records.
    pub fn enabled() -> Self {
        ObsRegistry {
            enabled: true,
            ..ObsRegistry::default()
        }
    }

    /// A registry that ignores everything.
    pub fn disabled() -> Self {
        ObsRegistry::default()
    }

    /// Whether this registry records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        for c in &mut self.counters {
            if c.0 == name {
                c.1 += n;
                return;
            }
        }
        self.counters.push((name, n));
    }

    /// Read a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.0 == name)
            .map_or(0, |c| c.1)
    }

    /// Record one duration observation into the `family/key` series.
    pub fn observe(&mut self, family: &'static str, key: &'static str, d: SimDuration) {
        if !self.enabled {
            return;
        }
        let idx = self
            .hists
            .iter()
            .position(|h| h.family == family && h.key == key)
            .unwrap_or_else(|| {
                self.hists.push(Hist {
                    family,
                    key,
                    counts: [0; BOUNDS_US.len()],
                    overflow: 0,
                    total: 0,
                    sum_us: 0,
                });
                self.hists.len() - 1
            });
        let h = &mut self.hists[idx];
        let us = d.as_micros();
        match BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => h.counts[i] += 1,
            None => h.overflow += 1,
        }
        h.total += 1;
        h.sum_us = h.sum_us.saturating_add(us);
    }

    /// All counters, sorted by name (deterministic regardless of
    /// first-touch order).
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        let mut out = self.counters.clone();
        out.sort_by_key(|c| c.0);
        out
    }

    /// All histogram series, sorted by `(family, key)`.
    pub fn histograms_sorted(&self) -> Vec<HistogramSnapshot> {
        let mut hists: Vec<&Hist> = self.hists.iter().collect();
        hists.sort_by_key(|h| (h.family, h.key));
        hists
            .into_iter()
            .map(|h| HistogramSnapshot {
                family: h.family,
                key: h.key,
                total: h.total,
                sum: SimDuration::from_micros(h.sum_us),
                buckets: BOUNDS_US
                    .iter()
                    .zip(h.counts.iter())
                    .map(|(&b, &c)| (SimDuration::from_micros(b), c))
                    .collect(),
                overflow: h.overflow,
            })
            .collect()
    }

    /// Fold another registry into this one: counters sum by name,
    /// histogram series merge by `(family, key)` — bucket counts add
    /// elementwise (bounds are fixed, so this is exact), overflow and
    /// totals add, and `sum_us` saturates like [`observe`](Self::observe).
    ///
    /// A disabled `other` contributes nothing; merging *into* a disabled
    /// registry is a no-op (the disabled contract wins). Used by the
    /// sweep engine to aggregate observability across seed replicates.
    pub fn merge(&mut self, other: &ObsRegistry) {
        if !self.enabled || !other.enabled {
            return;
        }
        for &(name, v) in &other.counters {
            self.add(name, v);
        }
        for oh in &other.hists {
            let idx = self
                .hists
                .iter()
                .position(|h| h.family == oh.family && h.key == oh.key)
                .unwrap_or_else(|| {
                    self.hists.push(Hist {
                        family: oh.family,
                        key: oh.key,
                        counts: [0; BOUNDS_US.len()],
                        overflow: 0,
                        total: 0,
                        sum_us: 0,
                    });
                    self.hists.len() - 1
                });
            let h = &mut self.hists[idx];
            for (c, oc) in h.counts.iter_mut().zip(oh.counts.iter()) {
                *c += oc;
            }
            h.overflow += oh.overflow;
            h.total += oh.total;
            h.sum_us = h.sum_us.saturating_add(oh.sum_us);
        }
    }

    /// Append the registry's state to a checkpoint. Series order is the
    /// first-touch order, which save/load preserve exactly.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.bool(self.enabled);
        enc.usize(self.counters.len());
        for &(name, v) in &self.counters {
            enc.str(name);
            enc.u64(v);
        }
        enc.usize(self.hists.len());
        for h in &self.hists {
            enc.str(h.family);
            enc.str(h.key);
            for &c in &h.counts {
                enc.u64(c);
            }
            enc.u64(h.overflow);
            enc.u64(h.total);
            enc.u64(h.sum_us);
        }
    }

    /// Inverse of [`ObsRegistry::save`]. Labels come back through the
    /// process-wide intern table (`&'static str` keys).
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let enabled = dec.bool()?;
        let nc = dec.usize()?;
        let mut counters = Vec::with_capacity(nc.min(4096));
        for _ in 0..nc {
            let name = dcmaint_ckpt::intern(&dec.str()?);
            counters.push((name, dec.u64()?));
        }
        let nh = dec.usize()?;
        let mut hists = Vec::with_capacity(nh.min(4096));
        for _ in 0..nh {
            let family = dcmaint_ckpt::intern(&dec.str()?);
            let key = dcmaint_ckpt::intern(&dec.str()?);
            let mut counts = [0u64; BOUNDS_US.len()];
            for c in &mut counts {
                *c = dec.u64()?;
            }
            hists.push(Hist {
                family,
                key,
                counts,
                overflow: dec.u64()?,
                total: dec.u64()?,
                sum_us: dec.u64()?,
            });
        }
        Ok(ObsRegistry {
            enabled,
            counters,
            hists,
        })
    }

    /// Incremental read: everything that changed since `cursor` last saw
    /// this registry, without re-scanning series that stayed flat.
    ///
    /// Counter and histogram storage is append-only and index-stable
    /// (series are never removed or reordered; save/load preserves
    /// first-touch order), so the cursor keys its baselines by index.
    /// The returned view borrows scratch buffers owned by the cursor:
    /// after warm-up they are reused, so a tick where nothing moved
    /// performs **zero allocations** — the contract the periodic
    /// autonomic monitor depends on, pinned by
    /// `read_window_is_zero_alloc_when_idle`.
    ///
    /// A cursor must stay paired with one registry; feeding it a
    /// different (or restored-then-diverged) registry yields deltas
    /// against whatever baselines it carries.
    pub fn read_window<'c>(&self, cursor: &'c mut RegistryCursor) -> WindowDelta<'c> {
        cursor.counter_out.clear();
        cursor.hist_out.clear();
        if cursor.counter_seen.len() < self.counters.len() {
            cursor.counter_seen.resize(self.counters.len(), 0);
        }
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            let delta = v - cursor.counter_seen[i];
            if delta != 0 {
                cursor.counter_out.push((name, delta));
                cursor.counter_seen[i] = v;
            }
        }
        if cursor.hist_seen.len() < self.hists.len() {
            cursor.hist_seen.resize(self.hists.len(), (0, 0));
        }
        for (i, h) in self.hists.iter().enumerate() {
            let (seen_total, seen_sum) = cursor.hist_seen[i];
            if h.total != seen_total || h.sum_us != seen_sum {
                cursor.hist_out.push(HistDelta {
                    family: h.family,
                    key: h.key,
                    total: h.total - seen_total,
                    sum_us: h.sum_us.wrapping_sub(seen_sum),
                });
                cursor.hist_seen[i] = (h.total, h.sum_us);
            }
        }
        WindowDelta {
            counters: &cursor.counter_out,
            hists: &cursor.hist_out,
        }
    }

    /// Render counters and histogram summaries as stable JSON lines
    /// (one object per line), for appending to a journal dump.
    pub fn snapshot_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, v) in self.counters_sorted() {
            out.push(format!(
                "{{\"ev\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}"
            ));
        }
        for h in self.histograms_sorted() {
            out.push(format!(
                "{{\"ev\":\"histogram\",\"family\":\"{}\",\"key\":\"{}\",\
                 \"count\":{},\"sum_us\":{},\"overflow\":{}}}",
                h.family,
                h.key,
                h.total,
                h.sum.as_micros(),
                h.overflow
            ));
        }
        out
    }
}

/// Baselines + reusable scratch for [`ObsRegistry::read_window`].
///
/// Owns per-index last-seen values for every counter and histogram
/// series, plus the output buffers the returned [`WindowDelta`] borrows.
/// `Default` starts at zero baselines, so the first read returns the
/// registry's full contents as one initial window.
#[derive(Debug, Clone, Default)]
pub struct RegistryCursor {
    counter_seen: Vec<u64>,
    hist_seen: Vec<(u64, u64)>,
    counter_out: Vec<(&'static str, u64)>,
    hist_out: Vec<HistDelta>,
}

impl RegistryCursor {
    /// Current scratch-buffer capacities `(counters, histograms)`.
    /// Diagnostic surface for the zero-alloc-when-idle pin test.
    pub fn scratch_capacity(&self) -> (usize, usize) {
        (self.counter_out.capacity(), self.hist_out.capacity())
    }

    /// Append the cursor's baselines to a checkpoint. Scratch buffers
    /// are transient (cleared at every window) and are not recorded.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        enc.usize(self.counter_seen.len());
        for &v in &self.counter_seen {
            enc.u64(v);
        }
        enc.usize(self.hist_seen.len());
        for &(t, s) in &self.hist_seen {
            enc.u64(t);
            enc.u64(s);
        }
    }

    /// Inverse of [`RegistryCursor::save`]. Valid against the registry
    /// restored from the same snapshot: save/load preserves series order,
    /// so the index-keyed baselines line up exactly.
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        let nc = dec.usize()?;
        let mut counter_seen = Vec::with_capacity(nc.min(4096));
        for _ in 0..nc {
            counter_seen.push(dec.u64()?);
        }
        let nh = dec.usize()?;
        let mut hist_seen = Vec::with_capacity(nh.min(4096));
        for _ in 0..nh {
            hist_seen.push((dec.u64()?, dec.u64()?));
        }
        Ok(RegistryCursor {
            counter_seen,
            hist_seen,
            counter_out: Vec::new(),
            hist_out: Vec::new(),
        })
    }
}

/// One histogram series' movement within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistDelta {
    /// Series family (`phase`, `span`, …).
    pub family: &'static str,
    /// Series key within the family.
    pub key: &'static str,
    /// Observations added this window.
    pub total: u64,
    /// Sum of observations added this window, in microseconds.
    pub sum_us: u64,
}

/// Borrowed view of one incremental window from
/// [`ObsRegistry::read_window`]: only the series that moved.
#[derive(Debug)]
pub struct WindowDelta<'c> {
    /// `(name, delta)` for every counter that changed, first-touch order.
    pub counters: &'c [(&'static str, u64)],
    /// Movement per histogram series that changed, first-touch order.
    pub hists: &'c [HistDelta],
}

impl WindowDelta<'_> {
    /// Whether nothing moved this window.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Delta for one counter this window (0 when it did not move).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.0 == name)
            .map_or(0, |c| c.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = ObsRegistry::disabled();
        r.inc("x");
        r.observe("phase", "grip", SimDuration::from_secs(3));
        assert_eq!(r.counter("x"), 0);
        assert!(r.histograms_sorted().is_empty());
        assert!(r.snapshot_lines().is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let mut r = ObsRegistry::enabled();
        r.inc("zeta");
        r.add("alpha", 4);
        r.inc("zeta");
        assert_eq!(r.counter("zeta"), 2);
        assert_eq!(r.counter("alpha"), 4);
        assert_eq!(r.counter("missing"), 0);
        let names: Vec<_> = r.counters_sorted().iter().map(|c| c.0).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn histogram_buckets_fixed_and_exact() {
        let mut r = ObsRegistry::enabled();
        r.observe("phase", "grip", SimDuration::from_secs(3)); // ≤ 5 s
        r.observe("phase", "grip", SimDuration::from_secs(3));
        r.observe("phase", "grip", SimDuration::from_days(30)); // overflow
        let hs = r.histograms_sorted();
        assert_eq!(hs.len(), 1);
        let h = &hs[0];
        assert_eq!(h.total, 3);
        assert_eq!(h.overflow, 1);
        let five_s = h
            .buckets
            .iter()
            .find(|(b, _)| *b == SimDuration::from_secs(5))
            .unwrap();
        assert_eq!(five_s.1, 2);
        assert_eq!(
            h.sum,
            SimDuration::from_secs(6) + SimDuration::from_days(30)
        );
        assert!(h.mean() > SimDuration::from_days(9));
    }

    #[test]
    fn series_are_keyed_by_family_and_key() {
        let mut r = ObsRegistry::enabled();
        r.observe("phase", "grip", SimDuration::from_secs(1));
        r.observe("span", "grip", SimDuration::from_secs(1));
        r.observe("phase", "insert", SimDuration::from_secs(1));
        let keys: Vec<_> = r
            .histograms_sorted()
            .iter()
            .map(|h| (h.family, h.key))
            .collect();
        assert_eq!(
            keys,
            vec![("phase", "grip"), ("phase", "insert"), ("span", "grip")]
        );
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = ObsRegistry::enabled();
        a.inc("ops");
        a.observe("phase", "grip", SimDuration::from_secs(3));
        let mut b = ObsRegistry::enabled();
        b.add("ops", 2);
        b.inc("faults");
        b.observe("phase", "grip", SimDuration::from_secs(3));
        b.observe("phase", "grip", SimDuration::from_days(30)); // overflow
        b.observe("span", "queued", SimDuration::from_secs(1));

        a.merge(&b);
        assert_eq!(a.counter("ops"), 3);
        assert_eq!(a.counter("faults"), 1);
        let hs = a.histograms_sorted();
        assert_eq!(
            hs.iter().map(|h| (h.family, h.key)).collect::<Vec<_>>(),
            vec![("phase", "grip"), ("span", "queued")]
        );
        let grip = &hs[0];
        assert_eq!(grip.total, 3);
        assert_eq!(grip.overflow, 1);
        assert_eq!(
            grip.sum,
            SimDuration::from_secs(6) + SimDuration::from_days(30)
        );
        // Merging is equivalent to having observed everything in one
        // registry: bucket-exact because bounds are fixed.
        let five_s = grip
            .buckets
            .iter()
            .find(|(bnd, _)| *bnd == SimDuration::from_secs(5))
            .unwrap();
        assert_eq!(five_s.1, 2);
    }

    #[test]
    fn merge_respects_disabled_contract() {
        let mut off = ObsRegistry::disabled();
        let mut on = ObsRegistry::enabled();
        on.inc("ops");
        off.merge(&on);
        assert_eq!(off.counter("ops"), 0);
        assert!(!off.is_enabled());

        let mut a = ObsRegistry::enabled();
        a.inc("ops");
        a.merge(&ObsRegistry::disabled());
        assert_eq!(a.counter("ops"), 1);
    }

    #[test]
    fn read_window_returns_incremental_deltas() {
        let mut r = ObsRegistry::enabled();
        let mut cur = RegistryCursor::default();

        r.add("ops", 3);
        r.observe("phase", "grip", SimDuration::from_secs(2));
        let w = r.read_window(&mut cur);
        assert_eq!(w.counter("ops"), 3);
        assert_eq!(w.hists.len(), 1);
        assert_eq!(w.hists[0].total, 1);
        assert_eq!(w.hists[0].sum_us, 2_000_000);

        // Second window sees only what moved since the first.
        r.add("ops", 2);
        r.inc("faults");
        r.observe("phase", "grip", SimDuration::from_secs(5));
        let w = r.read_window(&mut cur);
        assert_eq!(w.counter("ops"), 2);
        assert_eq!(w.counter("faults"), 1);
        assert_eq!(w.hists.len(), 1);
        assert_eq!(w.hists[0].total, 1);
        assert_eq!(w.hists[0].sum_us, 5_000_000);

        // Nothing moved: the window is empty, flat series are skipped.
        let w = r.read_window(&mut cur);
        assert!(w.is_empty());
        assert_eq!(w.counter("ops"), 0);
    }

    #[test]
    fn read_window_handles_series_appearing_between_windows() {
        let mut r = ObsRegistry::enabled();
        let mut cur = RegistryCursor::default();
        r.inc("a");
        assert_eq!(r.read_window(&mut cur).counter("a"), 1);
        // New series appended after the cursor was sized.
        r.inc("b");
        r.observe("span", "queued", SimDuration::from_secs(1));
        let w = r.read_window(&mut cur);
        assert_eq!(w.counter("a"), 0);
        assert_eq!(w.counter("b"), 1);
        assert_eq!(w.hists.len(), 1);
        assert_eq!(w.hists[0].key, "queued");
    }

    #[test]
    fn read_window_is_zero_alloc_when_idle() {
        let mut r = ObsRegistry::enabled();
        let mut cur = RegistryCursor::default();
        r.add("ops", 7);
        r.inc("faults");
        r.observe("phase", "grip", SimDuration::from_secs(2));
        r.observe("span", "queued", SimDuration::from_secs(9));
        // Warm-up window sizes the scratch buffers.
        assert!(!r.read_window(&mut cur).is_empty());
        let warm = cur.scratch_capacity();
        let warm_ptr = cur.counter_out.as_ptr();

        // Idle windows: no movement ⇒ no growth, no reallocation. The
        // buffer pointer pin makes a sneaky clear-and-collect rewrite
        // (which would allocate fresh Vecs per tick) fail loudly.
        for _ in 0..16 {
            assert!(r.read_window(&mut cur).is_empty());
            assert_eq!(cur.scratch_capacity(), warm);
            assert_eq!(cur.counter_out.as_ptr(), warm_ptr);
        }

        // Even a busy window reuses the warmed buffers: same series set
        // moving again fits in the existing capacity.
        r.add("ops", 1);
        r.observe("phase", "grip", SimDuration::from_secs(1));
        assert_eq!(r.read_window(&mut cur).counter("ops"), 1);
        assert_eq!(cur.scratch_capacity(), warm);
        assert_eq!(cur.counter_out.as_ptr(), warm_ptr);
    }

    #[test]
    fn snapshot_lines_are_stable() {
        let mut r = ObsRegistry::enabled();
        r.inc("ops");
        r.observe("phase", "grip", SimDuration::from_secs(2));
        let lines = r.snapshot_lines();
        assert_eq!(
            lines[0],
            "{\"ev\":\"counter\",\"name\":\"ops\",\"value\":1}"
        );
        assert!(lines[1].contains("\"family\":\"phase\""));
    }
}
