//! Per-incident span traces.
//!
//! An incident's trace is a time-ordered sequence of *state-entry
//! events*: the ticket enters `triage` when opened, `queued` when an
//! executor is booked, `hands-on` when work starts, `verify` after the
//! repair, and so on. The span for a state runs from its entry event to
//! the next event (or the close). Because consecutive events share
//! their boundary instant, the depth-0 spans **tile** the service
//! window exactly in integer microseconds — the sum of span durations
//! equals `closed - opened` with no float error, no gaps, and no
//! overlaps. That identity is what lets E1 prove its end-to-end windows
//! decompose into attributed phases.
//!
//! A `hands-on` interval carries structure: the booked travel time and
//! the planned robot op phases (from `robotics::ops`). The trace
//! splits it into a depth-0 `travel` span plus a depth-0 `hands-on`
//! span whose depth-1 children are the op phases (clipped to the
//! interval) and a residue span (`await-report`, `stalled`,
//! `manual-work`, …) covering whatever the phases don't. Children tile
//! their parent by the same construction.
//!
//! The detect latency (fault manifestation → alert/ticket) happens
//! *before* the service window starts, so it is carried as a separate
//! pre-window attribute rather than a window span.

use std::collections::BTreeMap;

use dcmaint_des::{SimDuration, SimTime};

/// Detail attached to a state-entry event.
#[derive(Debug, Clone)]
enum Detail {
    /// No structure; optional note (e.g. the recovery-ladder rung).
    Plain(Option<&'static str>),
    /// A hands-on window with travel + op-phase structure.
    HandsOn {
        executor: &'static str,
        travel: SimDuration,
        phases: Vec<(&'static str, SimDuration)>,
        residue: &'static str,
    },
}

/// One state-entry event.
#[derive(Debug, Clone)]
struct TraceEvent {
    at: SimTime,
    state: &'static str,
    detail: Detail,
}

/// One span of an incident trace. Depth-0 spans tile the service
/// window; depth-1 spans tile their parent `hands-on` span.
#[derive(Debug, Clone)]
pub struct Span {
    /// 0 = window-tiling state span, 1 = child of `hands-on`.
    pub depth: usize,
    /// Span kind: a state label, `travel`, an op-phase label, or a
    /// residue label.
    pub kind: &'static str,
    /// Start instant (inclusive).
    pub start: SimTime,
    /// End instant (exclusive).
    pub end: SimTime,
    /// Optional annotation (executor, ladder rung).
    pub note: Option<&'static str>,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// The full observable history of one incident (one ticket).
#[derive(Debug, Clone)]
pub struct IncidentTrace {
    /// Ticket id.
    pub ticket: u64,
    /// Target link index.
    pub link: usize,
    /// Trigger label (`down`, `flap`, `gray`, `proactive`, `predictive`).
    pub trigger: &'static str,
    /// Priority label.
    pub priority: &'static str,
    /// Ground truth: when the underlying fault manifested, if the
    /// ticket targets a live incident. Drives the pre-window detect
    /// latency.
    pub fault_at: Option<SimTime>,
    /// Ticket creation (service window start).
    pub opened: SimTime,
    /// Ticket close (service window end); `None` while open.
    pub closed: Option<SimTime>,
    /// Closed as spurious (self-healed / false positive).
    pub spurious: bool,
    events: Vec<TraceEvent>,
}

impl IncidentTrace {
    /// Whether the trigger was reactive (service-impacting).
    pub fn reactive(&self) -> bool {
        matches!(self.trigger, "down" | "flap" | "gray")
    }

    /// Service window (creation → close).
    pub fn window(&self) -> Option<SimDuration> {
        self.closed.map(|c| c.since(self.opened))
    }

    /// Detect latency: fault manifestation → ticket creation. Happens
    /// before the window; reported separately from the window spans.
    pub fn detect_latency(&self) -> Option<SimDuration> {
        self.fault_at.map(|f| self.opened.since(f))
    }

    /// Derive the span tree. Depth-0 spans tile `opened..closed`
    /// exactly; for a still-open trace they tile `opened..last event`.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        let end_of = |i: usize| -> SimTime {
            self.events
                .get(i + 1)
                .map(|e| e.at)
                .or(self.closed)
                .unwrap_or(self.events[i].at)
        };
        for (i, e) in self.events.iter().enumerate() {
            let end = end_of(i);
            match &e.detail {
                Detail::Plain(note) => out.push(Span {
                    depth: 0,
                    kind: e.state,
                    start: e.at,
                    end,
                    note: *note,
                }),
                Detail::HandsOn {
                    executor,
                    travel,
                    phases,
                    residue,
                } => {
                    let travel_end = (e.at + *travel).min(end);
                    if travel_end > e.at {
                        out.push(Span {
                            depth: 0,
                            kind: "travel",
                            start: e.at,
                            end: travel_end,
                            note: Some(executor),
                        });
                    }
                    out.push(Span {
                        depth: 0,
                        kind: "hands-on",
                        start: travel_end,
                        end,
                        note: Some(executor),
                    });
                    let mut cursor = travel_end;
                    for (phase, dur) in phases {
                        if cursor >= end {
                            break;
                        }
                        let phase_end = (cursor + *dur).min(end);
                        out.push(Span {
                            depth: 1,
                            kind: phase,
                            start: cursor,
                            end: phase_end,
                            note: None,
                        });
                        cursor = phase_end;
                    }
                    if cursor < end {
                        out.push(Span {
                            depth: 1,
                            kind: residue,
                            start: cursor,
                            end,
                            note: None,
                        });
                    }
                }
            }
        }
        out
    }

    /// Sum of depth-0 span durations, in exact integer microseconds.
    pub fn depth0_sum(&self) -> SimDuration {
        self.spans()
            .iter()
            .filter(|s| s.depth == 0)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// The tiling invariant: for a closed trace, depth-0 spans sum to
    /// the service window *exactly* (same `SimTime` ticks).
    pub fn tiles_exactly(&self) -> bool {
        match self.window() {
            Some(w) => self.depth0_sum() == w,
            None => true,
        }
    }

    /// Render the trace as an indented tree, one span per line.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let window = match self.window() {
            Some(w) => format!("{w}"),
            None => "open".to_string(),
        };
        let _ = writeln!(
            s,
            "ticket {} link {} trigger={} priority={} window={}{}",
            self.ticket,
            self.link,
            self.trigger,
            self.priority,
            window,
            if self.spurious { " (spurious)" } else { "" },
        );
        if let Some(d) = self.detect_latency() {
            let _ = writeln!(s, "  detect {d} (fault→alert, pre-window)");
        }
        for sp in self.spans() {
            if sp.duration().is_zero() && sp.depth == 1 {
                continue;
            }
            let indent = if sp.depth == 0 { "  " } else { "      " };
            let note = sp.note.map(|n| format!(" [{n}]")).unwrap_or_default();
            let _ = writeln!(s, "{indent}{:<12} {}{}", sp.kind, sp.duration(), note);
        }
        s
    }
}

/// All incident traces of a run, keyed by ticket id.
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    enabled: bool,
    traces: Vec<IncidentTrace>,
    by_ticket: BTreeMap<u64, usize>,
}

impl TraceStore {
    /// A store that records.
    pub fn enabled() -> Self {
        TraceStore {
            enabled: true,
            ..TraceStore::default()
        }
    }

    /// A store that ignores everything.
    pub fn disabled() -> Self {
        TraceStore::default()
    }

    /// Whether this store records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begin a trace when a ticket opens. The initial state is
    /// `triage`, entered at `opened`.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        &mut self,
        ticket: u64,
        link: usize,
        trigger: &'static str,
        priority: &'static str,
        fault_at: Option<SimTime>,
        opened: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        let idx = self.traces.len();
        self.traces.push(IncidentTrace {
            ticket,
            link,
            trigger,
            priority,
            fault_at,
            opened,
            closed: None,
            spurious: false,
            events: vec![TraceEvent {
                at: opened,
                state: "triage",
                detail: Detail::Plain(None),
            }],
        });
        self.by_ticket.insert(ticket, idx);
    }

    fn push_event(&mut self, ticket: u64, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(&i) = self.by_ticket.get(&ticket) {
            let t = &mut self.traces[i];
            debug_assert!(t.events.last().is_none_or(|last| ev.at >= last.at));
            t.events.push(ev);
        }
    }

    /// The ticket enters a new state at `at`.
    pub fn event(&mut self, ticket: u64, at: SimTime, state: &'static str) {
        self.push_event(
            ticket,
            TraceEvent {
                at,
                state,
                detail: Detail::Plain(None),
            },
        );
    }

    /// Like [`TraceStore::event`], with an annotation (ladder rung,
    /// escalation reason).
    pub fn event_note(
        &mut self,
        ticket: u64,
        at: SimTime,
        state: &'static str,
        note: &'static str,
    ) {
        self.push_event(
            ticket,
            TraceEvent {
                at,
                state,
                detail: Detail::Plain(Some(note)),
            },
        );
    }

    /// Hands-on work begins at `at`: travel + op phases + residue label
    /// describing the tail of the interval the phases don't cover.
    #[allow(clippy::too_many_arguments)]
    pub fn hands_on(
        &mut self,
        ticket: u64,
        at: SimTime,
        executor: &'static str,
        travel: SimDuration,
        phases: Vec<(&'static str, SimDuration)>,
        residue: &'static str,
    ) {
        self.push_event(
            ticket,
            TraceEvent {
                at,
                state: "hands-on",
                detail: Detail::HandsOn {
                    executor,
                    travel,
                    phases,
                    residue,
                },
            },
        );
    }

    /// Close the trace at `at`.
    pub fn close(&mut self, ticket: u64, at: SimTime, spurious: bool) {
        if !self.enabled {
            return;
        }
        if let Some(&i) = self.by_ticket.get(&ticket) {
            self.traces[i].closed = Some(at);
            self.traces[i].spurious = spurious;
        }
    }

    /// Look up a trace by ticket id.
    pub fn get(&self, ticket: u64) -> Option<&IncidentTrace> {
        self.by_ticket.get(&ticket).map(|&i| &self.traces[i])
    }

    /// All traces, in ticket-creation order.
    pub fn all(&self) -> &[IncidentTrace] {
        &self.traces
    }

    /// Consume the store, yielding the traces.
    pub fn into_traces(self) -> Vec<IncidentTrace> {
        self.traces
    }

    /// Append the whole store to a checkpoint.
    pub fn save(&self, enc: &mut dcmaint_ckpt::Enc) {
        fn opt_time(enc: &mut dcmaint_ckpt::Enc, t: Option<SimTime>) {
            match t {
                Some(t) => {
                    enc.bool(true);
                    enc.u64(t.as_micros());
                }
                None => enc.bool(false),
            }
        }
        enc.bool(self.enabled);
        enc.usize(self.traces.len());
        for tr in &self.traces {
            enc.u64(tr.ticket);
            enc.usize(tr.link);
            enc.str(tr.trigger);
            enc.str(tr.priority);
            opt_time(enc, tr.fault_at);
            enc.u64(tr.opened.as_micros());
            opt_time(enc, tr.closed);
            enc.bool(tr.spurious);
            enc.usize(tr.events.len());
            for ev in &tr.events {
                enc.u64(ev.at.as_micros());
                enc.str(ev.state);
                match &ev.detail {
                    Detail::Plain(note) => {
                        enc.u8(0);
                        match note {
                            Some(n) => {
                                enc.bool(true);
                                enc.str(n);
                            }
                            None => enc.bool(false),
                        }
                    }
                    Detail::HandsOn {
                        executor,
                        travel,
                        phases,
                        residue,
                    } => {
                        enc.u8(1);
                        enc.str(executor);
                        enc.u64(travel.as_micros());
                        enc.usize(phases.len());
                        for &(name, d) in phases {
                            enc.str(name);
                            enc.u64(d.as_micros());
                        }
                        enc.str(residue);
                    }
                }
            }
        }
        // `by_ticket` is derivable (ticket → insertion index); rebuild on
        // load rather than storing it.
    }

    /// Inverse of [`TraceStore::save`]. Labels come back interned.
    pub fn load(dec: &mut dcmaint_ckpt::Dec) -> Result<Self, dcmaint_ckpt::CkptError> {
        fn opt_time(
            dec: &mut dcmaint_ckpt::Dec,
        ) -> Result<Option<SimTime>, dcmaint_ckpt::CkptError> {
            Ok(if dec.bool()? {
                Some(SimTime::from_micros(dec.u64()?))
            } else {
                None
            })
        }
        let enabled = dec.bool()?;
        let n = dec.usize()?;
        let mut traces = Vec::with_capacity(n.min(4096));
        let mut by_ticket = BTreeMap::new();
        for idx in 0..n {
            let ticket = dec.u64()?;
            let link = dec.usize()?;
            let trigger = dcmaint_ckpt::intern(&dec.str()?);
            let priority = dcmaint_ckpt::intern(&dec.str()?);
            let fault_at = opt_time(dec)?;
            let opened = SimTime::from_micros(dec.u64()?);
            let closed = opt_time(dec)?;
            let spurious = dec.bool()?;
            let ne = dec.usize()?;
            let mut events = Vec::with_capacity(ne.min(4096));
            for _ in 0..ne {
                let at = SimTime::from_micros(dec.u64()?);
                let state = dcmaint_ckpt::intern(&dec.str()?);
                let detail = match dec.u8()? {
                    0 => Detail::Plain(if dec.bool()? {
                        Some(dcmaint_ckpt::intern(&dec.str()?))
                    } else {
                        None
                    }),
                    1 => {
                        let executor = dcmaint_ckpt::intern(&dec.str()?);
                        let travel = SimDuration::from_micros(dec.u64()?);
                        let np = dec.usize()?;
                        let mut phases = Vec::with_capacity(np.min(4096));
                        for _ in 0..np {
                            let name = dcmaint_ckpt::intern(&dec.str()?);
                            phases.push((name, SimDuration::from_micros(dec.u64()?)));
                        }
                        let residue = dcmaint_ckpt::intern(&dec.str()?);
                        Detail::HandsOn {
                            executor,
                            travel,
                            phases,
                            residue,
                        }
                    }
                    t => {
                        return Err(dcmaint_ckpt::CkptError::BadTag(
                            "trace-detail",
                            u64::from(t),
                        ))
                    }
                };
                events.push(TraceEvent { at, state, detail });
            }
            by_ticket.insert(ticket, idx);
            traces.push(IncidentTrace {
                ticket,
                link,
                trigger,
                priority,
                fault_at,
                opened,
                closed,
                spurious,
                events,
            });
        }
        Ok(TraceStore {
            enabled,
            traces,
            by_ticket,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn disabled_store_records_nothing() {
        let mut t = TraceStore::disabled();
        t.open(1, 0, "down", "P0", None, at(0));
        t.event(1, at(5), "queued");
        t.close(1, at(9), false);
        assert!(t.all().is_empty());
        assert!(t.get(1).is_none());
    }

    #[test]
    fn spans_tile_the_window_exactly() {
        let mut t = TraceStore::enabled();
        t.open(7, 3, "down", "P0", Some(at(90)), at(100));
        t.event(7, at(100), "queued"); // zero-length triage
        t.hands_on(
            7,
            at(160),
            "robot",
            secs(30),
            vec![
                ("navigate", secs(20)),
                ("grip", secs(5)),
                ("extract", secs(10)),
            ],
            "idle",
        );
        t.event(7, at(225), "verify");
        t.close(7, at(345), false);
        let tr = t.get(7).unwrap();
        assert_eq!(tr.window(), Some(secs(245)));
        assert_eq!(tr.detect_latency(), Some(secs(10)));
        assert!(tr.tiles_exactly(), "depth-0 spans must sum to the window");
        // Depth-0 kinds in order: triage, queued, travel, hands-on, verify.
        let kinds: Vec<_> = tr
            .spans()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.kind)
            .collect();
        assert_eq!(
            kinds,
            vec!["triage", "queued", "travel", "hands-on", "verify"]
        );
        // Children tile the hands-on parent: 20 + 5 + 10 = 35 s of
        // phases inside the 35 s post-travel interval (160+30=190 to 225).
        let children: SimDuration = tr
            .spans()
            .iter()
            .filter(|s| s.depth == 1)
            .fold(SimDuration::ZERO, |a, s| a + s.duration());
        assert_eq!(children, secs(35));
    }

    #[test]
    fn truncated_hands_on_clips_phases_and_labels_residue() {
        // Watchdog killed the op 12 s after start: travel eats 10 s,
        // the first phase is clipped to 2 s, later phases vanish, no
        // residue (cursor reached the end).
        let mut t = TraceStore::enabled();
        t.open(1, 0, "flap", "P1", None, at(0));
        t.hands_on(
            1,
            at(10),
            "robot",
            secs(10),
            vec![("navigate", secs(20)), ("grip", secs(5))],
            "stalled",
        );
        t.event_note(1, at(22), "backoff", "retry-same");
        t.close(1, at(30), false);
        let tr = t.get(1).unwrap();
        assert!(tr.tiles_exactly());
        let spans = tr.spans();
        let navigate = spans.iter().find(|s| s.kind == "navigate").unwrap();
        assert_eq!(navigate.duration(), secs(2));
        assert!(!spans.iter().any(|s| s.kind == "grip"));
        assert!(!spans.iter().any(|s| s.kind == "stalled"));
        let backoff = spans.iter().find(|s| s.kind == "backoff").unwrap();
        assert_eq!(backoff.note, Some("retry-same"));
    }

    #[test]
    fn stalled_wait_appears_as_residue() {
        // Phases take 10 s but the interval runs 60 s (report lost;
        // watchdog recovers late): residue span covers the 40 s wait.
        let mut t = TraceStore::enabled();
        t.open(2, 1, "gray", "P2", None, at(0));
        t.hands_on(
            2,
            at(0),
            "robot",
            secs(10),
            vec![("clean-dry", secs(10))],
            "await-report",
        );
        t.event(2, at(60), "verify");
        t.close(2, at(90), false);
        let tr = t.get(2).unwrap();
        assert!(tr.tiles_exactly());
        let residue = tr
            .spans()
            .into_iter()
            .find(|s| s.kind == "await-report")
            .unwrap();
        assert_eq!(residue.duration(), secs(40));
        assert_eq!(residue.depth, 1);
    }

    #[test]
    fn open_trace_tiles_to_last_event() {
        let mut t = TraceStore::enabled();
        t.open(3, 2, "down", "P0", None, at(0));
        t.event(3, at(50), "queued");
        let tr = t.get(3).unwrap();
        assert_eq!(tr.window(), None);
        assert!(tr.tiles_exactly());
        assert_eq!(tr.depth0_sum(), secs(50));
    }

    #[test]
    fn render_tree_mentions_every_depth0_kind() {
        let mut t = TraceStore::enabled();
        t.open(4, 9, "down", "P0", Some(at(0)), at(12));
        t.event(4, at(20), "queued");
        t.hands_on(
            4,
            at(40),
            "human",
            SimDuration::ZERO,
            Vec::new(),
            "manual-work",
        );
        t.event(4, at(100), "verify");
        t.close(4, at(160), false);
        let tree = t.get(4).unwrap().render_tree();
        for kind in ["triage", "queued", "hands-on", "verify", "detect"] {
            assert!(tree.contains(kind), "missing {kind} in:\n{tree}");
        }
    }
}
